"""Lazy (navigation-driven) evaluation and integrity checking.

Two production-minded facets of the mediator:

* **lazy mode** — sources register schema-only (`eager=False`); queries
  fetch exactly the data they reference, pushing declared selections
  down to the sources' binding patterns;
* **integrity checking** — the paper's `ic`-witness machinery over the
  mediated object base, including Example 2's higher-order form where
  one rule set checks *every* relation (R as a variable).

Run:  python examples/lazy_and_integrity.py
"""

from repro.gcm import (
    cardinality_constraint,
    partial_order_constraint,
    partial_order_constraint_ho,
)
from repro.neuro import build_scenario


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    banner("Lazy mediation: schema-only registration")
    scenario = build_scenario(eager=False)
    mediator = scenario.mediator
    print("sources:", mediator.source_names())
    print("eagerly loaded objects:", len(mediator.ask("X : protein_amount")))

    banner("Query 1: a pushable selection travels to the source")
    answers, fetches = mediator.ask_lazy(
        "X : neurotransmission[organism -> rat; receiving_neuron -> N]"
    )
    for source, class_name, pushed in fetches:
        print("  fetched %s.%s with pushed selections %r"
              % (source, class_name, pushed))
    print("  answers:", [(a["X"], a["N"]) for a in answers])

    banner("Query 2: a DM concept resolves to anchored sources")
    answers, fetches = mediator.ask_lazy("X : 'Pyramidal_Spine'")
    print("  contacted:", sorted({s for s, _c, _sel in fetches}))
    print("  spine objects fetched:", len(answers))

    banner("Query 3: a view expands to its source classes")
    answers, fetches = mediator.ask_lazy(
        "X : calcium_binding_protein[name -> N]"
    )
    print("  contacted:", sorted({s for s, _c, _sel in fetches}))
    print("  distinct proteins:", sorted({a["N"] for a in answers}))

    banner("Integrity checking over the mediated object base")
    eager = build_scenario().mediator
    constraints = [
        # each object anchored at exactly one concept
        cardinality_constraint("anchor", 2, counted_position=1, exact=1),
        # the schema's subclass relation is a partial order
        partial_order_constraint("subclass", "class"),
    ]
    report = eager.check_integrity(constraints)
    print("mediated base:", report)

    banner("Example 2, higher-order: one rule set checks many relations")
    from repro.gcm import ConceptualModel, check

    cm = ConceptualModel("relations")
    cm.add_class("node")
    for obj in ("x", "y", "z"):
        cm.add_instance(obj, "node")
    cm.add_datalog(
        """
        before(x, x). before(y, y). before(z, z).
        before(x, y). before(y, z). before(x, z).
        likes(x, x). likes(y, y). likes(z, z). likes(x, y). likes(y, x).
        """
    )
    report = check(cm, [partial_order_constraint_ho(["before", "likes"], "node")])
    print(report)
    print("\n(the witnesses name the offending relation: R is a variable)")


if __name__ == "__main__":
    main()
