"""Quickstart: a tiny model-based mediation system in ~60 lines.

Builds a two-concept domain map, wraps one relational source, registers
it with a mediator, and asks conceptual-level queries — the minimal
"model-based mediation" loop of the paper.

Run:  python examples/quickstart.py
"""

from repro.core import Mediator
from repro.domainmap import DomainMap
from repro.sources import AnchorSpec, Column, RelStore, Wrapper


def main():
    # 1. A domain map: the mediator's "semantic coordinate system".
    dm = DomainMap("cells")
    dm.add_axioms(
        """
        Tissue < exists has.Cell
        Neuron < Cell
        Glia < Cell
        """
    )

    # 2. A raw relational source ...
    store = RelStore("LAB")
    table = store.create_table(
        "measurement",
        [
            Column("id", "int"),
            Column("cell_type", "str"),
            Column("diameter_um", "float"),
        ],
        key="id",
    )
    table.insert_many(
        [
            {"id": 1, "cell_type": "pyramidal neuron", "diameter_um": 20.0},
            {"id": 2, "cell_type": "astrocyte", "diameter_um": 8.5},
            {"id": 3, "cell_type": "purkinje neuron", "diameter_um": 27.0},
        ]
    )

    # ... lifted by a wrapper to a conceptual model: the cell_type
    # column is the *anchor attribute* tying rows into the domain map.
    wrapper = Wrapper("LAB", store)
    wrapper.export_class(
        "measurement",
        "measurement",
        "id",
        methods={"cell_type": "cell_type", "diameter_um": "diameter_um"},
        anchor=AnchorSpec(
            column="cell_type",
            mapping={
                "pyramidal neuron": "Neuron",
                "purkinje neuron": "Neuron",
                "astrocyte": "Glia",
            },
        ),
        selectable={"cell_type"},
    )

    # 3. Register with the mediator (the message crosses an XML wire).
    mediator = Mediator(dm)
    mediator.register(wrapper)
    print("registered sources:", mediator.source_names())
    print("semantic index:", mediator.index.coverage())

    # 4. Conceptual-level queries: rows are now *objects* anchored at
    # domain-map concepts, so we can ask by concept ...
    neurons = mediator.ask("X : 'Neuron'[diameter_um -> D]")
    print("\nneuron measurements:")
    for row in neurons:
        print("   %s  %.1f um" % (row["X"], row["D"]))

    # ... or by any superclass the domain map knows about.
    print("\nall cells:", len(mediator.ask("X : 'Cell'")))

    # 5. Views are F-logic rules over the mediated knowledge base.
    from repro.core import IntegratedView

    mediator.add_view(
        IntegratedView(
            "large_cell",
            "X : large_cell :- X : 'Cell', X[diameter_um -> D], D > 15.",
        )
    )
    print("large cells:", [r["X"] for r in mediator.ask("X : large_cell")])


if __name__ == "__main__":
    main()
