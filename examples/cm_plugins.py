"""The CM plug-in mechanism (Section 2): one GCM engine, many formalisms.

Three sources describe their conceptual models in three different
formalisms — RDF(S), UML/XMI and (E)ER — each shipped as XML together
with a *declarative translator* (itself XML: "nothing more than a
complex XML query expression that a source sends once to the
mediator").  The mediator needs only a single GCM engine.

Run:  python examples/cm_plugins.py
"""

from repro.xmlio import BUILTIN_PLUGINS
from repro.flogic import FLogicEngine


def main():
    engine = FLogicEngine()  # the mediator's single GCM engine

    for name, module in sorted(BUILTIN_PLUGINS.items()):
        result = module.translate(module.SAMPLE_DOCUMENT)
        print("=" * 64)
        print("plug-in %r translated CM %r" % (name, result.cm.name))
        print(result.cm.describe())
        if result.anchors:
            print("  anchors:", result.anchors)
        # every translated CM loads into the same engine
        engine.tell_rules(result.cm.all_rules(include_constraints=False))

    print("=" * 64)
    print("...and the same CMs register with a mediator as sources:\n")

    from repro.core import Mediator
    from repro.domainmap import DomainMap
    from repro.sources import wrapper_from_cm

    dm = DomainMap("cells")
    dm.add_concepts(["Purkinje_Cell", "Neuron"])
    mediator = Mediator(dm)
    for module in BUILTIN_PLUGINS.values():
        result = module.translate(module.SAMPLE_DOCUMENT)
        mediator.register(wrapper_from_cm(result.cm, result.anchors))
    print("registered:", mediator.source_names())
    print("semantic index:", mediator.index.coverage())
    print("anchored query:", mediator.ask("X : 'Purkinje_Cell'"))

    print("\n" + "=" * 64)
    print("one engine now answers over all three worlds:\n")

    # the RDF world
    print("RDF instance p1 is a neuron:", engine.holds("p1 : neuron"))
    print("   location:", engine.ask("p1[location -> L]"))

    # the UML world (associations became GCM relations)
    print("UML link:", engine.ask("has(X, Y)"))

    # the ER world (relationships + typed rows)
    print("ER measures:", engine.ask("measures(E, N)"))

    # and schema-level reasoning spans them all
    print("\nall classes known to the mediator:")
    print(" ", ", ".join(engine.classes()))


if __name__ == "__main__":
    main()
