"""The KIND Neuroscience scenario end-to-end (Sections 1, 4, 5).

Rebuilds the paper's prototype setting — the ANATOM domain map plus the
SYNAPSE, NCMIR and SENSELAB sources — and walks through:

* the "two worlds" correlation of Example 1 (spine morphology meets
  protein localization at the `Spine` concept),
* Example 4's `protein_distribution` view (recursive aggregate below
  `Cerebellum`),
* the Section 5 query with its four-step plan:
  "What is the distribution of those calcium-binding proteins that are
  found in neurons that receive signals from parallel fibers in rat
  brains?"

Run:  python examples/neuroscience_mediation.py
"""

from repro.neuro import build_scenario, section5_query


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    scenario = build_scenario(seed=2001)
    mediator = scenario.mediator

    banner("Registered mediated system")
    print("sources:", mediator.source_names())
    print("views:  ", mediator.view_names())
    print("domain map: %d concepts, %d axioms"
          % (len(mediator.dm.concepts), len(mediator.dm.axioms)))
    for message, size in mediator.wire_log:
        print("  wire: %-22s %6d bytes" % (message, size))

    banner("Example 1 — multiple worlds meet at the Spine concept")
    spine_objects = sorted(r["X"] for r in mediator.ask("X : 'Spine'"))
    by_source = {}
    for obj in spine_objects:
        by_source.setdefault(obj.split(".")[0], []).append(obj)
    for source, objects in sorted(by_source.items()):
        print("  %-8s %4d spine-anchored objects (e.g. %s)"
              % (source, len(objects), objects[0]))

    banner("Example 4 — protein_distribution for Ryanodine Receptor, rat, "
           "below Cerebellum")
    distribution = mediator.compute_distribution(
        "Cerebellum",
        "amount",
        group_attr="protein_name",
        group_value="Ryanodine Receptor",
        filters={"organism": "rat"},
    )
    print(distribution)

    banner("Section 5 — the calcium-binding protein query")
    plan, context = mediator.correlate(section5_query())
    print("query plan:")
    print(plan.describe())
    print("\nstep 1 bindings (X, Y):",
          context.bindings[("receiving_neuron", "receiving_compartment")])
    print("step 2 selected sources:", context.selected_sources)
    print("step 4 distribution root (lub):", context.root)
    print("\nanswers (protein, distribution):")
    for protein, dist in context.answers:
        print("\n  %s  (total %.3f)" % (protein, dist.total()))
        for concept, depth, direct, cumulative in dist.as_table():
            if cumulative is None:
                continue
            print("    %s%-24s direct=%-8s cumulative=%.3f"
                  % ("  " * depth, concept,
                     ("%.3f" % direct) if direct is not None else "-",
                     cumulative))


if __name__ == "__main__":
    main()
