"""Domain maps in depth: Figures 1 and 3, edge execution, reasoning.

* builds Figure 1 from Example 1's DL statements and prints the drawn
  edges + DOT,
* registers Figure 3's `MyNeuron` / `MyDendrite` refinement and shows
  the derived knowledge ("MyNeuron definitely projects to
  Globus_Pallidus_External"),
* executes an (ex) edge both ways: as an integrity constraint (an `ic`
  witness for the unfilled dendrite) and as an assertion (a Skolem
  placeholder object),
* runs the restricted subsumption reasoner and shows the Proposition 1
  boundary.

Run:  python examples/domain_map_reasoning.py
"""

from repro.datalog import Program, evaluate
from repro.datalog.ast import Rule
from repro.domainmap import (
    Reasoner,
    compile_domain_map,
    edge_constraint_rules,
    has_a_star,
    lub,
    parse_concept,
    register_concepts,
    to_dot,
    to_text,
)
from repro.errors import UndecidableFragmentError
from repro.gcm.constraints import witnesses_from_store
from repro.neuro import FIGURE3_REGISTRATION, build_figure1, build_figure3_base


def banner(text):
    print("\n" + "=" * 72)
    print(text)
    print("=" * 72)


def main():
    banner("Figure 1 — the SYNAPSE + NCMIR domain map")
    fig1 = build_figure1()
    print(to_text(fig1))
    print("\nderived has_a_star links (sample):")
    for src, dst in sorted(has_a_star(fig1, "has"))[:8]:
        print("   %s has %s" % (src, dst))
    print("\nlub(Spine, Branch) in the containment order:",
          lub(fig1, ["Spine", "Branch"], order="has"))
    print("\nGraphviz available via to_dot(); first lines:")
    print("\n".join(to_dot(fig1).splitlines()[:5]), "...")

    banner("Figure 3 — registering MyNeuron / MyDendrite")
    fig3 = build_figure3_base()
    result = register_concepts(fig3, FIGURE3_REGISTRATION)
    print(result.describe())

    banner("Edge execution — Dendrite -has-> Branch")
    dm = build_figure1()
    facts = [
        ("instance", "d1", "Dendrite"),
        ("instance", "d2", "Dendrite"),
        ("instance", "b1", "Branch"),
        ("role_fact", "has", "d1", "b1"),
    ]

    # (a) as an assertion: d2 gets a placeholder branch
    program = Program(
        compile_domain_map(dm, assertions_for=[("Dendrite", "has", "Branch")])
    )
    for pred, *args in facts:
        program.add_fact(pred, *args)
    model = evaluate(program)
    print("assertion mode (placeholders):")
    for atom in model.store.sorted_atoms("role_asserted"):
        print("   %s" % atom)

    # (b) as an integrity constraint: d2 is reported as a violation
    base = Program(compile_domain_map(dm))
    for pred, *args in facts:
        base.add_fact(pred, *args)
    materialized = evaluate(base)
    checking = Program()
    for atom in materialized.store.iter_atoms():
        checking.add(Rule(atom))
    checking.extend(edge_constraint_rules("Dendrite", "has", "Branch"))
    print("constraint mode (ic witnesses):")
    for witness in witnesses_from_store(evaluate(checking).store):
        print("   %s" % witness)

    banner("Reasoning — structural subsumption and Proposition 1")
    reasoner = Reasoner(build_figure1())
    checks = [
        ("Neuron", "Purkinje_Cell"),
        ("Spiny_Neuron", "Purkinje_Cell"),
        ("Purkinje_Cell", "Neuron"),
    ]
    for general, specific in checks:
        print("   %s subsumes %s : %s"
              % (general, specific, reasoner.subsumes(general, specific)))
    print("   Spiny_Neuron == Neuron & exists has.Spine :",
          reasoner.equivalent(
              "Spiny_Neuron", parse_concept("Neuron & exists has.Spine")))

    print("\nOutside the fragment (Proposition 1):")
    try:
        Reasoner(build_figure3_base())
    except UndecidableFragmentError as exc:
        print("   UndecidableFragmentError:", exc)


if __name__ == "__main__":
    main()
