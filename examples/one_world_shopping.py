"""The intro's contrast case: a simple "one world" scenario.

The paper concedes that the standard XML-level architecture is "very
powerful and useful in simple one world scenarios (say comparison
shopping with amazon.com and barnesandnoble.com)" — the sources share a
world, so a trivial domain map and a plain union view suffice.  This
example builds exactly that, showing the same machinery degrading
gracefully: no multi-world correlation, no lub, no aggregate traversal;
just anchored classes and a GAV union view.

Contrast with `neuroscience_mediation.py`, where the domain map does
real work.

Run:  python examples/one_world_shopping.py
"""

from repro.core import IntegratedView, Mediator
from repro.domainmap import DomainMap
from repro.sources import AnchorSpec, Column, RelStore, Wrapper


def bookstore(name, rows):
    store = RelStore(name)
    table = store.create_table(
        "listing",
        [
            Column("isbn", "str"),
            Column("title", "str"),
            Column("price", "float"),
            Column("in_stock", "bool"),
        ],
        key="isbn",
    )
    table.insert_many(rows)
    wrapper = Wrapper(name, store)
    wrapper.export_class(
        "listing",
        "listing",
        "isbn",
        methods={
            "isbn": "isbn",
            "title": "title",
            "price": "price",
            "in_stock": "in_stock",
        },
        anchor=AnchorSpec(concept="Book"),  # one shared world: one concept
        selectable={"isbn", "title"},
    )
    return wrapper


AMAZON_ROWS = [
    {"isbn": "0-13-086071-7", "title": "Foundations of Databases", "price": 89.99, "in_stock": True},
    {"isbn": "1-55860-456-X", "title": "Principles of Data Integration", "price": 74.50, "in_stock": True},
    {"isbn": "0-12-345678-9", "title": "Deductive Databases in Practice", "price": 45.00, "in_stock": False},
]

BN_ROWS = [
    {"isbn": "0-13-086071-7", "title": "Foundations of Databases", "price": 82.25, "in_stock": True},
    {"isbn": "0-12-345678-9", "title": "Deductive Databases in Practice", "price": 41.80, "in_stock": True},
    {"isbn": "3-54-041337-0", "title": "Semantics of Logic Programs", "price": 55.00, "in_stock": True},
]


def main():
    # the entire "domain knowledge" of a one-world scenario:
    dm = DomainMap("books")
    dm.add_concept("Book")

    mediator = Mediator(dm, name="shopper")
    mediator.register(bookstore("AMAZON", AMAZON_ROWS))
    mediator.register(bookstore("BN", BN_ROWS))

    # the union view: in-stock offers across both stores (GAV)
    mediator.add_view(
        IntegratedView(
            "offer",
            "X : offer[title -> T; price -> P] :- "
            "X : listing[title -> T; price -> P].",
        )
    )

    print("comparison shopping over %s" % mediator.source_names())
    print("\nall offers:")
    for row in mediator.ask("X : offer[title -> T; price -> P]"):
        store = str(row["X"]).split(".")[0]
        print("  %-34s %-7s $%6.2f" % (row["T"], store, row["P"]))

    # best price per title: an FL aggregate over the union view
    print("\nbest price per title:")
    best = mediator.ask("B = min{P [T]; X : offer[title -> T; price -> P]}")
    for row in best:
        print("  %-34s $%6.2f" % (row["T"], row["B"]))

    # who undercuts whom on shared titles?
    print("\nprice gaps on shared titles:")
    gaps = mediator.ask(
        "X : listing[isbn -> I; price -> PA], "
        "Y : listing[isbn -> I; price -> PB], "
        "PA > PB, D is PA - PB"
    )
    seen = set()
    for row in gaps:
        if row["I"] in seen:
            continue
        seen.add(row["I"])
        print("  isbn %-15s  gap $%5.2f" % (row["I"], row["D"]))

    print(
        "\n(no lub, no has_a_star, no multi-world plan — the paper's point:"
        "\n one-world mediation needs none of the domain-map machinery)"
    )


if __name__ == "__main__":
    main()
