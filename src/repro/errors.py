"""Exception hierarchy for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: the Datalog engine, the F-logic layer, the GCM, domain
maps, the XML transport, and the mediator each get their own branch.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for all errors raised by the repro library."""


# ---------------------------------------------------------------------------
# Datalog engine
# ---------------------------------------------------------------------------

class DatalogError(ReproError):
    """Base class for errors raised by the Datalog engine."""


class ParseError(DatalogError):
    """A textual program or query could not be parsed.

    Attributes:
        text: the offending input.
        position: character offset where the error was detected.
        line: 1-based line number of the error.
        column: 1-based column number of the error.
    """

    def __init__(self, message, text=None, position=None):
        self.text = text
        self.position = position
        self.line = None
        self.column = None
        if text is not None and position is not None:
            prefix = text[:position]
            self.line = prefix.count("\n") + 1
            self.column = position - (prefix.rfind("\n") + 1) + 1
            message = "%s (line %d, column %d)" % (message, self.line, self.column)
        super().__init__(message)


class SafetyError(DatalogError):
    """A rule violates range restriction / negation or aggregate safety."""


class StratificationError(DatalogError):
    """A program cannot be stratified (e.g. aggregation through recursion)."""


class EvaluationError(DatalogError):
    """A runtime failure during bottom-up evaluation (e.g. a builtin was
    called with unbound arguments that it requires to be bound)."""


# ---------------------------------------------------------------------------
# F-logic layer
# ---------------------------------------------------------------------------

class FLogicError(ReproError):
    """Base class for errors raised by the F-logic front end."""


class FLogicParseError(FLogicError, ParseError):
    """An F-logic program or query could not be parsed."""


class FLogicTranslationError(FLogicError):
    """An F-logic construct has no Datalog translation."""


# ---------------------------------------------------------------------------
# GCM
# ---------------------------------------------------------------------------

class GCMError(ReproError):
    """Base class for errors raised by the generic conceptual model."""


class SchemaError(GCMError):
    """A CM schema declaration is malformed or inconsistent."""


class ConstraintViolation(GCMError):
    """Raised (on request) when integrity checking finds `ic` witnesses.

    Attributes:
        witnesses: the failure-witness facts that were derived into `ic`.
    """

    def __init__(self, message, witnesses=()):
        super().__init__(message)
        self.witnesses = tuple(witnesses)


# ---------------------------------------------------------------------------
# Domain maps
# ---------------------------------------------------------------------------

class DomainMapError(ReproError):
    """Base class for domain-map errors."""


class UnknownConceptError(DomainMapError):
    """A concept name was used that is not declared in the domain map."""


class UnknownRoleError(DomainMapError):
    """A role name was used that is not declared in the domain map."""


class UndecidableFragmentError(DomainMapError):
    """Reasoning was requested outside the restricted decidable fragment.

    The paper's Proposition 1 shows subsumption and satisfiability are
    undecidable for unrestricted GCM domain maps; the reasoner only
    accepts the structural fragment and raises this error otherwise.
    """


class NoUpperBoundError(DomainMapError):
    """`lub` was requested for concepts with no common isa-ancestor."""


# ---------------------------------------------------------------------------
# XML transport / CM plug-ins
# ---------------------------------------------------------------------------

class XMLTransportError(ReproError):
    """Base class for XML wire-format errors."""


class PluginError(XMLTransportError):
    """A CM plug-in translator is malformed or failed to apply."""


# ---------------------------------------------------------------------------
# Sources & wrappers
# ---------------------------------------------------------------------------

class SourceError(ReproError):
    """Base class for source/wrapper errors."""


class CapabilityError(SourceError):
    """A query was sent to a source that its declared capabilities
    cannot answer (e.g. an unsupported binding pattern)."""


class RelStoreError(SourceError):
    """An error in the in-memory relational store (unknown table/column,
    arity mismatch, duplicate key, ...)."""


# ---------------------------------------------------------------------------
# Mediator
# ---------------------------------------------------------------------------

class MediatorError(ReproError):
    """Base class for mediator errors."""


class RegistrationError(MediatorError):
    """A source registration message was rejected."""


class PlanningError(MediatorError):
    """No executable plan exists for a query (e.g. no source can supply
    bindings required by another source's binding pattern)."""


class ViewError(MediatorError):
    """An integrated view definition is malformed."""
