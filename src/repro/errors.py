"""Exception hierarchy and structured diagnostics for the repro package.

Every error raised by the library derives from :class:`ReproError`, so
applications can catch a single base class.  Sub-hierarchies mirror the
package layout: the Datalog engine, the F-logic layer, the GCM, domain
maps, the XML transport, and the mediator each get their own branch.

Errors and the static analyzer (:mod:`repro.analysis`, "medlint")
share one structured-diagnostic vocabulary:

* every error class carries a stable diagnostic ``code`` (``MBM0xx``)
  and a ``severity``;
* an optional :class:`Span` locates the problem in its deployment unit
  (a view, a source's CM, the domain map, a rule);
* :meth:`ReproError.to_diagnostic` converts a raised error into the
  same :class:`Diagnostic` records the analyzer emits, so runtime
  failures and lint findings render and serialize identically.
"""

from __future__ import annotations

#: diagnostic severities, ordered from worst to most benign
SEVERITY_ERROR = "error"
SEVERITY_WARNING = "warning"
SEVERITY_INFO = "info"

SEVERITIES = (SEVERITY_ERROR, SEVERITY_WARNING, SEVERITY_INFO)


class Span:
    """Where a diagnostic points inside a mediator deployment.

    ``unit`` names the deployment artifact ("view calcium_binding",
    "source NCMIR", "domain map ANATOM", ...); ``detail`` is the
    offending fragment (usually a rule or axiom rendered as text);
    ``line``/``column`` are 1-based text positions when the artifact
    came from parsed text.
    """

    __slots__ = ("unit", "detail", "line", "column")

    def __init__(self, unit, detail=None, line=None, column=None):
        self.unit = unit
        self.detail = detail
        self.line = line
        self.column = column

    def as_dict(self):
        return {
            "unit": self.unit,
            "detail": self.detail,
            "line": self.line,
            "column": self.column,
        }

    def __eq__(self, other):
        return isinstance(other, Span) and (
            (self.unit, self.detail, self.line, self.column)
            == (other.unit, other.detail, other.line, other.column)
        )

    def __hash__(self):
        return hash(("Span", self.unit, self.detail, self.line, self.column))

    def __str__(self):
        text = self.unit
        if self.line is not None:
            text += ":%d" % self.line
            if self.column is not None:
                text += ":%d" % self.column
        if self.detail is not None:
            text += " `%s`" % self.detail
        return text

    def __repr__(self):
        return "Span(%r, detail=%r, line=%r, column=%r)" % (
            self.unit,
            self.detail,
            self.line,
            self.column,
        )


class Diagnostic:
    """One structured finding: code, severity, message, optional span."""

    __slots__ = ("code", "severity", "message", "span")

    def __init__(self, code, message, severity=SEVERITY_ERROR, span=None):
        if severity not in SEVERITIES:
            raise ValueError("unknown severity %r" % severity)
        self.code = code
        self.severity = severity
        self.message = message
        self.span = span

    def as_dict(self):
        return {
            "code": self.code,
            "severity": self.severity,
            "message": self.message,
            "span": self.span.as_dict() if self.span is not None else None,
        }

    def sort_key(self):
        return (
            SEVERITIES.index(self.severity),
            self.code,
            self.span.unit if self.span is not None else "",
            self.message,
        )

    def __eq__(self, other):
        return isinstance(other, Diagnostic) and (
            (self.code, self.severity, self.message, self.span)
            == (other.code, other.severity, other.message, other.span)
        )

    def __hash__(self):
        return hash(("Diagnostic", self.code, self.severity, self.message, self.span))

    def __str__(self):
        text = "%s[%s] %s" % (self.severity, self.code, self.message)
        if self.span is not None:
            text += "  (%s)" % self.span
        return text

    def __repr__(self):
        return "Diagnostic(%r, %r, severity=%r, span=%r)" % (
            self.code,
            self.message,
            self.severity,
            self.span,
        )


class ReproError(Exception):
    """Base class for all errors raised by the repro library.

    Class attributes ``code`` and ``severity`` give each error family a
    default diagnostic identity; both (and a :class:`Span`) can be
    overridden per raise via keyword arguments.
    """

    code = "MBM000"
    severity = SEVERITY_ERROR
    span = None

    def __init__(self, *args, code=None, span=None):
        super().__init__(*args)
        if code is not None:
            self.code = code
        if span is not None:
            self.span = span

    def to_diagnostic(self):
        """This error as a :class:`Diagnostic` record."""
        return Diagnostic(
            self.code, str(self), severity=self.severity, span=self.span
        )


# ---------------------------------------------------------------------------
# Datalog engine
# ---------------------------------------------------------------------------

class DatalogError(ReproError):
    """Base class for errors raised by the Datalog engine."""


class ParseError(DatalogError):
    """A textual program or query could not be parsed.

    Attributes:
        text: the offending input.
        position: character offset where the error was detected.
        line: 1-based line number of the error.
        column: 1-based column number of the error.
    """

    code = "MBM090"

    def __init__(self, message, text=None, position=None):
        self.text = text
        self.position = position
        self.line = None
        self.column = None
        if text is not None and position is not None:
            prefix = text[:position]
            self.line = prefix.count("\n") + 1
            self.column = position - (prefix.rfind("\n") + 1) + 1
            message = "%s (line %d, column %d)" % (message, self.line, self.column)
        super().__init__(message)


class SafetyError(DatalogError):
    """A rule violates range restriction / negation or aggregate safety.

    The default code is the range-restriction violation; the safety
    checker raises with the specific ``MBM001``–``MBM004`` code of the
    violated condition.
    """

    code = "MBM001"


class StratificationError(DatalogError):
    """A program cannot be stratified (e.g. aggregation through recursion).

    Raised with ``MBM005`` for negation through recursion (which the
    engine can still evaluate under the well-founded semantics) and
    ``MBM006`` for aggregation through recursion (rejected outright).
    """

    code = "MBM006"


class EvaluationError(DatalogError):
    """A runtime failure during bottom-up evaluation (e.g. a builtin was
    called with unbound arguments that it requires to be bound)."""

    code = "MBM091"


# ---------------------------------------------------------------------------
# F-logic layer
# ---------------------------------------------------------------------------

class FLogicError(ReproError):
    """Base class for errors raised by the F-logic front end."""


class FLogicParseError(FLogicError, ParseError):
    """An F-logic program or query could not be parsed."""


class FLogicTranslationError(FLogicError):
    """An F-logic construct has no Datalog translation."""


# ---------------------------------------------------------------------------
# GCM
# ---------------------------------------------------------------------------

class GCMError(ReproError):
    """Base class for errors raised by the generic conceptual model."""


class SchemaError(GCMError):
    """A CM schema declaration is malformed or inconsistent."""

    code = "MBM011"


class ConstraintViolation(GCMError):
    """Raised (on request) when integrity checking finds `ic` witnesses.

    Attributes:
        witnesses: the failure-witness facts that were derived into `ic`.
    """

    def __init__(self, message, witnesses=()):
        super().__init__(message)
        self.witnesses = tuple(witnesses)


# ---------------------------------------------------------------------------
# Domain maps
# ---------------------------------------------------------------------------

class DomainMapError(ReproError):
    """Base class for domain-map errors."""


class UnknownConceptError(DomainMapError):
    """A concept name was used that is not declared in the domain map."""

    code = "MBM020"


class UnknownRoleError(DomainMapError):
    """A role name was used that is not declared in the domain map."""

    code = "MBM025"


class UndecidableFragmentError(DomainMapError):
    """Reasoning was requested outside the restricted decidable fragment.

    The paper's Proposition 1 shows subsumption and satisfiability are
    undecidable for unrestricted GCM domain maps; the reasoner only
    accepts the structural fragment and raises this error otherwise.
    """


class NoUpperBoundError(DomainMapError):
    """`lub` was requested for concepts with no common isa-ancestor."""


# ---------------------------------------------------------------------------
# XML transport / CM plug-ins
# ---------------------------------------------------------------------------

class XMLTransportError(ReproError):
    """Base class for XML wire-format errors."""


class PluginError(XMLTransportError):
    """A CM plug-in translator is malformed or failed to apply."""


# ---------------------------------------------------------------------------
# Sources & wrappers
# ---------------------------------------------------------------------------

class SourceError(ReproError):
    """Base class for source/wrapper errors."""


class CapabilityError(SourceError):
    """A query was sent to a source that its declared capabilities
    cannot answer (e.g. an unsupported binding pattern).

    Malformed binding-pattern declarations raise with code ``MBM041``;
    unanswerable selections keep the default ``MBM040``.
    """

    code = "MBM040"


class RelStoreError(SourceError):
    """An error in the in-memory relational store (unknown table/column,
    arity mismatch, duplicate key, ...)."""


class SourceTimeoutError(SourceError):
    """A source call exceeded the configured per-call timeout (the
    resilience layer treats the attempt as failed and retries)."""

    code = "MBM045"


class BreakerOpenError(SourceError):
    """The circuit breaker for a ``(source, class)`` pair is open: the
    call was rejected without contacting the source.  Carries the
    breaker key so degraded-answer reports can name it."""

    code = "MBM046"

    def __init__(self, *args, source=None, class_name=None, code=None, span=None):
        super().__init__(*args, code=code, span=span)
        self.source = source
        self.class_name = class_name


# ---------------------------------------------------------------------------
# Mediator
# ---------------------------------------------------------------------------

class MediatorError(ReproError):
    """Base class for mediator errors."""


class RegistrationError(MediatorError):
    """A source registration message was rejected."""

    code = "MBM043"

    def __init__(self, *args, diagnostics=(), code=None, span=None):
        super().__init__(*args, code=code, span=span)
        self.diagnostics = tuple(diagnostics)


class PlanningError(MediatorError):
    """No executable plan exists for a query (e.g. no source can supply
    bindings required by another source's binding pattern)."""

    code = "MBM042"


class ViewError(MediatorError):
    """An integrated view definition is malformed."""

    code = "MBM030"

    def __init__(self, *args, diagnostics=(), code=None, span=None):
        super().__init__(*args, code=code, span=span)
        self.diagnostics = tuple(diagnostics)
