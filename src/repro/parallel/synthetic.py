"""Synthetic slow-source deployments for exercising medpar.

:class:`SlowWrapper` is a latency facade over any
:class:`~repro.sources.Wrapper`: the data plane (``query`` /
``run_template``) sleeps a fixed delay before delegating, while the
control plane (schema export, capabilities, anchors) passes through
untouched — the profile of a federation of remote labs where every
retrieval pays a network round trip.

:func:`build_fanout_deployment` assembles the benchmark deployment:
one fast seed source (SENSELAB) plus N renamed NCMIR clones behind
slow facades, all exporting ``protein_amount`` anchored at the same
concepts.  The Section-5-style correlation query then retrieves from
all N clones in step 3, so its wall-clock time is ``sum`` of the
per-source latencies sequentially and ``max`` under medpar fan-out —
exactly the ratio ``benchmarks/test_bench_perf_parallel.py`` measures.
"""

from __future__ import annotations

import time

from ..core.mediator import Mediator
from ..core.planner import CorrelationQuery
from ..neuro.anatom import build_anatom
from ..neuro.ncmir import build_ncmir
from ..neuro.senselab import build_senselab

#: per-query latency of a slow clone (seconds) — large enough that the
#: fan-out win dominates scheduling noise, small enough for CI
DEFAULT_DELAY = 0.02


class SlowWrapper:
    """A wrapper facade that stalls every data-plane call.

    Args:
        inner: the real :class:`~repro.sources.Wrapper` underneath.
        delay: seconds slept (wall clock) before each ``query`` /
            ``run_template`` delegates.
        sleep: the sleeper (injectable for tests; ``time.sleep`` by
            default).
    """

    def __init__(self, inner, delay=DEFAULT_DELAY, sleep=None):
        self.inner = inner
        self.delay = delay
        self._sleep = sleep if sleep is not None else time.sleep

    # -- delegation (control plane untouched) ------------------------------

    @property
    def name(self):
        return self.inner.name

    @property
    def unwrapped(self):
        """The real wrapper underneath (for in-process shortcuts)."""
        return self.inner.unwrapped

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    # -- the slow data plane ----------------------------------------------

    def query(self, source_query):
        self._sleep(self.delay)
        return self.inner.query(source_query)

    def run_template(self, class_name, template_name, **arguments):
        self._sleep(self.delay)
        return self.inner.run_template(class_name, template_name, **arguments)

    def __repr__(self):
        return "SlowWrapper(%r, delay=%.3fs)" % (self.name, self.delay)


def build_fanout_deployment(
    sources=4, delay=DEFAULT_DELAY, seed=2001, parallel=False
):
    """A deployment whose retrieval step fans out over N slow sources.

    Args:
        sources: number of slow ``protein_amount`` exporters (NCMIR
            clones renamed ``SLOW0`` .. ``SLOW<n-1>``).
        delay: per-query latency of each slow source (seconds).
        seed: RNG seed for the synthetic source data (clone *i* uses
            ``seed + i``, so the clones hold different rows).
        parallel: the medpar configuration handed to
            :class:`~repro.core.Mediator` (False = sequential).

    Returns:
        ``(mediator, query)`` — run ``mediator.correlate(query)``.
    """
    mediator = Mediator(build_anatom(), name="fanout", parallel=parallel)
    mediator.register(build_senselab(seed), eager=False, via_xml=False)
    for i in range(sources):
        clone = build_ncmir(seed + i)
        # a Wrapper's name is a plain attribute, and object ids embed
        # it, so renamed clones register as distinct sources with
        # distinct objects
        clone.name = "SLOW%d" % i
        mediator.register(
            SlowWrapper(clone, delay=delay), eager=False, via_xml=False
        )
    query = CorrelationQuery(
        seed_class="neurotransmission",
        seed_selections={
            "organism": "rat",
            "transmitting_compartment": "parallel fiber",
        },
        anchor_attrs=("receiving_neuron", "receiving_compartment"),
        target_class="protein_amount",
        target_anchor_attr="location",
        target_filters={"ion_bound": "calcium", "organism": "rat"},
        group_attr="protein_name",
        value_attr="amount",
        role="has",
        func="sum",
        seed_source="SENSELAB",
    )
    return mediator, query
