"""The medpar executor: bounded, deterministic source fan-out.

A :class:`ParallelExecutor` wraps one
:class:`concurrent.futures.ThreadPoolExecutor` behind the two
primitives plan execution needs:

* :meth:`map_ordered` — run one callable per item concurrently and
  return the outcomes **in input order** (the deterministic merge: the
  caller sees results ordered by source name, never by completion
  time, so golden traces, EXPLAIN output and ``repro chaos``
  byte-determinism survive parallelism);
* :meth:`call` — run one callable under a true wall-clock timeout,
  enforced by a dedicated watcher thread (a hung wrapper is abandoned,
  not waited out — the per-call timeout of a
  :class:`~repro.resilience.policy.ResiliencePolicy` becomes real).

Both primitives adopt the submitting thread's current medtrace span as
the worker's parent, so ``plan.step`` trees stay well-nested across
threads.  :class:`SingleFlight` coalesces concurrent identical calls
onto one in-flight future (within-plan dedup under fan-out: N workers
asking the same source question cost one wire call).

The layer follows the house discipline: ``Mediator(parallel=...)``
defaults to off, costing the sequential path a single ``is None``
check, and a fan-out of one item runs inline on the calling thread —
byte-identical to the sequential code it replaces.

Fan-out activity is metered by the ``fanout.*`` counter family
(``fanout.batches``, ``fanout.tasks``, ``fanout.timeouts``,
``fanout.coalesced``) — see ``docs/parallelism.md``.
"""

from __future__ import annotations

import threading
from concurrent.futures import Future, ThreadPoolExecutor
from typing import Callable, Dict, List, Optional

from .. import obs
from ..errors import SourceTimeoutError

#: default worker-pool width (bounded: fan-out is per plan step, and
#: sources are typically few; a small pool keeps thread churn low)
DEFAULT_MAX_WORKERS = 4


class FanoutOutcome:
    """The result of one fanned-out task: a value or an error.

    Args:
        value: the callable's return value (None when it raised).
        error: the exception the callable raised (None on success).
    """

    __slots__ = ("value", "error")

    def __init__(self, value=None, error=None):
        self.value = value
        self.error = error

    @property
    def ok(self):
        return self.error is None

    @classmethod
    def capture(cls, fn, item):
        """Run ``fn(item)`` on the calling thread, capturing either
        outcome (the inline, no-fan-out path)."""
        try:
            return cls(value=fn(item))
        except Exception as exc:
            return cls(error=exc)

    @classmethod
    def from_future(cls, future):
        """Wait for `future` and wrap its result or exception."""
        try:
            return cls(value=future.result())
        except Exception as exc:
            return cls(error=exc)

    def __repr__(self):
        if self.ok:
            return "FanoutOutcome(ok)"
        return "FanoutOutcome(error=%s)" % type(self.error).__name__


def _trace_adopting(fn):
    """Wrap `fn` so the worker thread adopts the submitting thread's
    current span as its parent (spans opened by the task nest under
    the plan step that fanned it out, not under a foreign root)."""
    tracer = obs.active()
    if not tracer.enabled:
        return fn
    parent = tracer.current

    def adopted(*args):
        with tracer.adopt(parent):
            return fn(*args)

    return adopted


class ParallelExecutor:
    """A bounded thread-pool fanning independent source calls out.

    Args:
        max_workers: pool width — concurrent tasks beyond it queue
            (must be >= 1; defaults to :data:`DEFAULT_MAX_WORKERS`).
        name: thread-name prefix, visible in trace dumps and debuggers.
    """

    def __init__(self, max_workers=DEFAULT_MAX_WORKERS, name="medpar"):
        if max_workers < 1:
            raise ValueError("max_workers must be >= 1")
        self.max_workers = max_workers
        self.name = name
        self._pool: Optional[ThreadPoolExecutor] = None
        self._lock = threading.Lock()

    # -- pool lifecycle ----------------------------------------------------

    def _ensure_pool(self):
        with self._lock:
            if self._pool is None:
                self._pool = ThreadPoolExecutor(
                    max_workers=self.max_workers,
                    thread_name_prefix=self.name,
                )
            return self._pool

    def shutdown(self):
        """Stop the worker threads (idempotent; the executor lazily
        restarts its pool if used again)."""
        with self._lock:
            pool, self._pool = self._pool, None
        if pool is not None:
            pool.shutdown(wait=True)

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        self.shutdown()
        return False

    # -- deterministic fan-out ---------------------------------------------

    def map_ordered(self, items, fn, kind="fanout"):
        """Run ``fn(item)`` for every item; outcomes in *input* order.

        The deterministic merge: the returned list of
        :class:`FanoutOutcome` is positionally aligned with `items`
        regardless of completion order.  Every task runs even when an
        earlier one fails — error policy (skip, degrade, raise first
        in order) stays with the caller.  A single item runs inline on
        the calling thread (no fan-out, identical traces to the
        sequential path).

        Args:
            items: the work list (e.g. selected source names, already
                sorted by the caller).
            fn: one-argument callable applied to each item.
            kind: label for the ``fanout.batches`` / ``fanout.tasks``
                counters.
        """
        items = list(items)
        if not items:
            return []
        if len(items) == 1:
            return [FanoutOutcome.capture(fn, items[0])]
        pool = self._ensure_pool()
        obs.count("fanout.batches", kind=kind)
        obs.count("fanout.tasks", len(items), kind=kind)
        adopted = _trace_adopting(fn)
        futures = [pool.submit(adopted, item) for item in items]
        return [FanoutOutcome.from_future(future) for future in futures]

    # -- wall-clock timeout ------------------------------------------------

    def call(self, fn, timeout=None):
        """Run ``fn()``, abandoning it after `timeout` wall seconds.

        The callable runs on a dedicated daemon thread (never a pool
        worker: a guarded call may itself be running inside the pool,
        and borrowing a second worker per timed call could deadlock a
        saturated pool).  On expiry a
        :class:`~repro.errors.SourceTimeoutError` is raised and the
        hung thread is abandoned — its eventual result is discarded.
        With ``timeout=None`` this is just ``fn()``.

        Args:
            fn: zero-argument callable (one source-call attempt).
            timeout: wall-clock seconds to wait (None = unbounded).
        """
        if timeout is None:
            return fn()
        box: Dict[str, object] = {}
        adopted = _trace_adopting(lambda: fn())

        def run():
            try:
                box["value"] = adopted()
            except BaseException as exc:  # delivered to the caller
                box["error"] = exc

        thread = threading.Thread(
            target=run, name="%s-timed" % self.name, daemon=True
        )
        thread.start()
        thread.join(timeout)
        if thread.is_alive():
            obs.count("fanout.timeouts")
            raise SourceTimeoutError(
                "call abandoned after %.3fs wall-clock timeout" % timeout
            )
        if "error" in box:
            raise box["error"]  # type: ignore[misc]
        return box["value"]

    def __repr__(self):
        return "ParallelExecutor(max_workers=%d)" % self.max_workers


class SingleFlight:
    """Coalesces concurrent identical calls onto one in-flight future.

    The first caller of a key becomes the *owner* and executes the
    work; concurrent callers of the same key block on the owner's
    future and share its result (or its exception) without issuing the
    call themselves.  Completion removes the key, so a failed call is
    retryable while a successful one is typically memoized by the
    caller (only successes deserve to stick).
    """

    def __init__(self):
        self._lock = threading.Lock()
        self._in_flight: Dict[object, Future] = {}

    def run(self, key, fn, on_coalesced=None):
        """Run ``fn()`` under `key`, coalescing concurrent duplicates.

        Args:
            key: identity of the call (e.g. a plan fingerprint).
            fn: zero-argument callable performing the work.
            on_coalesced: called (with no arguments) on a waiter that
                shared an in-flight result instead of executing.
        """
        with self._lock:
            future = self._in_flight.get(key)
            owner = future is None
            if owner:
                future = Future()
                self._in_flight[key] = future
        if not owner:
            if on_coalesced is not None:
                on_coalesced()
            return future.result()
        try:
            value = fn()
        except BaseException as exc:
            with self._lock:
                self._in_flight.pop(key, None)
            future.set_exception(exc)
            raise
        with self._lock:
            self._in_flight.pop(key, None)
        future.set_result(value)
        return value

    def __repr__(self):
        with self._lock:
            return "SingleFlight(in_flight=%d)" % len(self._in_flight)
