"""medpar: bounded parallel source fan-out for plan execution.

The mediator's correlation plan queries *independent* wrapped sources
(Section 2 of the paper); sequentially their latencies add, so
wall-clock time is the sum when it should be the max.  This package
fans the per-source calls of a plan step out over a bounded thread
pool while keeping every determinism contract intact: results merge in
source-name order, medtrace spans stay well-nested across workers, and
``repro chaos`` reruns stay byte-identical.

Attach with ``Mediator(parallel=...)`` — ``True`` for the default pool,
an int for a ``max_workers`` knob, or a prebuilt
:class:`ParallelExecutor` to share one pool between mediators.  Off by
default: the sequential path pays a single ``is None`` check.

See ``docs/parallelism.md`` for the executor model, the determinism
contract, and how the layer composes with medguard and medcache.
"""

from .executor import (
    DEFAULT_MAX_WORKERS,
    FanoutOutcome,
    ParallelExecutor,
    SingleFlight,
)

__all__ = [
    "DEFAULT_MAX_WORKERS",
    "FanoutOutcome",
    "ParallelExecutor",
    "SingleFlight",
    "build_fanout_deployment",
]


def __getattr__(name):
    # build_fanout_deployment lives in .synthetic, which imports the
    # mediator stack; loading it lazily keeps repro.parallel a leaf
    # package importable from repro.core without a cycle
    if name == "build_fanout_deployment":
        from .synthetic import build_fanout_deployment

        return build_fanout_deployment
    raise AttributeError("module %r has no attribute %r" % (__name__, name))
