"""RDF(S)-to-GCM plug-in.

The paper notes that "CMs formalized in XML Schema or RDF Schema come
directly in XML syntax" and that "RDF ... when used with a rule language
like F-logic, can be used as a GCM".  This plug-in handles a namespace-
free RDF/RDFS profile (the shape of striped RDF/XML after namespace
stripping)::

    <RDF>
      <Class id="neuron"/>
      <Class id="purkinje_cell"><subClassOf resource="neuron"/></Class>
      <Property id="location" domain="neuron" range="string"/>
      <Description about="p1" type="purkinje_cell">
        <location>cerebellum</location> -- handled via value emissions
      </Description>
    </RDF>

Property values are carried as ``<prop about=... name=... >v</prop>``
elements (a flattened triple form), keeping the mapping expressible in
the declarative translator language.
"""

from __future__ import annotations

from ..plugins import PluginTranslator

TRANSLATOR_XML = """
<translator name="rdf2gcm">
  <rule match=".//Class">
    <emit-class name="@id"/>
  </rule>
  <rule match=".//Class/subClassOf">
    <emit-super class="parent@id" super="@resource"/>
  </rule>
  <rule match=".//Property">
    <emit-method class="@domain" name="@id" result="@range"/>
  </rule>
  <rule match=".//Description">
    <emit-instance object="@about" class="@type"/>
  </rule>
  <rule match=".//prop">
    <emit-value object="@about" method="@name" value="text" vtype="auto"/>
  </rule>
  <rule match=".//anchor">
    <emit-anchor class="@class" concept="@concept" context="@context"/>
  </rule>
</translator>
"""

SAMPLE_DOCUMENT = """
<RDF name="rdf_neuro">
  <Class id="neuron"/>
  <Class id="purkinje_cell"><subClassOf resource="neuron"/></Class>
  <Property id="location" domain="neuron" range="string"/>
  <Property id="soma_diameter" domain="neuron" range="float"/>
  <Description about="p1" type="purkinje_cell"/>
  <prop about="p1" name="location">cerebellum</prop>
  <prop about="p1" name="soma_diameter">24.5</prop>
  <anchor class="purkinje_cell" concept="Purkinje_Cell" context="location"/>
</RDF>
"""


def translator():
    """The compiled RDF-to-GCM translator."""
    return PluginTranslator.from_xml(TRANSLATOR_XML)


def translate(document, cm_name=None):
    """Translate an RDF-profile document into a conceptual model."""
    return translator().apply(document, cm_name=cm_name)
