"""(E)ER-to-GCM plug-in.

Entity-relationship diagrams are among the CM formalisms the paper
expects sources to use ("(E)ER, ORM, UML class diagrams etc.").  The
XML profile::

    <ERModel name="lab_er">
      <Entity name="experiment">
        <Attribute name="date" domain="string"/>
        <IsA super="record"/>
      </Entity>
      <Relationship name="measures">
        <Participant role="exp" entity="experiment"/>
        <Participant role="subject" entity="neuron"/>
      </Relationship>
      <Row entity="experiment" key="e1">
        <Cell attribute="date">2001-02-14</Cell>
      </Row>
      <Fact relationship="measures">
        <Part role="exp" value="e1"/>
        <Part role="subject" value="n1"/>
      </Fact>
    </ERModel>
"""

from __future__ import annotations

from ..plugins import PluginTranslator

TRANSLATOR_XML = """
<translator name="er2gcm">
  <rule match=".//Entity">
    <emit-class name="@name"/>
  </rule>
  <rule match=".//Entity/IsA">
    <emit-super class="parent@name" super="@super"/>
  </rule>
  <rule match=".//Entity/Attribute">
    <emit-method class="parent@name" name="@name" result="@domain"/>
  </rule>
  <rule match=".//Relationship">
    <emit-relation name="@name">
      <role-source match="Participant" name="@role" class="@entity"/>
    </emit-relation>
  </rule>
  <rule match=".//Row">
    <emit-instance object="@key" class="@entity"/>
  </rule>
  <rule match=".//Row/Cell">
    <emit-value object="parent@key" method="@attribute" value="text" vtype="auto"/>
  </rule>
  <rule match=".//Fact">
    <emit-tuple relation="@relationship">
      <role-source match="Part" name="@role" value="@value"/>
    </emit-tuple>
  </rule>
  <rule match=".//SemanticAnchor">
    <emit-anchor class="@entity" concept="@concept" context="@context"/>
  </rule>
</translator>
"""

SAMPLE_DOCUMENT = """
<ERModel name="lab_er">
  <Entity name="record"/>
  <Entity name="experiment">
    <Attribute name="date" domain="string"/>
    <IsA super="record"/>
  </Entity>
  <Entity name="neuron">
    <Attribute name="label" domain="string"/>
  </Entity>
  <Relationship name="measures">
    <Participant role="exp" entity="experiment"/>
    <Participant role="subject" entity="neuron"/>
  </Relationship>
  <Row entity="experiment" key="e1">
    <Cell attribute="date">2001-02-14</Cell>
  </Row>
  <Row entity="neuron" key="n1">
    <Cell attribute="label">purkinje-17</Cell>
  </Row>
  <Fact relationship="measures">
    <Part role="exp" value="e1"/>
    <Part role="subject" value="n1"/>
  </Fact>
  <SemanticAnchor entity="neuron" concept="Neuron" context="label"/>
</ERModel>
"""


def translator():
    """The compiled ER-to-GCM translator."""
    return PluginTranslator.from_xml(TRANSLATOR_XML)


def translate(document, cm_name=None):
    """Translate an ER-profile document into a conceptual model."""
    return translator().apply(document, cm_name=cm_name)
