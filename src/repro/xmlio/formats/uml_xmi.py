"""UML/XMI-to-GCM plug-in.

Section 2's worked example: "a UXF-2-GCM translator is an XML query
that maps XML documents conforming to the UXF DTD to their equivalent
GCM representations".  This plug-in accepts a UXF/XMI-flavoured class
model::

    <Model name="lab_model">
      <Class name="Neuron">
        <Attribute name="location" type="string"/>
      </Class>
      <Class name="PurkinjeCell">
        <Generalization parent="Neuron"/>
      </Class>
      <Association name="has">
        <End role="whole" class="Neuron"/>
        <End role="part" class="Compartment"/>
      </Association>
      <Object id="p1" class="PurkinjeCell">
        <Slot name="location" value="cerebellum"/>
      </Object>
    </Model>

Associations become GCM relations (with their reified tuple objects),
generalizations become subclass links.
"""

from __future__ import annotations

from ..plugins import PluginTranslator

TRANSLATOR_XML = """
<translator name="uxf2gcm">
  <rule match=".//Class">
    <emit-class name="@name"/>
  </rule>
  <rule match=".//Class/Generalization">
    <emit-super class="parent@name" super="@parent"/>
  </rule>
  <rule match=".//Class/Attribute">
    <emit-method class="parent@name" name="@name" result="@type"/>
  </rule>
  <rule match=".//Association">
    <emit-relation name="@name">
      <role-source match="End" name="@role" class="@class"/>
    </emit-relation>
  </rule>
  <rule match=".//Object">
    <emit-instance object="@id" class="@class"/>
  </rule>
  <rule match=".//Object/Slot">
    <emit-value object="parent@id" method="@name" value="@value" vtype="auto"/>
  </rule>
  <rule match=".//Link">
    <emit-tuple relation="@association">
      <role-source match="LinkEnd" name="@role" value="@object"/>
    </emit-tuple>
  </rule>
  <rule match=".//Anchor">
    <emit-anchor class="@class" concept="@concept" context="@context"/>
  </rule>
</translator>
"""

SAMPLE_DOCUMENT = """
<Model name="uml_lab">
  <Class name="Neuron">
    <Attribute name="location" type="string"/>
  </Class>
  <Class name="Compartment"/>
  <Class name="PurkinjeCell">
    <Generalization parent="Neuron"/>
  </Class>
  <Association name="has">
    <End role="whole" class="Neuron"/>
    <End role="part" class="Compartment"/>
  </Association>
  <Object id="p1" class="PurkinjeCell">
    <Slot name="location" value="cerebellum"/>
  </Object>
  <Object id="d1" class="Compartment"/>
  <Link association="has">
    <LinkEnd role="whole" object="p1"/>
    <LinkEnd role="part" object="d1"/>
  </Link>
  <Anchor class="PurkinjeCell" concept="Purkinje_Cell"/>
</Model>
"""


def translator():
    """The compiled UXF/XMI-to-GCM translator."""
    return PluginTranslator.from_xml(TRANSLATOR_XML)


def translate(document, cm_name=None):
    """Translate a UML/XMI-profile document into a conceptual model."""
    return translator().apply(document, cm_name=cm_name)
