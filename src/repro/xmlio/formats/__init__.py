"""Built-in CM plug-ins: RDF(S), UML/XMI (UXF), and (E)ER profiles.

Each module exposes ``TRANSLATOR_XML`` (the declarative mapping the
source ships to the mediator once), ``SAMPLE_DOCUMENT``, and
``translate(document) -> PluginResult``.
"""

from . import er, rdf, uml_xmi

#: name -> module registry of the shipped plug-ins
BUILTIN_PLUGINS = {
    "rdf": rdf,
    "uml": uml_xmi,
    "er": er,
}

__all__ = ["BUILTIN_PLUGINS", "er", "rdf", "uml_xmi"]
