"""The CM plug-in mechanism: declarative XML-to-GCM translators.

Section 2: "a new CM formalism ... is added to the system by simply
plugging an [X]-2-GCM translator into the mediator.  Essentially such a
translator is nothing more than a complex XML query expression that a
source sends once to the mediator."  The mediator then needs *only a
single GCM engine* for arbitrary CM formalisms.

A translator is itself an XML document — data, not code — of the form::

    <translator name="er2gcm">
      <rule match=".//Entity">
        <emit-class name="@name"/>
      </rule>
      <rule match=".//Entity/Attribute">
        <emit-method class="parent@name" name="@name" result="@domain"/>
      </rule>
      <rule match=".//Instance">
        <emit-instance object="@id" class="@entity"/>
      </rule>
    </translator>

Each ``rule`` matches elements via ElementTree path syntax and emits GCM
declarations whose fields are *accessors* evaluated against the matched
element:

=================  =================================================
accessor           meaning
=================  =================================================
``@attr``          attribute of the matched element
``text``           text content of the matched element
``tag``            the element's tag name
``parent@attr``    attribute of the parent element
``child:tag@a``    attribute ``a`` of the first ``tag`` child
``child:tag``      text of the first ``tag`` child
``'literal'``      a literal string
=================  =================================================

Available emissions: ``emit-class``, ``emit-super``, ``emit-method``,
``emit-relation`` (with nested ``role-source``), ``emit-instance``,
``emit-value`` (with ``vtype="int|float|auto|str"``), ``emit-tuple``
(with nested ``role-source``), and ``emit-anchor`` (anchor/context
attributes for the semantic index).
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Iterable, List, Optional, Tuple

from ..errors import PluginError
from ..gcm.model import ConceptualModel
from .doc import parent_map, parse_xml


class PluginResult:
    """Outcome of applying a translator: the CM plus anchor declarations."""

    def __init__(self, cm, anchors):
        self.cm = cm
        self.anchors = anchors  # list of (class_name, concept, context|None)

    def __repr__(self):
        return "PluginResult(cm=%r, anchors=%d)" % (self.cm.name, len(self.anchors))


class PluginTranslator:
    """A compiled XML-to-GCM translator."""

    def __init__(self, name, rules, cm_name=None):
        self.name = name
        self.rules = rules  # list of (match_path, [emission Element])
        self.cm_name = cm_name

    @classmethod
    def from_xml(cls, text_or_element):
        if isinstance(text_or_element, str):
            root = parse_xml(text_or_element)
        else:
            root = text_or_element
        if root.tag != "translator":
            raise PluginError(
                "expected <translator> root, found <%s>" % root.tag
            )
        name = root.get("name") or "anonymous-translator"
        rules = []
        for rule_el in root.findall("rule"):
            match = rule_el.get("match")
            if not match:
                raise PluginError("<rule> requires a match attribute")
            emissions = list(rule_el)
            rules.append((match, emissions))
        if not rules:
            raise PluginError("translator %r has no rules" % name)
        return cls(name, rules, cm_name=root.get("cm-name"))

    # -- application -------------------------------------------------------

    def apply(self, document, cm_name=None):
        """Translate a source document into a conceptual model.

        Returns a :class:`PluginResult`.  `document` is XML text or an
        Element; `cm_name` overrides the translator's default CM name.
        """
        if isinstance(document, str):
            root = parse_xml(document)
        else:
            root = document
        parents = parent_map(root)
        collector = _Collector()
        for match, emissions in self.rules:
            try:
                matched = root.findall(match)
            except SyntaxError as exc:
                raise PluginError(
                    "bad match path %r in translator %r: %s"
                    % (match, self.name, exc)
                ) from exc
            for element in matched:
                for emission in emissions:
                    self._emit(emission, element, parents, collector)
        name = cm_name or self.cm_name or root.get("name") or self.name
        return collector.build(name)

    def _emit(self, emission, element, parents, collector):
        kind = emission.tag
        get = lambda field, default=None: _accessor(
            emission.get(field), element, parents, default
        )
        if kind == "emit-class":
            collector.classes.add(_need(get("name"), emission, "name"))
        elif kind == "emit-super":
            collector.supers.append(
                (
                    _need(get("class"), emission, "class"),
                    _need(get("super"), emission, "super"),
                )
            )
        elif kind == "emit-method":
            collector.methods.append(
                (
                    _need(get("class"), emission, "class"),
                    _need(get("name"), emission, "name"),
                    get("result", "string") or "string",
                    emission.get("multivalued") == "true",
                )
            )
        elif kind == "emit-relation":
            roles = self._nested_roles(emission, element, parents)
            collector.relations.append(
                (_need(get("name"), emission, "name"), roles)
            )
        elif kind == "emit-instance":
            collector.instances.append(
                (
                    _need(get("object"), emission, "object"),
                    _need(get("class"), emission, "class"),
                )
            )
        elif kind == "emit-value":
            raw = _need(get("value"), emission, "value")
            collector.values.append(
                (
                    _need(get("object"), emission, "object"),
                    _need(get("method"), emission, "method"),
                    _convert(raw, emission.get("vtype", "auto")),
                )
            )
        elif kind == "emit-tuple":
            roles = self._nested_roles(emission, element, parents)
            collector.tuples.append(
                (_need(get("relation"), emission, "relation"), roles)
            )
        elif kind == "emit-anchor":
            collector.anchors.append(
                (
                    _need(get("class"), emission, "class"),
                    _need(get("concept"), emission, "concept"),
                    get("context"),
                )
            )
        else:
            raise PluginError("unknown emission <%s>" % kind)

    def _nested_roles(self, emission, element, parents):
        roles = []
        for source in emission.findall("role-source"):
            match = source.get("match")
            targets = element.findall(match) if match else [element]
            for target in targets:
                roles.append(
                    (
                        _need(
                            _accessor(source.get("name"), target, parents),
                            source,
                            "name",
                        ),
                        _accessor(source.get("value"), target, parents)
                        or _accessor(source.get("class"), target, parents),
                    )
                )
        return roles


class _Collector:
    def __init__(self):
        self.classes = set()
        self.supers = []
        self.methods = []
        self.relations = []
        self.instances = []
        self.values = []
        self.tuples = []
        self.anchors = []

    def build(self, name):
        cm = ConceptualModel(name)
        classes = set(self.classes)
        classes.update(class_name for class_name, _sup in self.supers)
        classes.update(sup for _class_name, sup in self.supers)
        classes.update(class_name for class_name, *_rest in self.methods)
        classes.update(class_name for _obj, class_name in self.instances)
        for class_name in sorted(classes):
            cm.add_class(class_name)
        for class_name, sup in self.supers:
            cm.add_superclass(class_name, sup)
        for class_name, method, result, multivalued in self.methods:
            if method not in cm.classes[class_name].methods:
                cm.add_method(class_name, method, result, multivalued)
        for relation_name, roles in self.relations:
            if relation_name not in cm.relations:
                cm.add_relation(relation_name, roles)
        for obj, class_name in self.instances:
            cm.add_instance(obj, class_name)
        for obj, method, value in self.values:
            cm.set_value(obj, method, value)
        for relation_name, roles in self.tuples:
            cm.add_relation_instance(relation_name, **dict(roles))
        return PluginResult(cm, list(self.anchors))


def _accessor(spec, element, parents, default=None):
    """Evaluate one accessor expression against a matched element."""
    if spec is None:
        return default
    spec = spec.strip()
    if spec.startswith("'") and spec.endswith("'") and len(spec) >= 2:
        return spec[1:-1]
    if spec == "text":
        return (element.text or "").strip() or default
    if spec == "tag":
        return element.tag
    if spec.startswith("@"):
        return element.get(spec[1:], default)
    if spec.startswith("parent@"):
        parent = parents.get(element)
        if parent is None:
            return default
        return parent.get(spec[len("parent@"):], default)
    if spec.startswith("child:"):
        rest = spec[len("child:"):]
        if "@" in rest:
            tag, attr = rest.split("@", 1)
            child = element.find(tag)
            return child.get(attr, default) if child is not None else default
        child = element.find(rest)
        if child is None:
            return default
        return (child.text or "").strip() or default
    raise PluginError("unknown accessor %r" % spec)


def _need(value, emission, field):
    if value is None:
        raise PluginError(
            "emission <%s> could not resolve field %r" % (emission.tag, field)
        )
    return value


def _convert(raw, vtype):
    if vtype == "str":
        return raw
    if vtype == "int":
        return int(raw)
    if vtype == "float":
        return float(raw)
    if vtype == "auto":
        for converter in (int, float):
            try:
                return converter(raw)
            except ValueError:
                continue
        return raw
    raise PluginError("unknown vtype %r" % vtype)
