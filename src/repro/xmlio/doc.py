"""Small helpers over :mod:`xml.etree.ElementTree`.

Everything in the mediated system goes "over the wire" in XML syntax
(Section 2).  This module wraps the standard library with the pieces
the codec and the plug-in engine need: safe parsing, deterministic
pretty-printing, parent maps (ElementTree has no parent pointers), and
typed attribute encoding for non-string values.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Iterable, List, Optional

from ..errors import XMLTransportError


def parse_xml(text):
    """Parse XML text into an Element, wrapping errors."""
    try:
        return ET.fromstring(text)
    except ET.ParseError as exc:
        raise XMLTransportError("malformed XML: %s" % exc) from exc


def serialize(element, indent=0):
    """Deterministic, human-readable serialization.

    Attributes are emitted in sorted order so wire messages are
    reproducible across runs (useful for tests and message digests).
    """
    pad = "  " * indent
    pieces = [pad, "<", element.tag]
    for key in sorted(element.attrib):
        pieces.append(' %s="%s"' % (key, _escape_attr(element.attrib[key])))
    children = list(element)
    text = (element.text or "").strip()
    if not children and not text:
        pieces.append("/>")
        return "".join(pieces)
    pieces.append(">")
    if text:
        pieces.append(_escape_text(text))
    if children:
        for child in children:
            pieces.append("\n")
            pieces.append(serialize(child, indent + 1))
        pieces.append("\n")
        pieces.append(pad)
    pieces.append("</%s>" % element.tag)
    return "".join(pieces)


def _escape_attr(value):
    return (
        value.replace("&", "&amp;")
        .replace("<", "&lt;")
        .replace(">", "&gt;")
        .replace('"', "&quot;")
    )


def _escape_text(value):
    return value.replace("&", "&amp;").replace("<", "&lt;").replace(">", "&gt;")


def parent_map(root):
    """Child element -> parent element map for a tree."""
    return {child: parent for parent in root.iter() for child in parent}


def encode_value(value):
    """Encode a Python scalar as (text, type-tag)."""
    if isinstance(value, bool):
        return ("true" if value else "false", "bool")
    if isinstance(value, int):
        return (str(value), "int")
    if isinstance(value, float):
        return (repr(value), "float")
    if isinstance(value, str):
        return (value, "str")
    raise XMLTransportError("cannot encode value of type %s" % type(value).__name__)


def decode_value(text, type_tag):
    """Inverse of :func:`encode_value`."""
    if type_tag in (None, "", "str"):
        return text
    if type_tag == "int":
        try:
            return int(text)
        except ValueError as exc:
            raise XMLTransportError("bad int value %r" % text) from exc
    if type_tag == "float":
        try:
            return float(text)
        except ValueError as exc:
            raise XMLTransportError("bad float value %r" % text) from exc
    if type_tag == "bool":
        return text == "true"
    raise XMLTransportError("unknown value type tag %r" % type_tag)


def value_element(tag, value, **attrs):
    """Build an element carrying one typed scalar value."""
    text, type_tag = encode_value(value)
    element = ET.Element(tag, dict(attrs))
    if type_tag != "str":
        element.set("type", type_tag)
    element.text = text
    return element


def element_value(element):
    """Read a typed scalar from an element built by :func:`value_element`."""
    return decode_value(element.text or "", element.get("type"))
