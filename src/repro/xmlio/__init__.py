"""XML transport syntax and the CM plug-in mechanism (Section 2).

"Syntactically all information (queries, CM signatures and data,
mediator/wrapper dialogues, etc.) goes over the wire in XML syntax."
This package provides the GCM wire codec, typed scalar encoding, a
deterministic serializer, and the declarative XML-to-GCM translator
engine with three built-in plug-ins (RDF, UML/XMI, ER).
"""

from .doc import (
    decode_value,
    element_value,
    encode_value,
    parent_map,
    parse_xml,
    serialize,
    value_element,
)
from .gcm_xml import cm_from_element, cm_from_xml, cm_to_element, cm_to_xml
from .messages import (
    handle_request,
    query_from_xml,
    query_to_xml,
    rows_from_xml,
    rows_to_xml,
    template_query_from_xml,
    template_query_to_xml,
)
from .plugins import PluginResult, PluginTranslator
from .formats import BUILTIN_PLUGINS, er, rdf, uml_xmi

__all__ = [
    "BUILTIN_PLUGINS",
    "PluginResult",
    "PluginTranslator",
    "cm_from_element",
    "cm_from_xml",
    "cm_to_element",
    "cm_to_xml",
    "decode_value",
    "element_value",
    "encode_value",
    "er",
    "handle_request",
    "parent_map",
    "parse_xml",
    "query_from_xml",
    "query_to_xml",
    "rdf",
    "rows_from_xml",
    "rows_to_xml",
    "serialize",
    "template_query_from_xml",
    "template_query_to_xml",
    "uml_xmi",
    "value_element",
]
