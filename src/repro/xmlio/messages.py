"""XML query/answer dialogue between mediator and wrappers.

Registration already crosses the wire (:mod:`repro.core.registration`);
this module covers the remaining dialogue of Section 2 — "queries ...
and mediator/wrapper dialogues" — with two message kinds:

query request::

    <source-query class="protein_amount">
      <select attribute="location">Purkinje Cell dendrite</select>
      <project attribute="protein_name"/>
    </source-query>

template request::

    <template-query class="protein_amount" template="by_min_amount">
      <arg name="min_amount" type="float">2.0</arg>
    </template-query>

answer::

    <answer class="protein_amount" count="2">
      <row object="NCMIR.protein_amount.1">
        <col name="protein_name">Ryanodine Receptor</col>
        ...
      </row>
    </answer>

:func:`handle_request` is the wrapper-side dispatcher: XML in, XML out.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, List, Optional

from .. import obs
from ..errors import XMLTransportError
from .doc import element_value, parse_xml, serialize, value_element


def query_to_xml(source_query):
    """Encode a :class:`~repro.sources.SourceQuery`."""
    root = ET.Element("source-query", {"class": source_query.class_name})
    for attribute in sorted(source_query.selections):
        root.append(
            value_element(
                "select",
                source_query.selections[attribute],
                attribute=attribute,
            )
        )
    if source_query.projection is not None:
        for attribute in source_query.projection:
            ET.SubElement(root, "project", {"attribute": attribute})
    return serialize(root)


def query_from_xml(text):
    """Decode a query request; returns a SourceQuery."""
    from ..sources.wrapper import SourceQuery

    root = parse_xml(text) if isinstance(text, str) else text
    if root.tag != "source-query":
        raise XMLTransportError(
            "expected <source-query>, found <%s>" % root.tag
        )
    class_name = root.get("class")
    if not class_name:
        raise XMLTransportError("<source-query> requires a class attribute")
    selections = {}
    for select in root.findall("select"):
        attribute = select.get("attribute")
        if not attribute:
            raise XMLTransportError("<select> requires an attribute")
        selections[attribute] = element_value(select)
    projection = [p.get("attribute") for p in root.findall("project")] or None
    return SourceQuery(class_name, selections, projection)


def template_query_to_xml(class_name, template_name, arguments):
    """Encode a template invocation."""
    root = ET.Element(
        "template-query", {"class": class_name, "template": template_name}
    )
    for name in sorted(arguments):
        root.append(value_element("arg", arguments[name], name=name))
    return serialize(root)


def template_query_from_xml(text):
    """Decode a template invocation: (class, template, arguments)."""
    root = parse_xml(text) if isinstance(text, str) else text
    if root.tag != "template-query":
        raise XMLTransportError(
            "expected <template-query>, found <%s>" % root.tag
        )
    class_name = root.get("class")
    template_name = root.get("template")
    if not class_name or not template_name:
        raise XMLTransportError(
            "<template-query> requires class and template attributes"
        )
    arguments = {
        arg.get("name"): element_value(arg) for arg in root.findall("arg")
    }
    return class_name, template_name, arguments


def rows_to_xml(class_name, rows):
    """Encode wrapper answer rows (dicts with `_object`)."""
    root = ET.Element("answer", {"class": class_name, "count": str(len(rows))})
    for row in rows:
        row_el = ET.SubElement(root, "row", {"object": str(row.get("_object", ""))})
        for key in sorted(row):
            if key.startswith("_"):
                continue
            value = row[key]
            if value is None:
                continue
            row_el.append(value_element("col", value, name=key))
    return serialize(root)


def rows_from_xml(text):
    """Decode an answer message: (class, rows)."""
    root = parse_xml(text) if isinstance(text, str) else text
    if root.tag != "answer":
        raise XMLTransportError("expected <answer>, found <%s>" % root.tag)
    class_name = root.get("class")
    if not class_name:
        raise XMLTransportError("<answer> requires a class attribute")
    rows: List[Dict] = []
    for row_el in root.findall("row"):
        row: Dict = {"_object": row_el.get("object")}
        for col in row_el.findall("col"):
            name = col.get("name")
            if not name:
                raise XMLTransportError("<col> requires a name attribute")
            row[name] = element_value(col)
        rows.append(row)
    declared = root.get("count")
    if declared is not None:
        try:
            declared_count = int(declared)
        except ValueError as exc:
            raise XMLTransportError(
                "answer declares a non-numeric count %r" % declared
            ) from exc
        if declared_count != len(rows):
            raise XMLTransportError(
                "answer declares %s rows but carries %d"
                % (declared, len(rows))
            )
    return class_name, rows


def handle_request(wrapper, request_xml):
    """The wrapper-side XML endpoint: dispatch a request, answer in XML.

    Accepts ``<source-query>`` and ``<template-query>`` messages;
    errors surface as :class:`XMLTransportError` /
    :class:`~repro.errors.SourceError` to the caller (the transport is
    in-process; a networked deployment would serialize those too).
    """
    with obs.span(
        "xml.request", source=wrapper.name, bytes_in=len(request_xml)
    ) as span:
        root = parse_xml(request_xml)
        span.set(tag=root.tag)
        if root.tag == "source-query":
            source_query = query_from_xml(root)
            rows = wrapper.query(source_query)
            answer = rows_to_xml(source_query.class_name, rows)
        elif root.tag == "template-query":
            class_name, template_name, arguments = template_query_from_xml(root)
            rows = wrapper.run_template(class_name, template_name, **arguments)
            answer = rows_to_xml(class_name, rows)
        else:
            raise XMLTransportError("unknown request <%s>" % root.tag)
        # fault-injection hook: a decorating wrapper may corrupt the
        # serialized answer to exercise the codec's hardening
        mangle = getattr(wrapper, "mangle_answer", None)
        if mangle is not None:
            answer = mangle(answer)
        if span.enabled:
            span.set(bytes_out=len(answer))
            obs.count("wire.bytes", len(request_xml) + len(answer), kind="request")
        return answer
