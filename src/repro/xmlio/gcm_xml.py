"""XML encoding of conceptual models (schema, rules, data).

Wrappers "export their CM-lifted source data either directly in GCM, or
in any standard CM formalism ... for which a CM-to-GCM plug-in has been
provided" (Section 2).  This is the *direct GCM* wire format::

    <cm name="SYNAPSE">
      <schema>
        <class name="spine">
          <super name="compartment"/>
          <method name="len_um" result="float"/>
        </class>
        <relation name="has">
          <role name="whole" class="neuron"/>
          <role name="part" class="compartment"/>
        </relation>
      </schema>
      <rules>
        <rule>long(X) :- method_val(X, len_um, L), L &gt; 5.</rule>
      </rules>
      <data>
        <instance object="s1" class="spine"/>
        <value object="s1" method="len_um" type="float">1.5</value>
        <tuple relation="has">
          <role name="whole">n1</role>
          <role name="part">s1</role>
        </tuple>
      </data>
    </cm>

Rules travel as Datalog text (every in-memory rule prints back to
parseable syntax), so arbitrary semantic rules survive the round trip.
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Iterable, List, Optional

from ..errors import XMLTransportError
from ..datalog.ast import Atom, Rule
from ..datalog.parser import parse_program
from ..datalog.terms import Const
from ..gcm.model import ConceptualModel
from .doc import (
    decode_value,
    element_value,
    encode_value,
    parse_xml,
    serialize,
    value_element,
)


def cm_to_element(cm):
    """Encode a :class:`ConceptualModel` as an Element tree."""
    root = ET.Element("cm", {"name": cm.name})
    schema = ET.SubElement(root, "schema")
    for class_name in cm.class_names():
        class_def = cm.classes[class_name]
        class_el = ET.SubElement(schema, "class", {"name": class_name})
        for sup in class_def.superclasses:
            ET.SubElement(class_el, "super", {"name": sup})
        for method_name in sorted(class_def.methods):
            method = class_def.methods[method_name]
            attrs = {"name": method.name, "result": method.result_class}
            if method.multivalued:
                attrs["multivalued"] = "true"
            ET.SubElement(class_el, "method", attrs)
    for relation_name in cm.relation_names():
        relation = cm.relations[relation_name]
        rel_el = ET.SubElement(schema, "relation", {"name": relation_name})
        for role, class_name in relation.roles:
            ET.SubElement(rel_el, "role", {"name": role, "class": class_name})

    rules_el = ET.SubElement(root, "rules")
    for rule in cm.semantic_rules():
        rule_el = ET.SubElement(rules_el, "rule")
        rule_el.text = str(rule)

    data = ET.SubElement(root, "data")
    for rule in cm.data_rules():
        atom = rule.head
        if atom.pred == "instance":
            data.append(
                ET.Element(
                    "instance",
                    {
                        "object": _const_text(atom.args[0]),
                        "class": _const_text(atom.args[1]),
                    },
                )
            )
        elif atom.pred == "method_inst":
            element = value_element(
                "value",
                _const_value(atom.args[2]),
                object=_const_text(atom.args[0]),
                method=_const_text(atom.args[1]),
            )
            data.append(element)
        else:
            relation = cm.relations.get(atom.pred)
            if relation is None:
                raise XMLTransportError(
                    "cannot encode data fact %s: unknown relation" % atom
                )
            tuple_el = ET.Element("tuple", {"relation": atom.pred})
            for (role, _cls), arg in zip(relation.roles, atom.args):
                tuple_el.append(
                    value_element("role", _const_value(arg), name=role)
                )
            data.append(tuple_el)
    return root


def cm_to_xml(cm):
    """Encode a conceptual model to XML text."""
    return serialize(cm_to_element(cm))


def cm_from_element(root):
    """Decode an Element tree into a :class:`ConceptualModel`."""
    if root.tag != "cm":
        raise XMLTransportError("expected <cm> root, found <%s>" % root.tag)
    name = root.get("name")
    if not name:
        raise XMLTransportError("<cm> requires a name attribute")
    cm = ConceptualModel(name)

    schema = root.find("schema")
    if schema is not None:
        for class_el in schema.findall("class"):
            class_name = _require(class_el, "name")
            cm.add_class(class_name)
            for method_el in class_el.findall("method"):
                cm.add_method(
                    class_name,
                    _require(method_el, "name"),
                    _require(method_el, "result"),
                    multivalued=method_el.get("multivalued") == "true",
                )
        # supers second so forward references are fine
        for class_el in schema.findall("class"):
            class_name = class_el.get("name")
            for super_el in class_el.findall("super"):
                cm.add_superclass(class_name, _require(super_el, "name"))
        for rel_el in schema.findall("relation"):
            roles = [
                (_require(role_el, "name"), _require(role_el, "class"))
                for role_el in rel_el.findall("role")
            ]
            cm.add_relation(_require(rel_el, "name"), roles)

    rules_el = root.find("rules")
    if rules_el is not None:
        for rule_el in rules_el.findall("rule"):
            cm.add_datalog(rule_el.text or "")

    data = root.find("data")
    if data is not None:
        for element in data:
            if element.tag == "instance":
                cm.add_instance(
                    _require(element, "object"), _require(element, "class")
                )
            elif element.tag == "value":
                cm.set_value(
                    _require(element, "object"),
                    _require(element, "method"),
                    element_value(element),
                )
            elif element.tag == "tuple":
                relation = _require(element, "relation")
                role_values = {}
                for role_el in element.findall("role"):
                    role_values[_require(role_el, "name")] = element_value(role_el)
                cm.add_relation_instance(relation, **role_values)
            else:
                raise XMLTransportError(
                    "unknown data element <%s>" % element.tag
                )
    return cm


def cm_from_xml(text):
    """Decode XML text into a conceptual model."""
    return cm_from_element(parse_xml(text))


def _require(element, attribute):
    value = element.get(attribute)
    if value is None:
        raise XMLTransportError(
            "<%s> requires attribute %r" % (element.tag, attribute)
        )
    return value


def _const_text(term):
    if isinstance(term, Const):
        return str(term.value)
    raise XMLTransportError("cannot encode non-constant term %s" % term)


def _const_value(term):
    if isinstance(term, Const):
        return term.value
    raise XMLTransportError("cannot encode non-constant term %s" % term)
