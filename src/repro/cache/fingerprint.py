"""Deterministic fingerprints for source calls.

A fingerprint identifies "the same question to the same source under
the same contract": the source name, the exported class, the bound
selections and projection, and a signature of the class's declared
query capability.  Two calls with equal fingerprints are guaranteed the
same answer as long as the source's data is unchanged — which is what
the invalidation engine (:mod:`repro.cache.invalidation`) watches for.

The capability signature matters because a re-registered source may
export the same class under different binding patterns or templates:
pushing the same selections could then legally return different rows
(a pattern the source filters vs. one the mediator filters locally),
so such answers must not be conflated.
"""

from __future__ import annotations

import hashlib


def _canonical(value):
    """A hashable, deterministically comparable stand-in for a
    selection value (selection values are normally str/int/float, but
    nothing stops a wrapper from accepting richer ones)."""
    try:
        hash(value)
    except TypeError:
        return repr(value)
    return value


def capability_signature(capability):
    """A hashable signature of one :class:`ClassCapability`: attributes,
    key, scannability, binding patterns, template names."""
    if capability is None:
        return None
    return (
        tuple(capability.attributes),
        capability.key,
        bool(capability.scannable),
        tuple(
            sorted(
                (tuple(pattern.attributes), pattern.pattern)
                for pattern in capability.binding_patterns
            )
        ),
        tuple(sorted(capability.templates)),
    )


def query_fingerprint(source, source_query, capability=None):
    """The cache key of one source call.

    ``(source, class, sorted selections, projection, capability
    signature)`` — plain nested tuples, so keys are hashable, ordered
    deterministically, and printable.
    """
    return (
        source,
        source_query.class_name,
        tuple(
            sorted(
                (attr, _canonical(value))
                for attr, value in source_query.selections.items()
            )
        ),
        tuple(source_query.projection)
        if source_query.projection is not None
        else None,
        capability_signature(capability),
    )


def plan_fingerprint(source, source_query):
    """The within-plan dedup key: like :func:`query_fingerprint` but
    without the capability signature — capabilities cannot change in
    the middle of one plan execution."""
    return query_fingerprint(source, source_query, None)


def fingerprint_digest(fingerprint):
    """A short stable hex digest of a fingerprint, for stats/logs."""
    return hashlib.sha256(repr(fingerprint).encode("utf-8")).hexdigest()[:16]
