"""The domain-map-aware invalidation engine.

A deployment change — a new source, a ``dm_refinement``, a new view —
does not outdate the whole cache; it outdates the answers whose
anchoring concepts are *semantically connected* to what changed.  The
connection is computed with the same graphops closures the paper's
queries use:

* **isa**: refining ``Basket_Cell < Neuron`` changes what counts as a
  ``Neuron``, so every answer anchored at `Neuron` *or any of its
  ancestors* may now be incomplete — the upward isa closure
  (:func:`~repro.domainmap.graphops.ancestors`).
* **roles** (`has`/`proj`/...): the Section 5 aggregate sums along
  ``has_a_star`` below a root, so an answer rooted at `Cerebellum` also
  depends on everything reachable *down* the navigation graph — which
  means a changed concept invalidates its role *containers* (the
  upward closure :func:`~repro.domainmap.graphops.role_containers`,
  whose `tc`/`dc` machinery includes eqv edges and isa hops).

Answers anchored at concepts *outside* that closure — siblings,
descendants, other worlds — provably cannot mention the changed
concepts and survive.  The seeds of a refinement come from
:meth:`~repro.domainmap.registry.RegistrationResult.touched_concepts`:
new concepts plus both endpoints of every new isa pair and role link
(a refinement adding only role links still seeds invalidation).
"""

from __future__ import annotations

from ..domainmap.graphops import ancestors, role_containers


def refinement_seeds(result):
    """The invalidation seed set of one ``register_concepts`` result."""
    return result.touched_concepts()


def affected_concepts(dm, seeds, roles=None):
    """Every concept whose anchored answers a change at `seeds` may
    outdate: the seeds themselves plus their upward isa closure and
    their role containers along every (or the given) DM role.

    Call *after* the refinement has been applied to `dm`, so the new
    concepts' ancestors are resolvable.  Unknown seeds (a concept the
    DM never learned) are kept as-is but contribute no closure.
    """
    seeds = set(seeds)
    if not seeds:
        return frozenset()
    if roles is None:
        roles = sorted(dm.roles)
    affected = set(seeds)
    for seed in seeds:
        if seed not in dm.concepts:
            continue
        affected |= ancestors(dm, seed)
        for role in roles:
            affected |= role_containers(dm, seed, role)
    return frozenset(affected)
