"""medcache: the mediator-side answer cache and materialized views.

The paper's semantic index anchors source data at domain-map concepts —
exactly the key structure a cache needs: an answer is reusable for as
long as the anchoring concepts and the registered capabilities are
unchanged.  medcache exploits that in three layers:

* an **answer cache** on :meth:`Mediator.source_query`, keyed by a
  deterministic fingerprint of (source, class, bound selections,
  capability signature) — see :mod:`repro.cache.fingerprint`;
* **within-plan deduplication** in the planner (on even when no cache
  is configured);
* **materialized integrated views** (:meth:`Mediator.materialize`),
  evaluated once and served to later ``ask``/``correlate`` calls.

Invalidation is domain-map-aware: a registration, ``dm_refinement`` or
``add_view`` computes the *affected* anchored concepts via the graphops
closures and drops exactly the dependent entries and materializations
(:mod:`repro.cache.invalidation`) — no global flush, though
``AnswerCache(full_flush_on_change=True)`` is the conservative escape
hatch.  Correctness contract: a cache hit returns the same rows the
source call would have (stale medguard results are never cached), so
caching is invisible to answers, only to timings and wire traffic.

Everything is off by default; with ``Mediator(cache=None)`` the hot
path is a single ``is None`` check, same discipline as medtrace and
medguard.
"""

from .answers import AnswerCache, CacheEntry, CacheStats
from .fingerprint import (
    capability_signature,
    fingerprint_digest,
    plan_fingerprint,
    query_fingerprint,
)
from .invalidation import affected_concepts, refinement_seeds
from .store import CacheStore, DictStore, LRUStore
from .views import Materialization

__all__ = [
    "AnswerCache",
    "CacheEntry",
    "CacheStats",
    "CacheStore",
    "DictStore",
    "LRUStore",
    "Materialization",
    "affected_concepts",
    "capability_signature",
    "fingerprint_digest",
    "plan_fingerprint",
    "query_fingerprint",
    "refinement_seeds",
]
