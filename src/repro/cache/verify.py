"""Cache-correctness verification: run twice, compare byte-for-byte.

The medcache contract is that caching changes *timings and wire
traffic*, never answers.  This module checks that operationally, the
same way `repro chaos` checks the degraded-answer contract:

* **scenario mode** (:func:`verify_scenario`) — the Section 5
  correlation over the XML wire, twice, against one mediator with the
  cache on: the second run must issue zero source queries and zero
  query-kind wire bytes, with answers equal to both the first run and
  an uncached control run.
* **script mode** (:func:`verify_script`) — run a deployment script
  twice in-process with every mediator it builds silently given an
  answer cache over one shared store (the same monkeypatch mechanism
  as the chaos harness); the two runs' stdout must be byte-identical
  and the second run's query wire traffic must not exceed the first's
  (zero when every source call was cacheable).
"""

from __future__ import annotations

import contextlib
import io
import runpy

from .. import obs
from .answers import AnswerCache
from .store import DictStore


class VerifyReport:
    """The outcome of one verification: named checks + measurements."""

    def __init__(self, target):
        self.target = target
        self.checks = []  # (name, ok, detail)
        self.measurements = {}

    def check(self, name, ok, detail=""):
        self.checks.append((name, bool(ok), detail))

    @property
    def ok(self):
        return all(ok for _name, ok, _detail in self.checks)

    def format(self):
        lines = ["cache verify: %s" % self.target]
        for name, ok, detail in self.checks:
            mark = "PASS" if ok else "FAIL"
            suffix = "  (%s)" % detail if detail else ""
            lines.append("  [%s] %s%s" % (mark, name, suffix))
        for key in sorted(self.measurements):
            lines.append("  %s = %s" % (key, self.measurements[key]))
        return "\n".join(lines)

    def as_dict(self):
        return {
            "target": self.target,
            "ok": self.ok,
            "checks": [
                {"name": name, "ok": ok, "detail": detail}
                for name, ok, detail in self.checks
            ],
            "measurements": dict(sorted(self.measurements.items())),
        }


def _answer_table(result):
    """Deterministic, comparable form of a correlation answer."""
    return [
        (group, distribution.total())
        for group, distribution in result.answers
    ]


def verify_scenario(seed=2001):
    """Scenario mode: Section 5 over the XML wire, cold then warm."""
    from ..neuro import build_scenario, section5_query

    report = VerifyReport("section5 scenario (seed=%d)" % seed)
    control = build_scenario(seed=seed, eager=False, dialogue_via_xml=True)
    control_answers = _answer_table(control.mediator.correlate(section5_query()))

    scenario = build_scenario(
        seed=seed, eager=False, dialogue_via_xml=True, cache=AnswerCache()
    )
    mediator = scenario.mediator
    runs = []
    for _run in range(2):
        with obs.capture("cache-verify") as tracer:
            answers = _answer_table(mediator.correlate(section5_query()))
        runs.append(
            {
                "answers": answers,
                "source_queries": tracer.metrics.counter_total("source.queries"),
                "query_wire_bytes": tracer.metrics.counter_value(
                    "wire.bytes", kind="query"
                ),
            }
        )
    cold, warm = runs
    report.check(
        "uncached and cold-cache answers equal",
        cold["answers"] == control_answers,
    )
    report.check("warm answers byte-identical", warm["answers"] == cold["answers"])
    report.check(
        "warm run issues zero source queries",
        warm["source_queries"] == 0,
        "got %d" % warm["source_queries"],
    )
    report.check(
        "warm run moves zero query wire bytes",
        warm["query_wire_bytes"] == 0,
        "got %d" % warm["query_wire_bytes"],
    )
    report.check(
        "cold run did go over the wire", cold["query_wire_bytes"] > 0
    )
    report.measurements.update(
        {
            "cold.source_queries": cold["source_queries"],
            "cold.query_wire_bytes": cold["query_wire_bytes"],
            "warm.source_queries": warm["source_queries"],
            "warm.query_wire_bytes": warm["query_wire_bytes"],
            "cache.entries": mediator.cache.entry_count,
            "cache.hits": mediator.cache.stats.hits,
            "cache.misses": mediator.cache.stats.misses,
        }
    )
    return report


@contextlib.contextmanager
def cached_mediators(store):
    """Monkeypatch :class:`Mediator` so every instance a script builds
    without its own cache gets an :class:`AnswerCache` over `store`
    (one shared store = answers survive into the script's second
    run)."""
    from ..core.mediator import Mediator

    original_init = Mediator.__init__

    def cached_init(self, *args, **kwargs):
        original_init(self, *args, **kwargs)
        if self.cache is None:
            self.cache = AnswerCache(store=store)
            self.cache.on_materializations_changed = self._invalidate

    Mediator.__init__ = cached_init
    try:
        yield
    finally:
        Mediator.__init__ = original_init


def _run_script(path):
    """Run one deployment script; returns (stdout, query wire bytes,
    source queries)."""
    stdout = io.StringIO()
    with obs.capture("cache-verify-script") as tracer:
        with contextlib.redirect_stdout(stdout):
            runpy.run_path(path, run_name="__main__")
    return (
        stdout.getvalue(),
        tracer.metrics.counter_value("wire.bytes", kind="query"),
        tracer.metrics.counter_total("source.queries"),
    )


def verify_script(path):
    """Script mode: run `path` twice over one shared cache store."""
    report = VerifyReport(path)
    store = DictStore()
    with cached_mediators(store):
        out1, wire1, queries1 = _run_script(path)
        out2, wire2, queries2 = _run_script(path)
    report.check("second run stdout byte-identical", out1 == out2)
    report.check(
        "second run query wire bytes <= first",
        wire2 <= wire1,
        "%d -> %d" % (wire1, wire2),
    )
    report.check(
        "second run source queries <= first",
        queries2 <= queries1,
        "%d -> %d" % (queries1, queries2),
    )
    report.measurements.update(
        {
            "run1.query_wire_bytes": wire1,
            "run1.source_queries": queries1,
            "run2.query_wire_bytes": wire2,
            "run2.source_queries": queries2,
            "store.entries": len(store),
        }
    )
    return report
