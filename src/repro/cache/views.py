"""Materialized integrated views.

``Mediator.materialize(view)`` evaluates an integrated view once over
the current knowledge base and snapshots the facts its head rules
derived.  While the materialization is live, :meth:`assembled_rules`
swaps the view's *rules* out and its *facts* in, so later ``ask``/
``correlate`` evaluations serve the view without re-deriving it.

Each materialization carries its invalidation coordinates:

* **concepts** — :func:`view_anchor_concepts`: the DM concepts named
  literally in the view's rule bodies, plus the anchor concepts of
  every (source, class) the semantic index knows for the body classes.
  This is the set the domain-map-aware engine intersects against.
* **classes** — the head and body class names, for the coarser
  class-overlap check (a new exporter of a body class outdates the
  snapshot even when no concept moved).

A view whose anchor-concept set comes back *empty* is "uncacheable":
the invalidation engine cannot scope its dependencies and drops its
materialization on every deployment change (medlint flags the
situation as MBM034 before you pay for it).
"""

from __future__ import annotations

from typing import FrozenSet, List

from ..datalog.ast import Rule
from ..datalog.terms import Const


class Materialization:
    """One materialized view: its snapshot facts + invalidation
    coordinates."""

    __slots__ = ("view_name", "facts", "concepts", "classes")

    def __init__(self, view_name, facts, concepts=(), classes=()):
        self.view_name = view_name
        self.facts: List[Rule] = list(facts)
        self.concepts: FrozenSet[str] = frozenset(concepts)
        self.classes: FrozenSet[str] = frozenset(classes)

    @property
    def uncacheable(self):
        """No anchor concepts: invalidation cannot scope this view, so
        any deployment change drops it."""
        return not self.concepts

    def __repr__(self):
        return "Materialization(%r, facts=%d, concepts=%d, classes=%d)" % (
            self.view_name,
            len(self.facts),
            len(self.concepts),
            len(self.classes),
        )


def _const_classes(rules, pred):
    """Constant second arguments of `pred` atoms in rule heads."""
    classes = set()
    for rule in rules:
        atom = rule.head
        if atom.pred == pred and len(atom.args) >= 2 and isinstance(
            atom.args[1], Const
        ):
            classes.add(atom.args[1].value)
    return classes


def _body_instance_classes(rules):
    """Constant classes of `instance` atoms in rule bodies."""
    classes = set()
    for rule in rules:
        for literal in rule.body:
            atom = getattr(literal, "atom", literal)
            if (
                getattr(atom, "pred", None) == "instance"
                and len(atom.args) == 2
                and isinstance(atom.args[1], Const)
            ):
                classes.add(atom.args[1].value)
    return classes


def view_classes(view):
    """(head classes, body classes) of an integrated view's translated
    rules."""
    rules = view.datalog_rules()
    return _const_classes(rules, "instance"), _body_instance_classes(rules)


def view_anchor_concepts(mediator, view):
    """The DM concepts a view's derivation depends on (see module
    docstring); frozenset, possibly empty (= uncacheable)."""
    from ..core.views import DistributionView, IntegratedView

    concepts = set()
    if isinstance(view, DistributionView):
        body_classes = {view.source_class}
    elif isinstance(view, IntegratedView):
        head_classes, body_classes = view_classes(view)
        # classes named in the body that *are* DM concepts anchor the
        # view directly (``X : 'Pyramidal_Spine'`` style literals)
        concepts |= {c for c in body_classes | head_classes if c in mediator.dm.concepts}
    else:
        return frozenset()
    for source in mediator.source_names():
        for class_name in body_classes:
            concepts.update(
                mediator.index.concepts_of_class(source, class_name)
            )
    return frozenset(concepts)


def build_materialization(mediator, view, store):
    """Snapshot what `view` derived in an evaluated `store`.

    Collects the ``instance`` facts of the view's head classes and the
    ``method_inst`` facts of its head methods on those objects — the
    view's visible derivation, re-tellable as ground rules.
    """
    rules = view.datalog_rules()
    head_classes = _const_classes(rules, "instance")
    head_methods = {
        rule.head.args[1].value
        for rule in rules
        if rule.head.pred == "method_inst"
        and len(rule.head.args) >= 2
        and isinstance(rule.head.args[1], Const)
    }
    objects = set()
    facts = []
    for atom in store.sorted_atoms("instance"):
        if (
            len(atom.args) == 2
            and isinstance(atom.args[1], Const)
            and atom.args[1].value in head_classes
        ):
            objects.add(atom.args[0])
            facts.append(Rule(atom))
    for atom in store.sorted_atoms("method_inst"):
        if (
            len(atom.args) >= 3
            and atom.args[0] in objects
            and isinstance(atom.args[1], Const)
            and atom.args[1].value in head_methods
        ):
            facts.append(Rule(atom))
    _head, body_classes = view_classes(view)
    return Materialization(
        view.name,
        facts,
        concepts=view_anchor_concepts(mediator, view),
        classes=head_classes | body_classes,
    )
