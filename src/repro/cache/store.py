"""Pluggable entry stores for the answer cache.

A store is a plain keyed container of :class:`CacheEntry` objects; the
:class:`AnswerCache` owns the policy (stats, invalidation,
materializations) and delegates entry storage here.  The default is a
bounded in-memory LRU; an unbounded dict-backed store exists for tests
and for shared-store verification runs.  Anything implementing the
:class:`CacheStore` interface can be plugged into
``Mediator(cache=<store>)``.
"""

from __future__ import annotations

import threading
from collections import OrderedDict


class CacheStore:
    """The minimal store interface the :class:`AnswerCache` needs."""

    def get(self, key):
        """The entry under `key`, or None (may refresh recency)."""
        raise NotImplementedError

    def put(self, key, entry):
        """Store `entry`; returns the list of entries evicted to make
        room (empty for unbounded stores)."""
        raise NotImplementedError

    def discard(self, key):
        """Drop `key` if present; returns True when an entry was
        removed."""
        raise NotImplementedError

    def items(self):
        """A snapshot list of (key, entry) pairs, oldest first."""
        raise NotImplementedError

    def clear(self):
        raise NotImplementedError

    def __len__(self):
        raise NotImplementedError

    @property
    def row_count(self):
        """Total cached rows across entries."""
        return sum(len(entry.rows) for _key, entry in self.items())


class DictStore(CacheStore):
    """An unbounded store: never evicts.  Useful in tests and for
    cross-deployment verification runs where eviction would hide
    invalidation behaviour.

    Thread-safe: medpar workers may populate the store concurrently.
    """

    def __init__(self):
        self._entries = OrderedDict()
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            return self._entries.get(key)

    def put(self, key, entry):
        with self._lock:
            self._entries[key] = entry
        return []

    def discard(self, key):
        with self._lock:
            return self._entries.pop(key, None) is not None

    def items(self):
        with self._lock:
            return list(self._entries.items())

    def clear(self):
        with self._lock:
            self._entries.clear()

    def __len__(self):
        return len(self._entries)


class LRUStore(CacheStore):
    """A bounded least-recently-used store (the default).

    Two independent bounds: `max_entries` (answer count) and `max_rows`
    (total cached rows, a proxy for memory).  Either may be None for
    unbounded.  Lookups refresh recency; eviction pops from the cold
    end until both bounds hold (the most recent entry always stays,
    even if alone it exceeds `max_rows`).

    Thread-safe: recency refreshes and the eviction loop mutate shared
    state, so every operation holds the store lock — two medpar
    workers putting at once must not interleave the row accounting.
    """

    def __init__(self, max_entries=256, max_rows=100_000):
        self.max_entries = max_entries
        self.max_rows = max_rows
        self._entries = OrderedDict()
        self._rows = 0
        self._lock = threading.Lock()

    def get(self, key):
        with self._lock:
            entry = self._entries.get(key)
            if entry is not None:
                self._entries.move_to_end(key)
            return entry

    def put(self, key, entry):
        with self._lock:
            old = self._entries.pop(key, None)
            if old is not None:
                self._rows -= len(old.rows)
            self._entries[key] = entry
            self._rows += len(entry.rows)
            evicted = []
            while self._over_bounds() and len(self._entries) > 1:
                _cold_key, cold = self._entries.popitem(last=False)
                self._rows -= len(cold.rows)
                evicted.append(cold)
            return evicted

    def _over_bounds(self):
        if self.max_entries is not None and len(self._entries) > self.max_entries:
            return True
        return self.max_rows is not None and self._rows > self.max_rows

    def discard(self, key):
        with self._lock:
            entry = self._entries.pop(key, None)
            if entry is None:
                return False
            self._rows -= len(entry.rows)
            return True

    def items(self):
        with self._lock:
            return list(self._entries.items())

    def clear(self):
        with self._lock:
            self._entries.clear()
            self._rows = 0

    def __len__(self):
        return len(self._entries)

    @property
    def row_count(self):
        return self._rows

    def __repr__(self):
        return "LRUStore(entries=%d/%s, rows=%d/%s)" % (
            len(self._entries),
            self.max_entries,
            self._rows,
            self.max_rows,
        )
