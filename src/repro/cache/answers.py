"""The answer cache: entries, stats, and the invalidation policy.

:class:`AnswerCache` is what :class:`~repro.core.mediator.Mediator`
holds when caching is on.  It owns

* a pluggable :class:`~repro.cache.store.CacheStore` of
  :class:`CacheEntry` objects (source-call answers keyed by
  fingerprint),
* the named :class:`~repro.cache.views.Materialization` objects of
  materialized integrated views, and
* the :class:`CacheStats` counters every mutation feeds.

Invalidation semantics (the contract the mediator relies on):

* **entries** die when a deployment change touches one of the concepts
  their rows are anchored at (the upward closure computed by
  :func:`~repro.cache.invalidation.affected_concepts`), or when their
  source deregisters.  A *class* overlap alone does not kill an entry:
  entries are per-source rows, and another source exporting the same
  class cannot change what this source answered.
* **materializations** die on concept overlap *or* class overlap —
  a view's derivation reads every source exporting its classes, so a
  new exporter of `protein_amount` outdates a materialized view over
  it even if no concept moved.  A materialization with an empty
  anchor-concept set is *uncacheable* (the MBM034 lint warning): the
  engine cannot scope its dependencies, so it dies on every
  deployment change.
* ``full_flush_on_change=True`` is the conservative escape hatch:
  any invalidation event flushes everything.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional

from .. import obs
from .store import CacheStore, LRUStore
from .views import Materialization


class CacheEntry:
    """One cached source-call answer."""

    __slots__ = ("key", "source", "class_name", "rows", "concepts")

    def __init__(self, key, source, class_name, rows, concepts=()):
        self.key = key
        self.source = source
        self.class_name = class_name
        self.rows = tuple(rows)
        #: DM concepts the source's class is anchored at — the hook the
        #: domain-map-aware invalidation engine keys on
        self.concepts = frozenset(concepts)

    def __repr__(self):
        return "CacheEntry(%s.%s, rows=%d, concepts=%d)" % (
            self.source,
            self.class_name,
            len(self.rows),
            len(self.concepts),
        )


class CacheStats:
    """Monotonic counters of cache life; deterministic export."""

    FIELDS = (
        "hits",
        "misses",
        "puts",
        "evictions",
        "invalidated_entries",
        "invalidated_materializations",
        "materializations",
        "flushes",
    )

    def __init__(self):
        for field in self.FIELDS:
            setattr(self, field, 0)

    def as_dict(self):
        return {field: getattr(self, field) for field in self.FIELDS}

    def __repr__(self):
        return "CacheStats(%s)" % ", ".join(
            "%s=%d" % (field, getattr(self, field)) for field in self.FIELDS
        )


class AnswerCache:
    """The medcache policy object: store + materializations + stats.

    One AnswerCache normally serves one mediator.  Sharing the *store*
    between caches (e.g. warming a second deployment from a first) is
    supported; sharing the AnswerCache itself would cross-wire the
    materializations, which are per-deployment.

    Args:
        store: the :class:`~repro.cache.store.CacheStore` holding the
            entries (default: a bounded
            :class:`~repro.cache.store.LRUStore`).
        full_flush_on_change: conservative mode — any deployment
            change flushes every entry and materialization instead of
            running the domain-map-aware invalidation.

    Lookups, puts, and invalidation sweeps hold a re-entrant lock:
    medpar workers hit the cache concurrently, and the stats counters
    and sweep-then-discard loops are not atomic on their own.
    """

    def __init__(self, store=None, full_flush_on_change=False):
        self.store: CacheStore = store if store is not None else LRUStore()
        self.stats = CacheStats()
        self.materializations: Dict[str, Materialization] = {}
        #: conservative mode: any deployment change flushes everything
        self.full_flush_on_change = full_flush_on_change
        #: set by the owning mediator so dropping a materialization
        #: resets the mediator's assembled engine
        self.on_materializations_changed = None
        # re-entrant: flush() runs under invalidate()'s lock when
        # full_flush_on_change is set
        self._lock = threading.RLock()

    # -- entries ---------------------------------------------------------

    def lookup(self, key):
        """The live entry under `key`, or None; counts a hit/miss.

        Args:
            key: the call fingerprint the answer was stored under.
        """
        with self._lock:
            entry = self.store.get(key)
            if entry is None:
                self.stats.misses += 1
                return None
            self.stats.hits += 1
            return entry

    def store_answer(self, key, source, class_name, rows, concepts=()):
        """Cache one fresh source answer; returns the new entry.

        Args:
            key: the call fingerprint to store under.
            source: name of the source that answered.
            class_name: exported class the rows belong to.
            rows: the answer rows (stored as a tuple).
            concepts: DM concepts the class is anchored at, for
                domain-map-aware invalidation.
        """
        with self._lock:
            entry = CacheEntry(key, source, class_name, rows, concepts)
            evicted = self.store.put(key, entry)
            self.stats.puts += 1
            self.stats.evictions += len(evicted)
            if evicted:
                obs.count("cache.evictions", len(evicted))
            return entry

    @property
    def entry_count(self):
        return len(self.store)

    @property
    def row_count(self):
        return self.store.row_count

    def entries(self):
        """Snapshot list of live entries (oldest first)."""
        return [entry for _key, entry in self.store.items()]

    # -- materializations ------------------------------------------------

    def add_materialization(self, materialization):
        self.materializations[materialization.view_name] = materialization
        self.stats.materializations += 1
        self._materializations_changed()

    def drop_materialization(self, view_name):
        """Drop one materialization; returns True if it existed."""
        if self.materializations.pop(view_name, None) is None:
            return False
        self._materializations_changed()
        return True

    def _materializations_changed(self):
        if self.on_materializations_changed is not None:
            self.on_materializations_changed()

    # -- invalidation ----------------------------------------------------

    def invalidate(self, concepts=(), classes=(), reason=""):
        """Drop what a deployment change outdated.

        `concepts` is the affected-concept closure of the change;
        `classes` the exported/derived class names it touched; `reason`
        is recorded on the invalidation event.  Returns
        ``(dropped_entries, dropped_materializations)``.  See the
        module docstring for the exact overlap semantics.
        """
        with self._lock:
            if self.full_flush_on_change:
                return self.flush(reason=reason or "full_flush_on_change")
            concepts = frozenset(concepts)
            classes = frozenset(classes)
            dropped_entries = 0
            for key, entry in self.store.items():
                if entry.concepts & concepts:
                    self.store.discard(key)
                    dropped_entries += 1
            dropped_materializations = 0
            for name in sorted(self.materializations):
                materialization = self.materializations[name]
                if (
                    materialization.uncacheable
                    or materialization.concepts & concepts
                    or materialization.classes & classes
                ):
                    del self.materializations[name]
                    dropped_materializations += 1
            self._record_invalidation(
                dropped_entries, dropped_materializations, reason
            )
            return dropped_entries, dropped_materializations

    def invalidate_source(self, source, reason=""):
        """Drop every entry cached from `source` (deregistration).

        Args:
            source: the deregistered source name.
            reason: free-text reason recorded on the invalidation
                event.
        """
        with self._lock:
            dropped = 0
            for key, entry in self.store.items():
                if entry.source == source:
                    self.store.discard(key)
                    dropped += 1
            self._record_invalidation(
                dropped, 0, reason or "deregister:%s" % source
            )
            return dropped

    def flush(self, reason="flush"):
        """The escape hatch: drop every entry and materialization.

        Args:
            reason: free-text reason recorded on the invalidation
                event.
        """
        with self._lock:
            dropped_entries = len(self.store)
            dropped_materializations = len(self.materializations)
            self.store.clear()
            self.materializations.clear()
            self.stats.flushes += 1
            self._record_invalidation(
                dropped_entries, dropped_materializations, reason
            )
            return dropped_entries, dropped_materializations

    def _record_invalidation(self, entries, materializations, reason):
        self.stats.invalidated_entries += entries
        self.stats.invalidated_materializations += materializations
        if materializations:
            self._materializations_changed()
        if entries or materializations:
            obs.event(
                "cache.invalidated",
                entries=entries,
                materializations=materializations,
                reason=reason,
            )
            obs.count("cache.invalidated_entries", entries)
            obs.count("cache.invalidated_materializations", materializations)

    # -- export ----------------------------------------------------------

    def stats_dict(self):
        """Deterministic JSON-ready snapshot (counts only, no
        timings)."""
        out = {
            "entries": self.entry_count,
            "rows": self.row_count,
            "materialized_views": sorted(self.materializations),
        }
        out.update(self.stats.as_dict())
        return out

    def __repr__(self):
        return "AnswerCache(entries=%d, materialized=%d, %r)" % (
            self.entry_count,
            len(self.materializations),
            self.stats,
        )
