"""The model-based mediator (Figure 2).

:class:`Mediator` ties the stack together:

* it owns the **domain map** and the **semantic index**;
* sources **register** their CM(S) — schema, semantic rules, query
  capabilities, anchors, optional DM refinements, optionally their
  lifted data (eager mode) — with the message crossing the XML wire
  when ``via_xml=True``;
* **integrated views** (F-logic rules and distribution views) are
  defined on top;
* queries are answered either by direct F-logic evaluation over the
  assembled knowledge base (:meth:`ask`) or through the Section 5
  **correlation plan** (:meth:`correlate`): push selections, select
  sources via the semantic index, retrieve, lub + aggregate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..errors import (
    SEVERITY_ERROR,
    MediatorError,
    RegistrationError,
    ReproError,
    SourceError,
    ViewError,
)
from ..datalog.safety import check_rule_safety
from ..datalog.ast import Rule
from ..domainmap.execute import compile_domain_map
from ..domainmap.index import SemanticIndex
from ..domainmap.model import DomainMap
from ..domainmap.registry import register_concepts
from ..flogic.engine import FLogicEngine
from ..gcm.constraints import check as gcm_check
from .aggregate import Distribution, aggregate_over_dm
from ..cache import (
    AnswerCache,
    CacheStore,
    affected_concepts,
    query_fingerprint,
    refinement_seeds,
)
from ..parallel.executor import ParallelExecutor
from ..resilience.guard import SourceGuard
from ..resilience.policy import ResiliencePolicy
from .planner import (
    CorrelationQuery,
    CorrelationResult,
    execute as planner_execute,
    explain as planner_explain,
    plan as planner_plan,
)
from .registration import build_registration, parse_registration
from .views import DistributionView, IntegratedView


class RegisteredSource:
    """Mediator-side record of one registered source."""

    def __init__(self, wrapper, registration):
        self.wrapper = wrapper
        self.registration = registration

    @property
    def name(self):
        return self.registration.source

    def __repr__(self):
        return "RegisteredSource(%r)" % self.name


class Mediator:
    """A model-based mediator over one domain map.

    Args:
        dm: the :class:`~repro.domainmap.DomainMap` mediated over (a
            fresh empty one is created when omitted).
        name: the mediator's name (used in ids and reprs).
        edge_assertions: which DM edge kinds to compile into
            assertions (None = the compiler default).
        dialogue_via_xml: round-trip every source query through the
            XML wire format (the architecture's "everything in XML").
        strict: lint every registration and view definition first and
            reject it (state untouched) on error-severity diagnostics.
        resilience: the medguard layer — a
            :class:`~repro.resilience.SourceGuard` or
            :class:`~repro.resilience.ResiliencePolicy` (None = calls
            go straight through).
        cache: the medcache layer — an
            :class:`~repro.cache.AnswerCache`, a
            :class:`~repro.cache.CacheStore`, or ``True`` for the
            default cache (None = nothing is cached).
        parallel: the medpar layer — a
            :class:`~repro.parallel.ParallelExecutor`, ``True`` for
            the default executor, or an int worker count (None/False =
            sequential plans, today's behavior).
    """

    def __init__(
        self,
        dm=None,
        name="mediator",
        edge_assertions=None,
        dialogue_via_xml=False,
        strict=False,
        resilience=None,
        cache=None,
        parallel=None,
    ):
        self.name = name
        self.dm = dm if dm is not None else DomainMap("%s_dm" % name)
        self.index = SemanticIndex(self.dm)
        self.edge_assertions = edge_assertions
        self.dialogue_via_xml = dialogue_via_xml
        #: with ``strict=True`` every registration and view definition
        #: is linted first and rejected (state untouched) if the
        #: analyzer reports error-severity diagnostics
        self.strict = strict
        #: the medguard layer: a :class:`~repro.resilience.SourceGuard`
        #: (accepted directly or built from a
        #: :class:`~repro.resilience.ResiliencePolicy`), or None — in
        #: which case every source call goes straight through
        if resilience is None:
            self.resilience = None
        elif isinstance(resilience, SourceGuard):
            self.resilience = resilience
        elif isinstance(resilience, ResiliencePolicy):
            self.resilience = SourceGuard(resilience)
        else:
            raise MediatorError(
                "resilience must be a ResiliencePolicy or SourceGuard, "
                "not %r" % type(resilience).__name__
            )
        #: the medcache layer: an :class:`~repro.cache.AnswerCache`
        #: (accepted directly, built over a given
        #: :class:`~repro.cache.CacheStore`, or default-constructed
        #: with ``cache=True``), or None — in which case source calls
        #: and view evaluations are never cached
        if cache is None:
            self.cache = None
        elif isinstance(cache, AnswerCache):
            self.cache = cache
        elif isinstance(cache, CacheStore):
            self.cache = AnswerCache(store=cache)
        elif cache is True:
            self.cache = AnswerCache()
        else:
            raise MediatorError(
                "cache must be an AnswerCache, a CacheStore or True, "
                "not %r" % type(cache).__name__
            )
        if self.cache is not None:
            # dropping a materialization must reset the assembled
            # engine, or a stale snapshot would keep answering
            self.cache.on_materializations_changed = self._invalidate
        #: the medpar layer: a
        #: :class:`~repro.parallel.ParallelExecutor` fanning per-source
        #: plan work out to a bounded thread pool, or None — in which
        #: case plans run sequentially exactly as before (one is-None
        #: check per plan step)
        if parallel is None or parallel is False:
            self.parallel = None
        elif isinstance(parallel, ParallelExecutor):
            self.parallel = parallel
        elif parallel is True:
            self.parallel = ParallelExecutor(name="%s-medpar" % name)
        elif isinstance(parallel, int):
            self.parallel = ParallelExecutor(
                max_workers=parallel, name="%s-medpar" % name
            )
        else:
            raise MediatorError(
                "parallel must be a ParallelExecutor, True, or a worker "
                "count, not %r" % type(parallel).__name__
            )
        self._safety_checked = False
        self._sources: Dict[str, RegisteredSource] = {}
        self._views: Dict[str, object] = {}
        self._view_rules_by_name: Dict[str, List[Rule]] = {}
        self._facts: List[Rule] = []
        self._materialized: List[Rule] = []
        self._engine: Optional[FLogicEngine] = None
        self._wire_log: List[Tuple[str, int]] = []

    # -- registration ---------------------------------------------------

    def register(self, wrapper, dm_refinement=None, eager=True, via_xml=True):
        """Register a wrapped source.

        Args:
            wrapper: the :class:`~repro.sources.Wrapper` joining.
            dm_refinement: DL axiom text refining the domain map first
                (Figure 3 mechanism).
            eager: load the source's lifted instance data now; with
                ``eager=False`` data is only fetched by query plans.
            via_xml: round-trip the registration through the XML wire
                format (the architecture's "everything in XML" path).
        """
        if wrapper.name in self._sources:
            raise RegistrationError("source %r already registered" % wrapper.name)
        with obs.span(
            "mediator.register",
            source=wrapper.name,
            via_xml=via_xml,
            eager=eager,
        ):
            return self._register(wrapper, dm_refinement, eager, via_xml)

    def _register(self, wrapper, dm_refinement, eager, via_xml):
        if via_xml:
            with obs.span(
                "xml.wire", kind="register", source=wrapper.name
            ) as wire_span:
                message = build_registration(
                    wrapper, include_data=eager, dm_refinement=dm_refinement
                )
                self._wire_log.append(
                    ("register:%s" % wrapper.name, len(message))
                )
                registration = parse_registration(message)
                wire_span.set(bytes=len(message))
            obs.count("wire.messages", kind="register")
            obs.count("wire.bytes", len(message), kind="register")
        else:
            from .registration import ParsedRegistration

            registration = ParsedRegistration(
                wrapper.name,
                wrapper.schema_cm(),
                wrapper.capabilities(),
                wrapper.anchors(),
                dm_refinement,
                wrapper.export_all_facts() if eager else [],
            )

        if self.strict:
            self._require_clean_registration(registration)
        refinement_result = None
        if registration.refinement:
            refinement_result = register_concepts(
                self.dm, registration.refinement, allow_new_roles=True
            )
        if self.cache is not None:
            # Invalidate *before* the new anchors/facts join the
            # knowledge base: if the (eager) registration data were
            # assembled first, a materialization predating this
            # registration could still answer on its behalf.
            self._cache_invalidate_change(
                seeds=(
                    refinement_seeds(refinement_result)
                    if refinement_result is not None
                    else ()
                ),
                classes=registration.capabilities,
                reason="register:%s" % registration.source,
            )
        for class_name, concept, context in registration.anchors:
            self.index.add_anchor(wrapper.name, class_name, concept, context)
        record = RegisteredSource(wrapper, registration)
        self._sources[wrapper.name] = record
        if registration.facts:
            self._facts.extend(registration.facts)
        self._invalidate()
        return registration

    def deregister(self, source_name):
        """Remove the source named `source_name` (anchors included).
        Previously loaded facts are rebuilt from the remaining
        sources."""
        if source_name not in self._sources:
            raise RegistrationError("source %r is not registered" % source_name)
        if self.cache is not None:
            self.cache.invalidate_source(source_name)
            self._cache_invalidate_change(
                seeds=self.index.concepts_of_source(source_name),
                classes=self._sources[source_name].registration.capabilities,
                reason="deregister:%s" % source_name,
            )
        del self._sources[source_name]
        self.index.remove_source(source_name)
        self._facts = []
        for record in self._sources.values():
            self._facts.extend(record.registration.facts)
        self._invalidate()

    def wrapper(self, source_name):
        """The registered :class:`~repro.sources.Wrapper` named
        `source_name` (raises for unknown sources)."""
        record = self._sources.get(source_name)
        if record is None:
            raise MediatorError("unknown source %r" % source_name)
        return record.wrapper

    def source_names(self):
        """Sorted names of the registered sources."""
        return sorted(self._sources)

    def capabilities(self, source_name):
        """The ``class -> QueryCapability`` map the source named
        `source_name` registered with."""
        record = self._sources.get(source_name)
        if record is None:
            raise MediatorError("unknown source %r" % source_name)
        return record.registration.capabilities

    @property
    def wire_log(self):
        """(message, size-in-bytes) pairs of XML messages exchanged."""
        return list(self._wire_log)

    def source_query(self, source_name, source_query):
        """Send `source_query` (a :class:`~repro.sources.SourceQuery`)
        to the source named `source_name`, honouring
        `dialogue_via_xml`.

        With the XML dialogue on, the request and answer cross the wire
        format of :mod:`repro.xmlio.messages` (and are logged); rows
        come back re-joined with their raw form for lifting.

        Any unexpected exception escaping the wrapper is normalized to
        a :class:`~repro.errors.SourceError` here (the original kept as
        ``__cause__``), so callers — ``skip_failed_sources``, the
        resilience layer — see one failure vocabulary.  When a
        :class:`~repro.resilience.ResiliencePolicy` is configured, the
        call runs under the guard: retries, circuit breaking, timeouts
        and stale serving all apply per attempt.

        When an :class:`~repro.cache.AnswerCache` is configured, it is
        consulted *above* the guard: a hit skips the wire, the retries
        and the breaker bookkeeping entirely (a cached fresh answer
        beats an open breaker).  Misses run the normal path; only
        fresh results are cached — a medguard stale-serving fallback
        (last-known-good) is never written into medcache.
        """
        wrapper = self.wrapper(source_name)
        cache = self.cache
        fingerprint = None
        if cache is not None:
            fingerprint = query_fingerprint(
                source_name,
                source_query,
                self._sources[source_name].registration.capabilities.get(
                    source_query.class_name
                ),
            )
            entry = cache.lookup(fingerprint)
            if entry is not None:
                obs.event(
                    "cache.hit",
                    source=source_name,
                    class_name=source_query.class_name,
                )
                obs.count("cache.hits", source=source_name)
                return list(entry.rows)
            obs.count("cache.misses", source=source_name)
        guard = self.resilience
        if guard is None:
            rows = self._source_query(wrapper, source_query)
            fresh = True
        else:
            rows = guard.call(
                source_name,
                source_query.class_name,
                lambda: self._source_query(wrapper, source_query),
                cache_key=(
                    tuple(sorted(source_query.selections.items())),
                    tuple(source_query.projection)
                    if source_query.projection is not None
                    else None,
                ),
                executor=self.parallel,
            )
            outcome = guard.last_outcome()
            fresh = outcome is None or not outcome.stale
        if cache is not None and fresh:
            cache.store_answer(
                fingerprint,
                source_name,
                source_query.class_name,
                rows,
                concepts=self.index.concepts_of_class(
                    source_name, source_query.class_name
                ),
            )
            obs.count("cache.puts", source=source_name)
        return rows

    def _source_query(self, wrapper, source_query):
        """One source-call attempt, with the failure vocabulary
        normalized at this boundary."""
        try:
            if not self.dialogue_via_xml:
                return wrapper.query(source_query)
            return self._source_query_xml(wrapper, source_query)
        except ReproError:
            raise
        except Exception as exc:
            raise SourceError(
                "source %r raised %s: %s"
                % (wrapper.name, type(exc).__name__, exc)
            ) from exc

    def _source_query_xml(self, wrapper, source_query):
        from ..xmlio.messages import handle_request, query_to_xml, rows_from_xml

        source_name = wrapper.name
        with obs.span(
            "xml.wire",
            kind="query",
            source=source_name,
            class_name=source_query.class_name,
        ) as wire_span:
            request = query_to_xml(source_query)
            answer = handle_request(wrapper, request)
            wire_span.set(bytes=len(request) + len(answer))
        obs.count("wire.messages", kind="query")
        obs.count("wire.bytes", len(request) + len(answer), kind="query")
        self._wire_log.append(
            ("query:%s.%s" % (source_name, source_query.class_name),
             len(request) + len(answer))
        )
        _class_name, rows = rows_from_xml(answer)
        # the wire drops _raw; reconstruct it for lift_rows by keying
        # the direct rows on object id (an in-process shortcut, so it
        # bypasses any fault-injecting decorator: `unwrapped`)
        direct = {
            row["_object"]: row
            for row in wrapper.unwrapped.query(source_query)
        }
        return [direct[row["_object"]] for row in rows]

    # -- views ---------------------------------------------------------------

    def add_view(self, view):
        """Register an integrated view definition."""
        if view.name in self._views:
            raise MediatorError("view %r already defined" % view.name)
        if self.strict:
            self._require_clean_view(view)
        self._views[view.name] = view
        if isinstance(view, IntegratedView):
            with obs.span("mediator.add_view", view=view.name) as span:
                rules = view.datalog_rules(traced=True)
                span.set(datalog_rules=len(rules))
                self._view_rules_by_name[view.name] = rules
        if self.cache is not None:
            # a new view's rules may feed (or shadow) what an existing
            # materialized view derived from the same classes
            self._cache_invalidate_change(
                classes=self._view_classes(view),
                reason="add_view:%s" % view.name,
            )
        self._invalidate()
        return view

    @staticmethod
    def _view_classes(view):
        from ..cache.views import view_classes

        if isinstance(view, IntegratedView):
            head_classes, body_classes = view_classes(view)
            return head_classes | body_classes | {view.name}
        if isinstance(view, DistributionView):
            return {view.name, view.source_class}
        return {view.name}

    def view(self, name):
        """The view registered under `name` (raises when unknown)."""
        view = self._views.get(name)
        if view is None:
            raise MediatorError("unknown view %r" % name)
        return view

    def view_names(self):
        """Sorted names of the defined views."""
        return sorted(self._views)

    # -- knowledge base ----------------------------------------------------

    def _invalidate(self):
        self._engine = None
        self._safety_checked = False

    @property
    def _view_rules(self):
        """Flat list of every integrated view's translated rules (in
        definition order) — kept for introspection compatibility."""
        rules: List[Rule] = []
        for view_rules in self._view_rules_by_name.values():
            rules.extend(view_rules)
        return rules

    def _cache_invalidate_change(self, seeds=(), classes=(), reason=""):
        """Route one deployment change through the medcache
        invalidation engine (no-op without a cache)."""
        if self.cache is None:
            return
        concepts = affected_concepts(self.dm, set(seeds))
        entries, materializations = self.cache.invalidate(
            concepts=concepts, classes=set(classes), reason=reason
        )
        if entries or materializations:
            self._invalidate()

    # -- static analysis ---------------------------------------------------

    def lint(self):
        """Run the medlint static analyzer over this deployment;
        returns a :class:`~repro.analysis.report.Report` (nothing is
        evaluated)."""
        from ..analysis import analyze_mediator

        return analyze_mediator(self)

    def _require_clean_registration(self, registration):
        from ..analysis.deploy import registration_diagnostics

        diagnostics = registration_diagnostics(self, registration)
        self._require_clean(
            diagnostics,
            RegistrationError,
            "strict mediator %r rejected registration of source %r"
            % (self.name, registration.source),
        )

    def _require_clean_view(self, view):
        from ..analysis.deploy import view_diagnostics

        diagnostics = view_diagnostics(self, view)
        self._require_clean(
            diagnostics,
            ViewError,
            "strict mediator %r rejected view %r" % (self.name, view.name),
        )

    @staticmethod
    def _require_clean(diagnostics, error_class, prefix):
        errors = [d for d in diagnostics if d.severity == SEVERITY_ERROR]
        if errors:
            raise error_class(
                "%s: %s" % (prefix, "; ".join(str(d) for d in errors)),
                diagnostics=diagnostics,
            )

    def assembled_rules(self, include_data=True):
        """Every rule the mediator's engine runs on.

        ``include_data=False`` yields the schema-and-knowledge-only
        program (domain map, source CMs, views) without the loaded
        instance facts — what plan execution evaluates retrieved rows
        against, so a plan's filtering is not undone by eagerly loaded
        data.

        A view with a live medcache materialization is served *as
        data*: its rules are swapped out and its snapshot facts in
        (only when ``include_data=True`` — the schema-only program
        keeps the rules, so planning and lint see the definition).
        """
        materialized_views = (
            self.cache.materializations if self.cache is not None else {}
        )
        rules: List[Rule] = []
        rules.extend(
            compile_domain_map(self.dm, assertions_for=self.edge_assertions)
        )
        for record in self._sources.values():
            rules.extend(
                record.registration.cm.all_rules(include_constraints=False)
            )
        for name, view_rules in self._view_rules_by_name.items():
            if include_data and name in materialized_views:
                continue
            rules.extend(view_rules)
        if include_data:
            rules.extend(self._facts)
            rules.extend(self._materialized)
            for name in sorted(materialized_views):
                rules.extend(materialized_views[name].facts)
        return rules

    def engine(self):
        """The mediator's (cached) F-logic engine."""
        if self._engine is None:
            self._engine = FLogicEngine()
            self._engine.tell_rules(self.assembled_rules())
        return self._engine

    def evaluate(self):
        """Evaluate the knowledge base; returns an EvaluationResult."""
        return self.engine().evaluate()

    def evaluate_with(self, extra_facts, include_data=True):
        """Evaluate with the additional (lazily fetched) `extra_facts`,
        without mutating the mediator's knowledge base.

        ``include_data=False`` evaluates the extra facts against the
        knowledge only (domain map + schemas + views), ignoring any
        eagerly loaded instance data.
        """
        extra = list(extra_facts)
        with obs.span(
            "mediator.evaluate_with",
            extra_facts=len(extra),
            include_data=include_data,
        ):
            return self._evaluate_with(extra, include_data)

    def _evaluate_with(self, extra, include_data):
        engine = FLogicEngine()
        engine.tell_rules(self.assembled_rules(include_data=include_data))
        engine.tell_rules(extra)
        if not self._safety_checked:
            # first evaluation since the knowledge base changed: run the
            # full program check once, then remember it so repeated plan
            # executions only re-check their (few) fetched facts
            result = engine.evaluate(check_safety=True)
            self._safety_checked = True
            return result
        for rule in extra:
            check_rule_safety(rule)
        return engine.evaluate(check_safety=False)

    def ask(self, fl_query):
        """Answer the F-logic query text `fl_query` over the mediated
        knowledge base; returns the list of answer substitutions."""
        with obs.span("mediator.ask", query=fl_query) as span:
            answers = self.engine().ask(fl_query)
            span.set(answers=len(answers))
            return answers

    def ask_lazy(self, fl_query):
        """Answer `fl_query` by fetching only the source data it
        references (navigation-driven evaluation; see
        :mod:`repro.core.lazy`).  Returns (answers, fetches)."""
        from .lazy import ask_lazy

        return ask_lazy(self, fl_query)

    def holds(self, fl_query):
        """Does `fl_query` have at least one answer?"""
        return bool(self.ask(fl_query))

    def explain(self, target, skip_failed_sources=False):
        """EXPLAIN `target` — a query, or a fact's derivation — with
        retrieval failures degrading instead of aborting under
        `skip_failed_sources`.

        * Given a :class:`CorrelationQuery`, plans *and runs* it under
          a private tracer and returns a
          :class:`~repro.core.planner.QueryExplain` — the annotated
          plan with per-step wall time and cardinalities (the analogue
          of SQL ``EXPLAIN ANALYZE``).
        * Given F-logic fact text, returns its derivation tree, whose
          leaves are source-lifted facts, DM axioms and builtin checks
          (see :mod:`repro.datalog.provenance`).
        """
        if isinstance(target, CorrelationQuery):
            return planner_explain(
                self, target, skip_failed_sources=skip_failed_sources
            )
        return self.engine().explain(target)

    def check_integrity(self, constraints=(), raise_on_violation=False):
        """Two-phase integrity check of the given `constraints` over
        the mediated object base; with `raise_on_violation` the first
        violation raises instead of being reported."""
        return gcm_check(
            self.assembled_rules(),
            constraints,
            raise_on_violation=raise_on_violation,
        )

    # -- source selection --------------------------------------------------

    def select_sources(self, concepts, target_class=None):
        """Sources with data anchored at any of the `concepts` (step 2
        of the Section 5 plan), optionally filtered to exporters of
        `target_class`."""
        sources = self.index.sources_for_any(concepts)
        if target_class is not None:
            sources = [
                source
                for source in sources
                if target_class in self.wrapper(source).exports
            ]
        return sources

    # -- distribution views ---------------------------------------------------

    def compute_distribution(
        self,
        root,
        value_attr,
        group_attr=None,
        group_value=None,
        filters=None,
        role="has",
        func="sum",
        store=None,
    ):
        """Run the recursive aggregate over the mediated object base.

        Args:
            root: DM concept the distribution is rooted at.
            value_attr: attribute carrying the aggregated value.
            group_attr / group_value: optional grouping attribute and
                the group to aggregate (e.g. one protein).
            filters: extra attribute -> value filters on the
                aggregated objects.
            role: DM relation traversed downward from the root.
            func: the aggregate function name (e.g. ``sum``).
            store: an evaluated fact store to aggregate over (the
                mediator's own evaluation when omitted).
        """
        if store is None:
            store = self.evaluate().store
        return aggregate_over_dm(
            self.dm,
            store,
            root,
            value_attr,
            role=role,
            func=func,
            group_attr=group_attr,
            group_value=group_value,
            filters=filters,
        )

    def materialize_distribution(
        self, view_name, group_value, root, filters=None, extra=None
    ):
        """Materialize one instance of the :class:`DistributionView`
        named `view_name` — the distribution of `group_value` rooted at
        `root`, optionally narrowed by `filters` — into the knowledge
        base, attaching any `extra` facts; returns the
        :class:`Distribution`."""
        view = self.view(view_name)
        if not isinstance(view, DistributionView):
            raise MediatorError("%r is not a distribution view" % view_name)
        distribution = self.compute_distribution(
            root,
            view.value_attr,
            group_attr=view.group_attr,
            group_value=group_value,
            filters=filters,
            role=view.role,
            func=view.func,
        )
        self._materialized.extend(
            view.materialize_facts(group_value, root, distribution, extra)
        )
        self._invalidate()
        return distribution

    # -- materialized views (medcache) ----------------------------------------

    def materialize(self, view_or_name):
        """Materialize an :class:`IntegratedView` (`view_or_name`
        names one, or is the view itself): evaluate it once
        over the current knowledge base and serve later ``ask``/
        ``correlate`` evaluations from the snapshot (the view's rules
        are swapped out of :meth:`assembled_rules` while the
        materialization is live).

        Requires a cache (``Mediator(..., cache=...)``) — the snapshot
        lives in :attr:`AnswerCache.materializations`, where the
        domain-map-aware invalidation engine drops it when a
        registration, refinement or new view outdates it.  Returns the
        :class:`~repro.cache.Materialization`.
        """
        from ..cache.views import build_materialization

        if self.cache is None:
            raise MediatorError(
                "materialize() needs a cache: construct the mediator "
                "with Mediator(..., cache=True) or an AnswerCache"
            )
        name = view_or_name if isinstance(view_or_name, str) else view_or_name.name
        view = self.view(name)
        if not isinstance(view, IntegratedView):
            raise MediatorError(
                "only integrated views can be materialized; use "
                "materialize_distribution for %r" % name
            )
        with obs.span("mediator.materialize", view=name) as span:
            # evaluate with the view's *rules* live (a previous
            # materialization of the same view must not answer)
            self.cache.drop_materialization(name)
            self._invalidate()
            store = self.evaluate().store
            materialization = build_materialization(self, view, store)
            span.set(
                facts=len(materialization.facts),
                concepts=len(materialization.concepts),
            )
            obs.count("cache.materializations", view=name)
            # add_materialization resets the engine via the
            # on_materializations_changed hook
            self.cache.add_materialization(materialization)
            return materialization

    # -- planned queries -----------------------------------------------------

    def plan(self, query):
        """Plan the :class:`CorrelationQuery` `query` without
        executing it."""
        return planner_plan(self, query)

    def correlate(self, query, skip_failed_sources=False):
        """Plan and execute the correlation `query`; returns a
        :class:`~repro.core.planner.CorrelationResult` — a ``(plan,
        context)`` pair that also surfaces degradation directly
        (``result.degraded``, ``result.degraded_answer()``).

        ``context.answers`` holds (group value, Distribution) pairs —
        the paper's ``answer(P, D)``.  With `skip_failed_sources` (or a
        :class:`~repro.resilience.ResiliencePolicy` whose ``degrade``
        is on), a failing source is recorded rather than aborting the
        plan, and the result reports the partial answer per source.
        """
        with obs.span("mediator.correlate", seed_class=query.seed_class) as span:
            query_plan, context = planner_execute(
                self, query, skip_failed_sources=skip_failed_sources
            )
            span.set(
                answers=len(context.answers),
                skipped=len(context.errors),
            )
            return CorrelationResult(query_plan, context)

    def __repr__(self):
        return "Mediator(%r, sources=%r, views=%r)" % (
            self.name,
            self.source_names(),
            self.view_names(),
        )
