"""The model-based mediator (Figure 2).

:class:`Mediator` ties the stack together:

* it owns the **domain map** and the **semantic index**;
* sources **register** their CM(S) — schema, semantic rules, query
  capabilities, anchors, optional DM refinements, optionally their
  lifted data (eager mode) — with the message crossing the XML wire
  when ``via_xml=True``;
* **integrated views** (F-logic rules and distribution views) are
  defined on top;
* queries are answered either by direct F-logic evaluation over the
  assembled knowledge base (:meth:`ask`) or through the Section 5
  **correlation plan** (:meth:`correlate`): push selections, select
  sources via the semantic index, retrieve, lub + aggregate.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..errors import (
    SEVERITY_ERROR,
    MediatorError,
    RegistrationError,
    ReproError,
    SourceError,
    ViewError,
)
from ..datalog.safety import check_rule_safety
from ..datalog.ast import Rule
from ..domainmap.execute import compile_domain_map
from ..domainmap.index import SemanticIndex
from ..domainmap.model import DomainMap
from ..domainmap.registry import register_concepts
from ..flogic.engine import FLogicEngine
from ..gcm.constraints import check as gcm_check
from .aggregate import Distribution, aggregate_over_dm
from ..resilience.guard import SourceGuard
from ..resilience.policy import ResiliencePolicy
from .planner import (
    CorrelationQuery,
    CorrelationResult,
    execute as planner_execute,
    explain as planner_explain,
    plan as planner_plan,
)
from .registration import build_registration, parse_registration
from .views import DistributionView, IntegratedView


class RegisteredSource:
    """Mediator-side record of one registered source."""

    def __init__(self, wrapper, registration):
        self.wrapper = wrapper
        self.registration = registration

    @property
    def name(self):
        return self.registration.source

    def __repr__(self):
        return "RegisteredSource(%r)" % self.name


class Mediator:
    """A model-based mediator over one domain map."""

    def __init__(
        self,
        dm=None,
        name="mediator",
        edge_assertions=None,
        dialogue_via_xml=False,
        strict=False,
        resilience=None,
    ):
        self.name = name
        self.dm = dm if dm is not None else DomainMap("%s_dm" % name)
        self.index = SemanticIndex(self.dm)
        self.edge_assertions = edge_assertions
        self.dialogue_via_xml = dialogue_via_xml
        #: with ``strict=True`` every registration and view definition
        #: is linted first and rejected (state untouched) if the
        #: analyzer reports error-severity diagnostics
        self.strict = strict
        #: the medguard layer: a :class:`~repro.resilience.SourceGuard`
        #: (accepted directly or built from a
        #: :class:`~repro.resilience.ResiliencePolicy`), or None — in
        #: which case every source call goes straight through
        if resilience is None:
            self.resilience = None
        elif isinstance(resilience, SourceGuard):
            self.resilience = resilience
        elif isinstance(resilience, ResiliencePolicy):
            self.resilience = SourceGuard(resilience)
        else:
            raise MediatorError(
                "resilience must be a ResiliencePolicy or SourceGuard, "
                "not %r" % type(resilience).__name__
            )
        self._safety_checked = False
        self._sources: Dict[str, RegisteredSource] = {}
        self._views: Dict[str, object] = {}
        self._view_rules: List[Rule] = []
        self._facts: List[Rule] = []
        self._materialized: List[Rule] = []
        self._engine: Optional[FLogicEngine] = None
        self._wire_log: List[Tuple[str, int]] = []

    # -- registration ---------------------------------------------------

    def register(self, wrapper, dm_refinement=None, eager=True, via_xml=True):
        """Register a wrapped source.

        Args:
            wrapper: the :class:`~repro.sources.Wrapper` joining.
            dm_refinement: DL axiom text refining the domain map first
                (Figure 3 mechanism).
            eager: load the source's lifted instance data now; with
                ``eager=False`` data is only fetched by query plans.
            via_xml: round-trip the registration through the XML wire
                format (the architecture's "everything in XML" path).
        """
        if wrapper.name in self._sources:
            raise RegistrationError("source %r already registered" % wrapper.name)
        with obs.span(
            "mediator.register",
            source=wrapper.name,
            via_xml=via_xml,
            eager=eager,
        ):
            return self._register(wrapper, dm_refinement, eager, via_xml)

    def _register(self, wrapper, dm_refinement, eager, via_xml):
        if via_xml:
            with obs.span(
                "xml.wire", kind="register", source=wrapper.name
            ) as wire_span:
                message = build_registration(
                    wrapper, include_data=eager, dm_refinement=dm_refinement
                )
                self._wire_log.append(
                    ("register:%s" % wrapper.name, len(message))
                )
                registration = parse_registration(message)
                wire_span.set(bytes=len(message))
            obs.count("wire.messages", kind="register")
            obs.count("wire.bytes", len(message), kind="register")
        else:
            from .registration import ParsedRegistration

            registration = ParsedRegistration(
                wrapper.name,
                wrapper.schema_cm(),
                wrapper.capabilities(),
                wrapper.anchors(),
                dm_refinement,
                wrapper.export_all_facts() if eager else [],
            )

        if self.strict:
            self._require_clean_registration(registration)
        if registration.refinement:
            register_concepts(self.dm, registration.refinement, allow_new_roles=True)
        for class_name, concept, context in registration.anchors:
            self.index.add_anchor(wrapper.name, class_name, concept, context)
        record = RegisteredSource(wrapper, registration)
        self._sources[wrapper.name] = record
        if registration.facts:
            self._facts.extend(registration.facts)
        self._invalidate()
        return registration

    def deregister(self, source_name):
        """Remove a source (anchors included).  Previously loaded facts
        are rebuilt from the remaining sources."""
        if source_name not in self._sources:
            raise RegistrationError("source %r is not registered" % source_name)
        del self._sources[source_name]
        self.index.remove_source(source_name)
        self._facts = []
        for record in self._sources.values():
            self._facts.extend(record.registration.facts)
        self._invalidate()

    def wrapper(self, source_name):
        record = self._sources.get(source_name)
        if record is None:
            raise MediatorError("unknown source %r" % source_name)
        return record.wrapper

    def source_names(self):
        return sorted(self._sources)

    def capabilities(self, source_name):
        record = self._sources.get(source_name)
        if record is None:
            raise MediatorError("unknown source %r" % source_name)
        return record.registration.capabilities

    @property
    def wire_log(self):
        """(message, size-in-bytes) pairs of XML messages exchanged."""
        return list(self._wire_log)

    def source_query(self, source_name, source_query):
        """Send a query to a source, honouring `dialogue_via_xml`.

        With the XML dialogue on, the request and answer cross the wire
        format of :mod:`repro.xmlio.messages` (and are logged); rows
        come back re-joined with their raw form for lifting.

        Any unexpected exception escaping the wrapper is normalized to
        a :class:`~repro.errors.SourceError` here (the original kept as
        ``__cause__``), so callers — ``skip_failed_sources``, the
        resilience layer — see one failure vocabulary.  When a
        :class:`~repro.resilience.ResiliencePolicy` is configured, the
        call runs under the guard: retries, circuit breaking, timeouts
        and stale serving all apply per attempt.
        """
        wrapper = self.wrapper(source_name)
        guard = self.resilience
        if guard is None:
            return self._source_query(wrapper, source_query)
        return guard.call(
            source_name,
            source_query.class_name,
            lambda: self._source_query(wrapper, source_query),
            cache_key=(
                tuple(sorted(source_query.selections.items())),
                tuple(source_query.projection)
                if source_query.projection is not None
                else None,
            ),
        )

    def _source_query(self, wrapper, source_query):
        """One source-call attempt, with the failure vocabulary
        normalized at this boundary."""
        try:
            if not self.dialogue_via_xml:
                return wrapper.query(source_query)
            return self._source_query_xml(wrapper, source_query)
        except ReproError:
            raise
        except Exception as exc:
            raise SourceError(
                "source %r raised %s: %s"
                % (wrapper.name, type(exc).__name__, exc)
            ) from exc

    def _source_query_xml(self, wrapper, source_query):
        from ..xmlio.messages import handle_request, query_to_xml, rows_from_xml

        source_name = wrapper.name
        with obs.span(
            "xml.wire",
            kind="query",
            source=source_name,
            class_name=source_query.class_name,
        ) as wire_span:
            request = query_to_xml(source_query)
            answer = handle_request(wrapper, request)
            wire_span.set(bytes=len(request) + len(answer))
        obs.count("wire.messages", kind="query")
        obs.count("wire.bytes", len(request) + len(answer), kind="query")
        self._wire_log.append(
            ("query:%s.%s" % (source_name, source_query.class_name),
             len(request) + len(answer))
        )
        _class_name, rows = rows_from_xml(answer)
        # the wire drops _raw; reconstruct it for lift_rows by keying
        # the direct rows on object id (an in-process shortcut, so it
        # bypasses any fault-injecting decorator: `unwrapped`)
        direct = {
            row["_object"]: row
            for row in wrapper.unwrapped.query(source_query)
        }
        return [direct[row["_object"]] for row in rows]

    # -- views ---------------------------------------------------------------

    def add_view(self, view):
        """Register an integrated view definition."""
        if view.name in self._views:
            raise MediatorError("view %r already defined" % view.name)
        if self.strict:
            self._require_clean_view(view)
        self._views[view.name] = view
        if isinstance(view, IntegratedView):
            from ..flogic.parser import parse_fl_program
            from ..flogic.translate import Translator

            with obs.span("mediator.add_view", view=view.name) as span:
                with obs.span("flogic.parse", chars=len(view.fl_rules)):
                    fl_rules = parse_fl_program(view.fl_rules)
                with obs.span("flogic.translate", fl_rules=len(fl_rules)):
                    rules = Translator().translate_rules(fl_rules)
                span.set(datalog_rules=len(rules))
                self._view_rules.extend(rules)
        self._invalidate()
        return view

    def view(self, name):
        view = self._views.get(name)
        if view is None:
            raise MediatorError("unknown view %r" % name)
        return view

    def view_names(self):
        return sorted(self._views)

    # -- knowledge base ----------------------------------------------------

    def _invalidate(self):
        self._engine = None
        self._safety_checked = False

    # -- static analysis ---------------------------------------------------

    def lint(self):
        """Run the medlint static analyzer over this deployment;
        returns a :class:`~repro.analysis.report.Report` (nothing is
        evaluated)."""
        from ..analysis import analyze_mediator

        return analyze_mediator(self)

    def _require_clean_registration(self, registration):
        from ..analysis.deploy import registration_diagnostics

        diagnostics = registration_diagnostics(self, registration)
        self._require_clean(
            diagnostics,
            RegistrationError,
            "strict mediator %r rejected registration of source %r"
            % (self.name, registration.source),
        )

    def _require_clean_view(self, view):
        from ..analysis.deploy import view_diagnostics

        diagnostics = view_diagnostics(self, view)
        self._require_clean(
            diagnostics,
            ViewError,
            "strict mediator %r rejected view %r" % (self.name, view.name),
        )

    @staticmethod
    def _require_clean(diagnostics, error_class, prefix):
        errors = [d for d in diagnostics if d.severity == SEVERITY_ERROR]
        if errors:
            raise error_class(
                "%s: %s" % (prefix, "; ".join(str(d) for d in errors)),
                diagnostics=diagnostics,
            )

    def assembled_rules(self, include_data=True):
        """Every rule the mediator's engine runs on.

        ``include_data=False`` yields the schema-and-knowledge-only
        program (domain map, source CMs, views) without the loaded
        instance facts — what plan execution evaluates retrieved rows
        against, so a plan's filtering is not undone by eagerly loaded
        data.
        """
        rules: List[Rule] = []
        rules.extend(
            compile_domain_map(self.dm, assertions_for=self.edge_assertions)
        )
        for record in self._sources.values():
            rules.extend(
                record.registration.cm.all_rules(include_constraints=False)
            )
        rules.extend(self._view_rules)
        if include_data:
            rules.extend(self._facts)
            rules.extend(self._materialized)
        return rules

    def engine(self):
        """The mediator's (cached) F-logic engine."""
        if self._engine is None:
            self._engine = FLogicEngine()
            self._engine.tell_rules(self.assembled_rules())
        return self._engine

    def evaluate(self):
        """Evaluate the knowledge base; returns an EvaluationResult."""
        return self.engine().evaluate()

    def evaluate_with(self, extra_facts, include_data=True):
        """Evaluate with additional (lazily fetched) facts, without
        mutating the mediator's knowledge base.

        ``include_data=False`` evaluates the extra facts against the
        knowledge only (domain map + schemas + views), ignoring any
        eagerly loaded instance data.
        """
        extra = list(extra_facts)
        with obs.span(
            "mediator.evaluate_with",
            extra_facts=len(extra),
            include_data=include_data,
        ):
            return self._evaluate_with(extra, include_data)

    def _evaluate_with(self, extra, include_data):
        engine = FLogicEngine()
        engine.tell_rules(self.assembled_rules(include_data=include_data))
        engine.tell_rules(extra)
        if not self._safety_checked:
            # first evaluation since the knowledge base changed: run the
            # full program check once, then remember it so repeated plan
            # executions only re-check their (few) fetched facts
            result = engine.evaluate(check_safety=True)
            self._safety_checked = True
            return result
        for rule in extra:
            check_rule_safety(rule)
        return engine.evaluate(check_safety=False)

    def ask(self, fl_query):
        """Answer an F-logic query over the mediated knowledge base."""
        with obs.span("mediator.ask", query=fl_query) as span:
            answers = self.engine().ask(fl_query)
            span.set(answers=len(answers))
            return answers

    def ask_lazy(self, fl_query):
        """Answer a query by fetching only the source data it
        references (navigation-driven evaluation; see
        :mod:`repro.core.lazy`).  Returns (answers, fetches)."""
        from .lazy import ask_lazy

        return ask_lazy(self, fl_query)

    def holds(self, fl_query):
        return bool(self.ask(fl_query))

    def explain(self, target, skip_failed_sources=False):
        """EXPLAIN a query, or a fact's derivation.

        * Given a :class:`CorrelationQuery`, plans *and runs* it under
          a private tracer and returns a
          :class:`~repro.core.planner.QueryExplain` — the annotated
          plan with per-step wall time and cardinalities (the analogue
          of SQL ``EXPLAIN ANALYZE``).
        * Given F-logic fact text, returns its derivation tree, whose
          leaves are source-lifted facts, DM axioms and builtin checks
          (see :mod:`repro.datalog.provenance`).
        """
        if isinstance(target, CorrelationQuery):
            return planner_explain(
                self, target, skip_failed_sources=skip_failed_sources
            )
        return self.engine().explain(target)

    def check_integrity(self, constraints=(), raise_on_violation=False):
        """Two-phase integrity check over the mediated object base."""
        return gcm_check(
            self.assembled_rules(),
            constraints,
            raise_on_violation=raise_on_violation,
        )

    # -- source selection --------------------------------------------------

    def select_sources(self, concepts, target_class=None):
        """Sources with data anchored at any of the concepts (step 2 of
        the Section 5 plan), optionally filtered to exporters of a
        class."""
        sources = self.index.sources_for_any(concepts)
        if target_class is not None:
            sources = [
                source
                for source in sources
                if target_class in self.wrapper(source).exports
            ]
        return sources

    # -- distribution views ---------------------------------------------------

    def compute_distribution(
        self,
        root,
        value_attr,
        group_attr=None,
        group_value=None,
        filters=None,
        role="has",
        func="sum",
        store=None,
    ):
        """Run the recursive aggregate over the mediated object base."""
        if store is None:
            store = self.evaluate().store
        return aggregate_over_dm(
            self.dm,
            store,
            root,
            value_attr,
            role=role,
            func=func,
            group_attr=group_attr,
            group_value=group_value,
            filters=filters,
        )

    def materialize_distribution(
        self, view_name, group_value, root, filters=None, extra=None
    ):
        """Materialize one instance of a :class:`DistributionView` into
        the knowledge base; returns the :class:`Distribution`."""
        view = self.view(view_name)
        if not isinstance(view, DistributionView):
            raise MediatorError("%r is not a distribution view" % view_name)
        distribution = self.compute_distribution(
            root,
            view.value_attr,
            group_attr=view.group_attr,
            group_value=group_value,
            filters=filters,
            role=view.role,
            func=view.func,
        )
        self._materialized.extend(
            view.materialize_facts(group_value, root, distribution, extra)
        )
        self._invalidate()
        return distribution

    # -- planned queries -----------------------------------------------------

    def plan(self, query):
        """Plan a :class:`CorrelationQuery` without executing it."""
        return planner_plan(self, query)

    def correlate(self, query, skip_failed_sources=False):
        """Plan and execute a correlation query; returns a
        :class:`~repro.core.planner.CorrelationResult` — a ``(plan,
        context)`` pair that also surfaces degradation directly
        (``result.degraded``, ``result.degraded_answer()``).

        ``context.answers`` holds (group value, Distribution) pairs —
        the paper's ``answer(P, D)``.  With `skip_failed_sources` (or a
        :class:`~repro.resilience.ResiliencePolicy` whose ``degrade``
        is on), a failing source is recorded rather than aborting the
        plan, and the result reports the partial answer per source.
        """
        with obs.span("mediator.correlate", seed_class=query.seed_class) as span:
            query_plan, context = planner_execute(
                self, query, skip_failed_sources=skip_failed_sources
            )
            span.set(
                answers=len(context.answers),
                skipped=len(context.errors),
            )
            return CorrelationResult(query_plan, context)

    def __repr__(self):
        return "Mediator(%r, sources=%r, views=%r)" % (
            self.name,
            self.source_names(),
            self.view_names(),
        )
