"""Query planning: the Section 5 multiple-worlds query plan.

The paper's running query — "What is the distribution of those
calcium-binding proteins that are found in neurons that receive signals
from parallel fibers in rat brains?" — is planned in four steps:

1. **push selections** (rat, parallel fiber) to the seed source and get
   bindings for the neuron/compartment pair (X, Y);
2. **select sources** that have data anchored for those concepts using
   the domain map's semantic index;
3. **push selections** given by the X, Y locations to each selected
   source and retrieve only the matching objects (e.g. proteins);
4. compute the **lub** of the locations as the distribution root and
   evaluate the distribution view via a **downward closure** along
   `has_a_star`.

:class:`CorrelationQuery` is the declarative form of such a query;
:func:`plan` turns it into inspectable :class:`PlanStep` objects and
:func:`execute` runs them against a mediator.  Pushes are validated
against the sources' declared binding patterns — a selection no pattern
covers raises :class:`~repro.errors.PlanningError` at *planning* time.
"""

from __future__ import annotations

import threading
from contextlib import nullcontext
from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..cache.fingerprint import plan_fingerprint
from ..errors import CapabilityError, PlanningError
from ..domainmap.graphops import lub
from ..parallel.executor import SingleFlight
from ..sources.wrapper import SourceQuery
from .aggregate import aggregate_over_dm


class CorrelationQuery:
    """A declarative multiple-worlds correlation query.

    Args:
        seed_class: the class the initial selections apply to (e.g.
            ``neurotransmission``).
        seed_selections: attribute -> value selections pushed to the
            seed source (e.g. organism=rat).
        anchor_attrs: attributes of seed rows whose values are DM
            concepts — the "semantic coordinates" (X, Y) joining the
            worlds (e.g. receiving_neuron, receiving_compartment).
        target_class: the class to retrieve from the selected sources
            (e.g. ``protein_amount``).
        target_anchor_attr: the target attribute carrying the anchor
            (e.g. ``location``): anchor concepts are translated back to
            source vocabulary and pushed as selections.
        target_filters: extra selections on the target class, applied
            mediator-side when the source's binding patterns cannot
            take them (e.g. ion_bound=calcium).
        group_attr / value_attr: the distribution grouping and value
            attributes (protein_name / amount).
        role / func: the DM relation to traverse and the aggregate.
        seed_source: optional explicit seed source name; inferred when
            exactly one registered source exports `seed_class`.
    """

    def __init__(
        self,
        seed_class,
        seed_selections,
        anchor_attrs,
        target_class,
        target_anchor_attr,
        group_attr,
        value_attr,
        target_filters=None,
        role="has",
        func="sum",
        seed_source=None,
    ):
        self.seed_class = seed_class
        self.seed_selections = dict(seed_selections)
        self.anchor_attrs = tuple(anchor_attrs)
        self.target_class = target_class
        self.target_anchor_attr = target_anchor_attr
        self.target_filters = dict(target_filters or {})
        self.group_attr = group_attr
        self.value_attr = value_attr
        self.role = role
        self.func = func
        self.seed_source = seed_source


class PlanStep:
    """One step of a query plan; subclasses implement `run`."""

    kind = "step"

    def describe(self):
        raise NotImplementedError

    def run(self, context):
        raise NotImplementedError

    def __repr__(self):
        return "<%s: %s>" % (self.kind, self.describe())


class PushSelectionStep(PlanStep):
    """Step 1/3: push bound selections to one source class."""

    kind = "push-selection"

    def __init__(self, source, class_name, selections, bind_attrs=()):
        self.source = source
        self.class_name = class_name
        self.selections = dict(selections)
        self.bind_attrs = tuple(bind_attrs)

    def describe(self):
        sel = ", ".join("%s=%r" % kv for kv in sorted(self.selections.items()))
        return "push {%s} to %s.%s" % (sel, self.source, self.class_name)

    def run(self, context):
        rows = context.source_query(
            self.source, SourceQuery(self.class_name, self.selections)
        )
        context.rows[(self.source, self.class_name)] = rows
        if self.bind_attrs:
            bindings = sorted(
                {
                    tuple(row[attr] for attr in self.bind_attrs)
                    for row in rows
                }
            )
            context.bindings[self.bind_attrs] = bindings
        return rows


class SelectSourcesStep(PlanStep):
    """Step 2: select sources via the domain map's semantic index."""

    kind = "select-sources"

    def __init__(self, concepts, target_class, exclude=()):
        self.concepts = tuple(concepts)
        self.target_class = target_class
        self.exclude = set(exclude)
        self.selected: List[str] = []

    def describe(self):
        return "select sources anchored at %s exporting %r" % (
            list(self.concepts),
            self.target_class,
        )

    def run(self, context):
        mediator = context.mediator
        candidates = set(
            mediator.index.sources_for_any(self.concepts)
        ) - self.exclude
        self.selected = sorted(
            source
            for source in candidates
            if self.target_class in mediator.wrapper(source).exports
        )
        context.selected_sources = list(self.selected)
        return self.selected


class RetrieveAnchoredStep(PlanStep):
    """Step 3: push anchor-derived selections to the selected sources."""

    kind = "retrieve"

    def __init__(self, target_class, anchor_attr, concepts, filters):
        self.target_class = target_class
        self.anchor_attr = anchor_attr
        self.concepts = tuple(concepts)
        self.filters = dict(filters)

    def describe(self):
        return "retrieve %r at %s from selected sources" % (
            self.target_class,
            list(self.concepts),
        )

    def run(self, context):
        from ..errors import SourceError, XMLTransportError

        sources = list(context.selected_sources)
        executor = context.parallel
        if executor is None or len(sources) <= 1:
            collected = []
            for source in sources:
                try:
                    collected.extend(self._retrieve_from(context, source))
                except (SourceError, XMLTransportError) as exc:
                    if not context.degrades_on_failure:
                        raise
                    context.record_skipped(source, exc)
            context.retrieved = collected
            return collected

        # medpar fan-out: one task per selected source, merged back in
        # source-name order (sources arrive sorted from step 2), so the
        # answer — and every trace built from it — is independent of
        # which worker finished first
        outcomes = executor.map_ordered(
            sources,
            lambda source: self._retrieve_from(context, source),
            kind="retrieve",
        )
        collected = []
        for source, outcome in zip(sources, outcomes):
            if outcome.ok:
                collected.extend(outcome.value)
                continue
            exc = outcome.error
            if not isinstance(exc, (SourceError, XMLTransportError)):
                raise exc
            if not context.degrades_on_failure:
                raise exc
            context.record_skipped(source, exc)
        context.retrieved = collected
        return collected

    def _retrieve_from(self, context, source):
        collected = []
        wrapper = context.mediator.wrapper(source)
        capability = wrapper.capabilities()[self.target_class]
        pushable, local_filters = capability.partition_selections(
            self.filters, always_bound=(self.anchor_attr,)
        )
        for concept in self.concepts:
            for raw_value in wrapper.selection_values_for_concept(
                self.target_class, self.anchor_attr, concept
            ):
                selections = {self.anchor_attr: raw_value}
                selections.update(pushable)
                rows = context.source_query(
                    source, SourceQuery(self.target_class, selections)
                )
                for row in rows:
                    if all(
                        row.get(attr) == value
                        for attr, value in local_filters.items()
                    ):
                        collected.append((source, row))
        return collected


class ComputeLubStep(PlanStep):
    """Step 4a: the distribution root as lub of the anchor concepts."""

    kind = "compute-lub"

    def __init__(self, concepts, order):
        self.concepts = tuple(concepts)
        self.order = order
        self.root: Optional[str] = None

    def describe(self):
        return "lub of %s in the %r order" % (list(self.concepts), self.order)

    def run(self, context):
        self.root = lub(context.mediator.dm, self.concepts, order=self.order)
        context.root = self.root
        return self.root


class AggregateStep(PlanStep):
    """Step 4b: downward closure + recursive aggregation below the root."""

    kind = "aggregate"

    def __init__(self, target_class, group_attr, value_attr, role, func):
        self.target_class = target_class
        self.group_attr = group_attr
        self.value_attr = value_attr
        self.role = role
        self.func = func

    def describe(self):
        return "aggregate %s(%s) by %s below the lub via %s" % (
            self.func,
            self.value_attr,
            self.group_attr,
            self.role,
        )

    def run(self, context):
        mediator = context.mediator
        facts = []
        groups = set()
        for source, row in context.retrieved:
            wrapper = mediator.wrapper(source)
            facts.extend(wrapper.lift_rows(self.target_class, [row]))
            groups.add(row[self.group_attr])
        # Aggregate over the retrieved objects only: evaluating against
        # the mediator's eagerly loaded data would undo the plan's
        # step-3 filtering (organism, ion, location bounds).
        store = mediator.evaluate_with(facts, include_data=False).store
        answers = []
        for group_value in sorted(groups, key=repr):
            distribution = aggregate_over_dm(
                mediator.dm,
                store,
                context.root,
                self.value_attr,
                role=self.role,
                func=self.func,
                group_attr=self.group_attr,
                group_value=group_value,
            )
            answers.append((group_value, distribution))
        context.answers = answers
        return answers


class PlanContext:
    """Mutable execution state threaded through the steps.

    With `skip_failed_sources`, retrieval errors from individual
    sources are recorded in `errors` instead of aborting the plan —
    the remaining sources still answer (partial results are the norm
    in federations of independently operated labs).  Skips are *not*
    silent: each one is kept in `errors`, mirrored on the active
    trace as a ``plan.source_skipped`` event, and summarized by
    :attr:`skipped_sources` / :attr:`degraded` / :meth:`failures` so
    callers can tell a complete answer from a partial one.
    """

    def __init__(
        self,
        mediator,
        skip_failed_sources=False,
        outcome_mark=None,
        call_memo=None,
    ):
        self.mediator = mediator
        self.rows: Dict = {}
        self.bindings: Dict = {}
        self.selected_sources: List[str] = []
        self.retrieved: List = []
        self.root: Optional[str] = None
        self.answers: List = []
        self.skip_failed_sources = skip_failed_sources
        self.errors: List = []
        #: within-plan memo of successful source calls, keyed by
        #: fingerprint — :func:`execute` shares one memo between the
        #: planning probe and the plan run, so identical calls inside
        #: one correlate() execute once (even with no cache configured)
        self.call_memo: Dict = {} if call_memo is None else call_memo
        #: the mediator's medpar executor (None = sequential plans)
        self.parallel = getattr(mediator, "parallel", None)
        self._memo_lock = threading.Lock()
        # coalesces concurrent identical source calls under fan-out:
        # N workers asking the same (source, query) make one wire call
        self._single_flight = SingleFlight()
        guard = mediator.resilience
        #: slice of the guard's outcome log belonging to this plan
        self._outcome_mark = (
            outcome_mark
            if outcome_mark is not None
            else (guard.mark() if guard is not None else 0)
        )

    def source_query(self, source, source_query):
        """One plan-scoped source call, deduplicated within the plan.

        A repeat of an already-answered call (same source, class,
        selections, projection) is served from the memo without
        touching the mediator — recorded as a ``cache.dedup`` event on
        the active plan step and the ``cache.dedup`` counter.  Under
        medpar fan-out, *concurrent* identical calls are coalesced
        onto one in-flight wire call (the waiters additionally count
        ``fanout.coalesced``).  Only successful calls are memoized;
        failures propagate and are retried per attempt as before.
        """
        key = plan_fingerprint(source, source_query)
        memo = self.call_memo
        with self._memo_lock:
            hit = key in memo  # empty row lists are valid answers
            if hit:
                rows = memo[key]
        if hit:
            self._record_dedup(source, source_query.class_name)
            return list(rows)

        def fetch():
            rows = self.mediator.source_query(source, source_query)
            with self._memo_lock:
                memo[key] = rows
            return rows

        if self.parallel is None:
            return fetch()

        def coalesced():
            self._record_dedup(source, source_query.class_name)
            obs.count("fanout.coalesced", source=source)

        return list(
            self._single_flight.run(key, fetch, on_coalesced=coalesced)
        )

    def _record_dedup(self, source, class_name):
        obs.event("cache.dedup", source=source, class_name=class_name)
        obs.count("cache.dedup", source=source)

    @property
    def degrades_on_failure(self):
        """Does a retrieval failure degrade the answer instead of
        aborting?  True under ``skip_failed_sources`` or a resilience
        policy with ``degrade`` on."""
        if self.skip_failed_sources:
            return True
        guard = self.mediator.resilience
        return guard is not None and guard.policy.degrade

    def record_skipped(self, source, exc):
        """Record one source skipped under `skip_failed_sources`."""
        self.errors.append((source, exc))
        obs.event(
            "plan.source_skipped",
            source=source,
            error=type(exc).__name__,
            message=str(exc),
        )
        obs.count("planner.sources_skipped")

    @property
    def skipped_sources(self):
        """Names of the sources skipped during execution (in order)."""
        return [source for source, _exc in self.errors]

    @property
    def degraded(self):
        """True when at least one selected source failed to answer (or
        was served stale / shed by its breaker) — `answers` may be
        missing or substituting that source's contribution."""
        if self.errors:
            return True
        guard = self.mediator.resilience
        if guard is None:
            return False
        return any(
            outcome.stale or outcome.status == "breaker-open"
            for outcome in guard.outcomes_since(self._outcome_mark)
        )

    def failures(self):
        """JSON-ready skip records: source, error class, message."""
        return [
            {
                "source": source,
                "error": type(exc).__name__,
                "message": str(exc),
            }
            for source, exc in self.errors
        ]

    def degraded_answer(self):
        """The structured :class:`~repro.resilience.DegradedAnswer`
        report of this plan execution: per source, what happened
        (skipped / retried / served-stale / breaker-open), attempt
        counts, and breaker state.  Works with or without a
        resilience policy."""
        from ..resilience.report import build_degraded_answer

        guard = self.mediator.resilience
        outcomes = (
            guard.outcomes_since(self._outcome_mark)
            if guard is not None
            else ()
        )
        return build_degraded_answer(outcomes, self.errors, guard=guard)


class QueryPlan:
    """An ordered, inspectable list of plan steps."""

    def __init__(self, steps):
        self.steps: List[PlanStep] = list(steps)

    @property
    def kinds(self):
        return [step.kind for step in self.steps]

    def describe(self):
        return "\n".join(
            "%d. [%s] %s" % (i + 1, step.kind, step.describe())
            for i, step in enumerate(self.steps)
        )

    def execute(
        self,
        mediator,
        skip_failed_sources=False,
        outcome_mark=None,
        call_memo=None,
    ):
        context = PlanContext(
            mediator,
            skip_failed_sources=skip_failed_sources,
            outcome_mark=outcome_mark,
            call_memo=call_memo,
        )
        guard = mediator.resilience
        scope = guard.plan_scope() if guard is not None else nullcontext()
        with scope:
            for index, step in enumerate(self.steps):
                with obs.span(
                    "plan.step",
                    index=index + 1,
                    kind=step.kind,
                    describe=step.describe(),
                ) as span:
                    output = step.run(context)
                    if span.enabled:
                        span.set(cardinality=_cardinality(output))
                        obs.count("planner.steps", kind=step.kind)
        return context


def _cardinality(output):
    """How many things a plan step produced (for EXPLAIN / spans)."""
    if output is None:
        return 0
    if isinstance(output, (list, tuple, set, dict)):
        return len(output)
    return 1


def plan(mediator, query, call_memo=None):
    """Plan a :class:`CorrelationQuery` (without executing it).

    Performs capability checks up front: the seed selections must be
    answerable by the seed source's binding patterns.  `call_memo`
    lets :func:`execute` share the planning probe's seed call with
    the plan run (within-plan dedup).
    """
    with obs.span(
        "plan.build",
        seed_class=query.seed_class,
        target_class=query.target_class,
    ):
        return _plan(mediator, query, call_memo)


def _plan(mediator, query, call_memo=None):
    seed_source = query.seed_source
    if seed_source is None:
        exporters = [
            name
            for name in mediator.source_names()
            if query.seed_class in mediator.wrapper(name).exports
        ]
        if len(exporters) != 1:
            raise PlanningError(
                "cannot infer seed source for class %r (exporters: %s)"
                % (query.seed_class, exporters)
            )
        seed_source = exporters[0]
    wrapper = mediator.wrapper(seed_source)
    capability = wrapper.capabilities().get(query.seed_class)
    if capability is None:
        raise PlanningError(
            "source %r does not export seed class %r"
            % (seed_source, query.seed_class)
        )
    try:
        capability.require_answerable(query.seed_selections)
    except CapabilityError as exc:
        raise PlanningError(str(exc)) from exc

    # Anchor concepts are only known after step 1 runs; the plan wires
    # the steps so later ones read the context.  For inspectability we
    # run step 1 eagerly here (the paper's planner also needs the X, Y
    # bindings before source selection).
    step1 = PushSelectionStep(
        seed_source, query.seed_class, query.seed_selections, query.anchor_attrs
    )
    probe_context = PlanContext(mediator, call_memo=call_memo)
    step1.run(probe_context)
    concept_pairs = probe_context.bindings.get(query.anchor_attrs, [])
    concepts = sorted({c for pair in concept_pairs for c in pair if c})
    for concept in concepts:
        mediator.dm.require_concept(concept)

    step2 = SelectSourcesStep(concepts, query.target_class, exclude={seed_source})
    step3 = RetrieveAnchoredStep(
        query.target_class,
        query.target_anchor_attr,
        concepts,
        query.target_filters,
    )
    step4a = ComputeLubStep(concepts, order=query.role)
    step4b = AggregateStep(
        query.target_class,
        query.group_attr,
        query.value_attr,
        query.role,
        query.func,
    )
    return QueryPlan([step1, step2, step3, step4a, step4b])


def execute(mediator, query, skip_failed_sources=False):
    """Plan and execute; returns (plan, context).

    With `skip_failed_sources` (or a resilience policy that degrades),
    a source failing during retrieval is recorded in
    ``context.errors`` and the plan continues with the remaining
    sources.  The whole run — the planning probe included — shares one
    resilience deadline budget, outcome-log slice, and within-plan
    call memo (so the probe's seed query is not re-issued by step 1).
    """
    guard = mediator.resilience
    mark = guard.mark() if guard is not None else None
    scope = guard.plan_scope() if guard is not None else nullcontext()
    call_memo: Dict = {}
    with scope:
        query_plan = plan(mediator, query, call_memo=call_memo)
        context = query_plan.execute(
            mediator,
            skip_failed_sources=skip_failed_sources,
            outcome_mark=mark,
            call_memo=call_memo,
        )
    return query_plan, context


class CorrelationResult(tuple):
    """The result of :meth:`Mediator.correlate`: an unpackable
    ``(plan, context)`` pair that *also* surfaces degradation directly,
    so callers can detect a partial answer without re-running the
    query through ``explain()``::

        result = mediator.correlate(query, skip_failed_sources=True)
        plan, context = result            # tuple compatibility
        if result.degraded:
            print(result.degraded_answer().format())
    """

    __slots__ = ()

    def __new__(cls, query_plan, context):
        return super().__new__(cls, (query_plan, context))

    @property
    def plan(self):
        return self[0]

    @property
    def context(self):
        return self[1]

    @property
    def answers(self):
        """(group value, Distribution) pairs — the paper's answer(P, D)."""
        return self[1].answers

    @property
    def degraded(self):
        """True when the answer may be missing a source's contribution."""
        return self[1].degraded

    @property
    def skipped_sources(self):
        return self[1].skipped_sources

    def failures(self):
        return self[1].failures()

    def degraded_answer(self):
        """The per-source :class:`~repro.resilience.DegradedAnswer`."""
        return self[1].degraded_answer()

    def __repr__(self):
        return "CorrelationResult(answers=%d, degraded=%r)" % (
            len(self.answers),
            self.degraded,
        )


class QueryExplain:
    """EXPLAIN output for a correlation query: the executed plan
    annotated with per-step wall time and cardinality, the skip
    records, and the trace metrics of the run.

    Returned by :meth:`Mediator.explain` when handed a
    :class:`CorrelationQuery`; render with :meth:`format` or export
    with :meth:`as_dict`.
    """

    def __init__(self, query_plan, context, steps, metrics):
        self.plan = query_plan
        self.context = context
        #: list of dicts: index, kind, describe, seconds, cardinality,
        #: events (plan.source_skipped skips plus cache.dedup /
        #: cache.hit markers, each tagged with an ``event`` key)
        self.steps = steps
        self.metrics = metrics

    def format(self, mask_timings=False):
        """Human-readable EXPLAIN block (deterministic when timings
        are masked)."""
        lines = ["EXPLAIN correlation plan (%d steps)" % len(self.steps)]
        for step in self.steps:
            if mask_timings or step["seconds"] is None:
                timing = "      --"
            else:
                timing = "%7.2fms" % (step["seconds"] * 1000.0)
            lines.append(
                "%d. [%s] %s" % (step["index"], step["kind"], step["describe"])
            )
            lines.append(
                "     time=%s  cardinality=%s" % (timing.strip(), step["cardinality"])
            )
            for event in step["events"]:
                name = event.get("event", "plan.source_skipped")
                if name == "plan.source_skipped":
                    lines.append(
                        "     ! %s: %s (%s)"
                        % (event["source"], event["error"], event["message"])
                    )
                else:  # cache.dedup / cache.hit markers
                    lines.append(
                        "     ! %s %s.%s"
                        % (name, event["source"], event["class_name"])
                    )
        if self.context.degraded:
            lines.append(
                "degraded answer: skipped sources %s"
                % self.context.skipped_sources
            )
            lines.extend(self.degraded_answer().format().splitlines())
        from ..obs.render import render_metrics

        lines.extend(render_metrics(self.metrics))
        return "\n".join(lines)

    def as_dict(self, mask_timings=False):
        steps = []
        for step in self.steps:
            exported = dict(step)
            if mask_timings:
                exported["seconds"] = None
            steps.append(exported)
        return {
            "steps": steps,
            "degraded": self.context.degraded,
            "skipped_sources": self.context.skipped_sources,
            "failures": self.context.failures(),
            "degraded_answer": self.degraded_answer().as_dict(),
            "metrics": self.metrics.as_dict(),
        }

    def degraded_answer(self):
        """The per-source :class:`~repro.resilience.DegradedAnswer`
        for this run (the degraded-answer contract)."""
        return self.context.degraded_answer()

    def __repr__(self):
        return "QueryExplain(steps=%d, degraded=%r)" % (
            len(self.steps),
            self.context.degraded,
        )


#: span events surfaced per step in QueryExplain: skips (degradation)
#: and the medcache dedup/hit markers
_EXPLAIN_EVENTS = ("plan.source_skipped", "cache.dedup", "cache.hit")


def explain(mediator, query, skip_failed_sources=False):
    """Plan *and execute* `query` under a private tracer; returns a
    :class:`QueryExplain` with per-step timings and cardinalities.

    Like SQL ``EXPLAIN ANALYZE``, this runs the query: cardinalities
    and timings are measured, not estimated.
    """
    guard = mediator.resilience
    mark = guard.mark() if guard is not None else None
    scope = guard.plan_scope() if guard is not None else nullcontext()
    call_memo: Dict = {}
    with obs.capture("explain") as tracer:
        with scope:
            query_plan = plan(mediator, query, call_memo=call_memo)
            context = query_plan.execute(
                mediator,
                skip_failed_sources=skip_failed_sources,
                outcome_mark=mark,
                call_memo=call_memo,
            )
    steps = []
    for span in tracer.find_spans("plan.step"):
        steps.append(
            {
                "index": span.attrs["index"],
                "kind": span.attrs["kind"],
                "describe": span.attrs["describe"],
                "seconds": span.duration(),
                "cardinality": span.attrs.get("cardinality"),
                "events": [
                    dict(event.attrs, event=event.name)
                    for event in span.events
                    if event.name in _EXPLAIN_EVENTS
                ],
            }
        )
    return QueryExplain(query_plan, context, steps, tracer.metrics)
