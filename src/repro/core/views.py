"""Integrated view definitions (IVDs).

The mediation engineer defines global views in the GAV style, "not only
over classes from information sources, but over a combination of
information sources and the domain map" (Section 4).  Two flavours:

* :class:`IntegratedView` — plain F-logic rules over registered CMs and
  DM relations (loose federation and rule-definable views).
* :class:`DistributionView` — Example 4's ``protein_distribution``
  pattern: a mediated class whose instances carry a *distribution*
  computed by the recursive `aggregate` builtin over the domain map.
  The view declares which source class supplies the values, which
  attributes name the group (protein) and the value (amount), and which
  DM role to traverse; the mediator materializes instances on demand.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import ViewError
from ..datalog.ast import Atom, Rule
from ..datalog.terms import Const, Struct


class IntegratedView:
    """A GAV view defined by F-logic rules at the mediator."""

    def __init__(self, name, fl_rules, description="", depends_on=()):
        self.name = name
        self.fl_rules = fl_rules
        self.description = description
        self.depends_on = tuple(depends_on)

    def datalog_rules(self, traced=False):
        """The view's F-logic rules parsed and translated to Datalog.

        One definition shared by the mediator (``add_view``), the
        medlint capability pass, and medcache's materializer.  With
        ``traced=True`` the parse/translate phases are wrapped in the
        same obs spans ``Mediator.add_view`` historically emitted.
        """
        from ..flogic.parser import parse_fl_program
        from ..flogic.translate import Translator

        if not traced:
            return list(
                Translator().translate_rules(parse_fl_program(self.fl_rules))
            )
        from .. import obs

        with obs.span("flogic.parse", chars=len(self.fl_rules)):
            fl_rules = parse_fl_program(self.fl_rules)
        with obs.span("flogic.translate", fl_rules=len(fl_rules)):
            return list(Translator().translate_rules(fl_rules))

    def __repr__(self):
        return "IntegratedView(%r)" % self.name


class DistributionView:
    """Example 4's mediated class: a distribution over the domain map.

    Attributes mirror the paper's frame::

        D : protein_distribution[protein_name -> Y; animal -> Z;
                                 distribution_root -> P; distribution -> D]

    `source_class` objects anchored at DM concepts supply `value_attr`
    numbers, grouped by `group_attr`; the mediator's aggregate builtin
    traverses `role` (has_a_star) below a chosen root.
    """

    def __init__(
        self,
        name,
        source_class,
        group_attr,
        value_attr,
        role="has",
        func="sum",
        description="",
    ):
        self.name = name
        self.source_class = source_class
        self.group_attr = group_attr
        self.value_attr = value_attr
        self.role = role
        self.func = func
        self.description = description

    def instance_id(self, group_value, root):
        """The object identifier of one materialized view instance."""
        return Struct(
            self.name, (Const(str(group_value)), Const(root))
        )

    def materialize_facts(self, group_value, root, distribution, extra=None):
        """GCM facts representing one materialized view instance.

        Emits the frame values plus one ``dist_row(D, concept, direct,
        cumulative)`` fact per region of the distribution, so the
        result is queryable from F-logic.
        """
        obj = self.instance_id(group_value, root)
        facts: List[Rule] = [
            Rule(Atom("instance", (obj, Const(self.name)))),
            Rule(
                Atom(
                    "method_inst",
                    (obj, Const(self.group_attr), Const(group_value)),
                )
            ),
            Rule(
                Atom(
                    "method_inst",
                    (obj, Const("distribution_root"), Const(root)),
                )
            ),
        ]
        for key, value in (extra or {}).items():
            facts.append(
                Rule(Atom("method_inst", (obj, Const(key), Const(value))))
            )
        for row in distribution.rows:
            if row.cumulative is None:
                continue
            facts.append(
                Rule(
                    Atom(
                        "dist_row",
                        (
                            obj,
                            Const(row.concept),
                            Const(row.direct if row.direct is not None else 0),
                            Const(row.cumulative),
                        ),
                    )
                )
            )
        return facts

    def __repr__(self):
        return "DistributionView(%r over %r)" % (self.name, self.source_class)
