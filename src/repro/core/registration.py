"""The registration protocol: sources joining the mediated system.

"At runtime, a wrapped source S can join the mediated system by
registering its conceptual model CM(S) with the mediator M.  This
requires that S sends the mediator descriptions of the exported class
schemas, relationship schemas, and semantic rules ... Apart from this
schema level information, S also transmits a description of its query
capabilities" (Section 2).  Registration may also refine the domain
map (Figure 3) and anchor the source's classes in it.

Everything crosses the wire as XML.  :func:`build_registration`
assembles the message from a wrapper; :func:`parse_registration`
decodes it on the mediator side.  (In-process mediation keeps a handle
to the wrapper object for query pushdown — the XML round trip is the
fidelity guarantee that *all* schema-level information survives the
wire, which the Figure 2 benchmark exercises.)
"""

from __future__ import annotations

import xml.etree.ElementTree as ET
from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import RegistrationError, XMLTransportError
from ..datalog.ast import Atom, Rule
from ..datalog.parser import parse_program
from ..datalog.terms import Const
from ..sources.capabilities import BindingPattern, ClassCapability, QueryTemplate
from ..xmlio.doc import element_value, parse_xml, serialize, value_element
from ..xmlio.gcm_xml import cm_from_element, cm_to_element


class ParsedRegistration:
    """The mediator-side decoding of a registration message."""

    def __init__(self, source, cm, capabilities, anchors, refinement, facts):
        self.source = source
        self.cm = cm
        self.capabilities: Dict[str, ClassCapability] = capabilities
        self.anchors: List[Tuple[str, str, Optional[str]]] = anchors
        self.refinement: Optional[str] = refinement
        self.facts: List[Rule] = facts

    def __repr__(self):
        return "ParsedRegistration(%r, classes=%d, anchors=%d, facts=%d)" % (
            self.source,
            len(self.capabilities),
            len(self.anchors),
            len(self.facts),
        )


def build_registration(wrapper, include_data=False, dm_refinement=None):
    """Build the XML registration message for a wrapper.

    Args:
        include_data: also ship the lifted instance data (eager mode).
        dm_refinement: DL axiom text refining the mediator's domain map
            (the Figure 3 ``MyNeuron``/``MyDendrite`` mechanism).
    """
    root = ET.Element("register", {"source": wrapper.name})
    root.append(cm_to_element(wrapper.schema_cm()))

    caps_el = ET.SubElement(root, "capabilities")
    for class_name in sorted(wrapper.capabilities()):
        capability = wrapper.capabilities()[class_name]
        class_el = ET.SubElement(
            caps_el,
            "class",
            {
                "name": class_name,
                "scannable": "true" if capability.scannable else "false",
                "attributes": ",".join(capability.attributes),
            },
        )
        if capability.key is not None:
            class_el.set("key", str(capability.key))
        for pattern in capability.binding_patterns:
            pattern_el = ET.SubElement(class_el, "pattern")
            pattern_el.text = pattern.pattern
        for template_name in sorted(capability.templates):
            template = capability.templates[template_name]
            attrs = {
                "name": template.name,
                "params": ",".join(template.parameters),
            }
            if template.description:
                attrs["description"] = template.description
            ET.SubElement(class_el, "template", attrs)

    anchors_el = ET.SubElement(root, "anchors")
    for class_name, concept, context in wrapper.anchors():
        attrs = {"class": class_name, "concept": concept}
        if context:
            attrs["context"] = context
        ET.SubElement(anchors_el, "anchor", attrs)

    if dm_refinement:
        refinement_el = ET.SubElement(root, "dm-refinement")
        refinement_el.text = dm_refinement

    if include_data:
        data_el = ET.SubElement(root, "facts")
        for fact in wrapper.export_all_facts():
            atom = fact.head
            if all(
                isinstance(arg, Const)
                and isinstance(arg.value, (str, int, float, bool))
                for arg in atom.args
            ):
                # typed argument encoding: booleans/numbers survive the
                # wire exactly (Datalog text would reparse `True` as a
                # variable)
                fact_el = ET.SubElement(data_el, "fact", {"pred": atom.pred})
                for arg in atom.args:
                    fact_el.append(value_element("arg", arg.value))
            else:  # structured terms: fall back to parseable text
                fact_el = ET.SubElement(data_el, "fact")
                fact_el.text = str(fact)
    return serialize(root)


def parse_registration(text):
    """Decode a registration message into a :class:`ParsedRegistration`."""
    root = parse_xml(text)
    if root.tag != "register":
        raise RegistrationError(
            "expected <register> message, found <%s>" % root.tag
        )
    source = root.get("source")
    if not source:
        raise RegistrationError("<register> requires a source attribute")

    cm_el = root.find("cm")
    if cm_el is None:
        raise RegistrationError("registration from %r has no <cm>" % source)
    cm = cm_from_element(cm_el)

    capabilities: Dict[str, ClassCapability] = {}
    caps_el = root.find("capabilities")
    if caps_el is None:
        # every wrapper "transmits a description of its query
        # capabilities" (Section 2); a message without the section is
        # truncated or corrupted, not a capability-free source
        raise XMLTransportError(
            "registration from %r has no <capabilities> section" % source
        )
    for class_el in caps_el.findall("class"):
        class_name = class_el.get("name")
        attributes = [
            a for a in (class_el.get("attributes") or "").split(",") if a
        ]
        capability = ClassCapability(
            class_name,
            attributes,
            key=class_el.get("key"),
            scannable=class_el.get("scannable") != "false",
        )
        for pattern_el in class_el.findall("pattern"):
            capability.binding_patterns.append(
                BindingPattern(attributes, pattern_el.text or "")
            )
        for template_el in class_el.findall("template"):
            params = [
                p
                for p in (template_el.get("params") or "").split(",")
                if p
            ]
            capability.add_template(
                QueryTemplate(
                    template_el.get("name"),
                    params,
                    template_el.get("description", ""),
                )
            )
        capabilities[class_name] = capability

    anchors: List[Tuple[str, str, Optional[str]]] = []
    anchors_el = root.find("anchors")
    if anchors_el is not None:
        for anchor_el in anchors_el.findall("anchor"):
            anchors.append(
                (
                    anchor_el.get("class"),
                    anchor_el.get("concept"),
                    anchor_el.get("context"),
                )
            )

    refinement_el = root.find("dm-refinement")
    refinement = refinement_el.text if refinement_el is not None else None

    facts: List[Rule] = []
    data_el = root.find("facts")
    if data_el is not None:
        for fact_el in data_el.findall("fact"):
            pred = fact_el.get("pred")
            if pred:
                args = tuple(
                    Const(element_value(arg_el))
                    for arg_el in fact_el.findall("arg")
                )
                facts.append(Rule(Atom(pred, args)))
            else:
                facts.extend(parse_program(fact_el.text or ""))

    return ParsedRegistration(source, cm, capabilities, anchors, refinement, facts)
