"""The mediator's recursive `aggregate` function (Example 4).

"The function aggregate recursively traverses a binary relation R
(here: has_a_star) starting from node P, and computes the aggregate of
the specified attribute at each level of the relation."

Given the mediated object base (an evaluated fact store), a domain map
and a root concept, :func:`aggregate_over_dm` walks the direct
`has_a_star` links below the root and, per concept, combines

* the *direct* values: ``method_val(obj, value_attr, V)`` of objects
  anchored at that concept (optionally filtered by a grouping value,
  e.g. one protein name), and
* the aggregates of its children,

into a cumulative value.  The result is a :class:`Distribution` — the
paper's ``protein_distribution`` payload: one row per region reachable
from the distribution root.

Aggregation through recursion is not expressible in stratified Datalog
(and the paper's FLORA treats `aggregate` as a builtin), so this is a
mediator-side builtin here too.
"""

from __future__ import annotations

from typing import Callable, Dict, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import MediatorError
from ..datalog.terms import Const
from ..domainmap.graphops import part_tree

AGG_FUNCS: Dict[str, Callable] = {
    "sum": sum,
    "count": len,
    "min": min,
    "max": max,
    "avg": lambda values: sum(values) / len(values),
}


class DistributionRow:
    """One region of a distribution."""

    __slots__ = ("concept", "depth", "direct_values", "direct", "cumulative")

    def __init__(self, concept, depth, direct_values, direct, cumulative):
        self.concept = concept
        self.depth = depth
        self.direct_values = tuple(direct_values)
        self.direct = direct
        self.cumulative = cumulative

    def __repr__(self):
        return "DistributionRow(%r, depth=%d, direct=%r, cumulative=%r)" % (
            self.concept,
            self.depth,
            self.direct,
            self.cumulative,
        )


class Distribution:
    """A per-region aggregate below a distribution root."""

    def __init__(self, root, role, func, rows):
        self.root = root
        self.role = role
        self.func = func
        self.rows: List[DistributionRow] = rows

    def row(self, concept):
        for row in self.rows:
            if row.concept == concept:
                return row
        return None

    def nonzero_rows(self):
        return [row for row in self.rows if row.direct_values or row.cumulative]

    def total(self):
        """The cumulative value at the root."""
        root_row = self.row(self.root)
        return root_row.cumulative if root_row else None

    def as_table(self):
        """(concept, depth, direct, cumulative) tuples, root first,
        then breadth-first by depth and name."""
        return [
            (row.concept, row.depth, row.direct, row.cumulative)
            for row in self.rows
        ]

    def __len__(self):
        return len(self.rows)

    def __str__(self):
        lines = [
            "distribution of %s below %s (via %s)" % (self.func, self.root, self.role)
        ]
        for row in self.rows:
            lines.append(
                "  %s%-32s direct=%s cumulative=%s"
                % ("  " * row.depth, row.concept, row.direct, row.cumulative)
            )
        return "\n".join(lines)


def direct_values_at(store, concept, value_attr, filters=None):
    """Values of `value_attr` on objects *anchored* at `concept`.

    Reads the stated ``anchor(obj, concept)`` relation (emitted by
    wrapper lifting), not the subclass-closed `instance` relation: an
    object counts exactly once, at its semantic coordinates — otherwise
    every measurement would be re-counted at each superconcept.

    `filters` restricts contributing objects to those whose attributes
    hold the given values (e.g. one protein name, one organism).
    """
    concept_const = Const(concept)
    objects = {
        args[0] for args in store.rows(("anchor", 2)) if args[1] == concept_const
    }
    if not objects:
        return []
    method_rows = store.rows(("method_val", 3))
    for filter_attr, filter_value in (filters or {}).items():
        attr_const, value_const = Const(filter_attr), Const(filter_value)
        objects &= {
            row[0]
            for row in method_rows
            if row[1] == attr_const and row[2] == value_const
        }
        if not objects:
            return []
    attr_const = Const(value_attr)
    values = [
        row[2].value
        for row in method_rows
        if row[1] == attr_const and row[0] in objects and isinstance(row[2], Const)
    ]
    return sorted(values, key=repr)


def aggregate_over_dm(
    dm,
    store,
    root,
    value_attr,
    role="has",
    func="sum",
    group_attr=None,
    group_value=None,
    filters=None,
    include_isa=True,
):
    """Example 4's ``aggregate(Y, attr, R, P, D)`` builtin.

    Args:
        dm: the domain map supplying `has_a_star`.
        store: the evaluated mediated object base (with `instance` and
            `method_val` facts, e.g. from :meth:`Mediator.evaluate`).
        root: distribution root concept P.
        value_attr: the attribute whose values are aggregated.
        role: the binary relation R to traverse (default has_a_star).
        func: sum / count / min / max / avg.
        group_attr, group_value: optional filter (the Y of Example 4,
            e.g. protein_name = "Ryanodine Receptor").
        filters: further attribute filters (e.g. organism = "rat" — the
            Z of Example 4).

    Returns a :class:`Distribution` whose cumulative values combine each
    region's direct values with all its sub-regions' values; regions
    with no values anywhere below them report ``direct=None,
    cumulative=None`` rather than a fabricated zero.
    """
    if func not in AGG_FUNCS:
        raise MediatorError("unknown aggregate function %r" % func)
    tree = part_tree(dm, root, role, include_isa=include_isa)
    depths = {root: 0}
    for node in nx.bfs_tree(tree, root).nodes:
        if node != root:
            depths[node] = min(
                depths.get(parent, 0) + 1 for parent in tree.predecessors(node)
                if parent in depths
            )

    combined_filters = dict(filters or {})
    if group_attr is not None:
        combined_filters[group_attr] = group_value
    direct: Dict[str, List] = {}
    for concept in tree.nodes:
        direct[concept] = direct_values_at(
            store, concept, value_attr, combined_filters
        )

    # Cumulative = direct values over the region itself plus all regions
    # below it.  Working with the *set* of contributing concepts (rather
    # than concatenating child lists) keeps diamonds in the part DAG
    # from double-counting shared sub-regions.
    rows = []
    bfs_nodes = sorted(
        tree.nodes, key=lambda n: (depths.get(n, 10**6), n)
    )
    for concept in bfs_nodes:
        direct_vals = direct.get(concept, [])
        region = {concept} | nx.descendants(tree, concept)
        all_vals = [
            value for member in sorted(region) for value in direct.get(member, [])
        ]
        agg = AGG_FUNCS[func]
        rows.append(
            DistributionRow(
                concept,
                depths.get(concept, 0),
                direct_vals,
                agg(direct_vals) if direct_vals else None,
                agg(all_vals) if all_vals else None,
            )
        )
    return Distribution(root, role, func, rows)
