"""Navigation-driven (lazy) query evaluation.

Eager registration loads every source's data into the mediator; real
mediators fetch on demand (cf. the paper's companion work on
navigation-driven evaluation of virtual mediated views [LPV00]).
:func:`ask_lazy` answers an F-logic query against a mediator whose
sources registered with ``eager=False``:

1. parse the query and collect the **referenced classes**: molecule
   tags naming source classes, DM concepts (resolved to anchored
   source classes through the semantic index), and classes reachable
   through view definitions (`depends_on`);
2. for each (source, class), derive **pushable selections** from the
   query's ground frame values, validated against the source's binding
   patterns (unsupported selections are simply evaluated mediator-side
   after a scan);
3. fetch + lift exactly those rows and evaluate the query over them.

The result is answer-equivalent to eager evaluation (tested) while
contacting only relevant sources and pushing selections down.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.terms import Const, Var
from ..errors import MediatorError
from ..flogic.ast import FLAggregate, FLNegation, FLPredicate, Molecule
from ..flogic.parser import parse_fl_body, parse_fl_program
from ..sources.wrapper import SourceQuery
from .views import DistributionView, IntegratedView


def _collect_molecules(items):
    for item in items:
        if isinstance(item, Molecule):
            yield item
        elif isinstance(item, FLNegation):
            yield from _collect_molecules(item.items)
        elif isinstance(item, FLAggregate):
            yield from _collect_molecules(item.body)


def referenced_class_names(fl_items):
    """Constant class names used as `:` tags in the query."""
    names: Set[str] = set()
    for molecule in _collect_molecules(fl_items):
        if molecule.tag_kind == ":" and isinstance(molecule.tag, Const):
            value = molecule.tag.value
            if isinstance(value, str):
                names.add(value)
    return names


def ground_selections(fl_items, class_name):
    """attr -> value selections derivable from the query's frames on
    molecules tagged with `class_name`."""
    selections: Dict[str, object] = {}
    for molecule in _collect_molecules(fl_items):
        if not (
            molecule.tag_kind == ":"
            and isinstance(molecule.tag, Const)
            and molecule.tag.value == class_name
        ):
            continue
        for spec in molecule.specs:
            if spec.arrow not in ("->", "->>"):
                continue
            if not isinstance(spec.method, Const):
                continue
            ground_values = [v for v in spec.values if isinstance(v, Const)]
            if len(ground_values) == 1 and len(spec.values) == 1:
                selections[str(spec.method.value)] = ground_values[0].value
    return selections


def _expand_through_views(mediator, names):
    """Add classes reachable through view definitions."""
    expanded = set(names)
    changed = True
    while changed:
        changed = False
        for view_name in mediator.view_names():
            view = mediator.view(view_name)
            if view_name not in expanded:
                continue
            deps: Set[str] = set()
            if isinstance(view, IntegratedView):
                deps |= set(view.depends_on)
                for rule in parse_fl_program(view.fl_rules):
                    deps |= referenced_class_names(rule.body)
            elif isinstance(view, DistributionView):
                deps.add(view.source_class)
            new = deps - expanded
            if new:
                expanded |= new
                changed = True
    return expanded


def plan_fetches(mediator, fl_items):
    """Which (source, class, selections) to fetch for a query."""
    names = _expand_through_views(mediator, referenced_class_names(fl_items))
    fetches: List[Tuple[str, str, Dict]] = []
    seen: Set[Tuple[str, str]] = set()

    def add(source, class_name):
        if (source, class_name) in seen:
            return
        seen.add((source, class_name))
        wrapper = mediator.wrapper(source)
        selections = ground_selections(fl_items, class_name)
        capability = wrapper.capabilities().get(class_name)
        pushable = {}
        if capability is not None:
            for attr, value in selections.items():
                if attr in capability.attributes and capability.answerable(
                    {attr: value}
                ):
                    pushable[attr] = value
        fetches.append((source, class_name, pushable))

    for name in sorted(names):
        # direct source classes
        for source in mediator.source_names():
            if name in mediator.wrapper(source).exports:
                add(source, name)
        # DM concepts: anchored source classes
        if mediator.dm.has_concept(name):
            for anchor in mediator.index.anchors_at(name):
                if anchor.class_name in mediator.wrapper(anchor.source).exports:
                    add(anchor.source, anchor.class_name)
    return fetches


def ask_lazy(mediator, fl_query):
    """Answer `fl_query` by fetching only the data it references.

    Returns (answers, fetches) where `fetches` lists the
    (source, class, pushed-selections) triples that were contacted.
    """
    fl_items = parse_fl_body(fl_query)
    fetches = plan_fetches(mediator, fl_items)
    facts = []
    for source, class_name, selections in fetches:
        wrapper = mediator.wrapper(source)
        rows = mediator.source_query(source, SourceQuery(class_name, selections))
        facts.extend(wrapper.lift_rows(class_name, rows))

    from ..flogic.engine import FLogicEngine

    engine = FLogicEngine()
    engine.tell_rules(mediator.assembled_rules())
    engine.tell_rules(facts)
    answers = engine.ask(fl_query)
    return answers, fetches
