"""The model-based mediator: the paper's primary contribution.

Ties the stack together — domain map + semantic index, source
registration over the XML wire, integrated view definitions, the
recursive `aggregate` builtin, and the Section 5 correlation query
planner.

Quick use::

    from repro.core import Mediator, CorrelationQuery
    from repro.domainmap import DomainMap

    mediator = Mediator(DomainMap("anatom"))
    mediator.register(my_wrapper)
    mediator.ask("X : 'Purkinje_Cell'")
"""

from .aggregate import (
    AGG_FUNCS,
    Distribution,
    DistributionRow,
    aggregate_over_dm,
    direct_values_at,
)
from .lazy import ask_lazy, plan_fetches, referenced_class_names
from .mediator import Mediator, RegisteredSource
from .planner import (
    AggregateStep,
    ComputeLubStep,
    CorrelationQuery,
    PlanContext,
    PlanStep,
    PushSelectionStep,
    QueryPlan,
    RetrieveAnchoredStep,
    SelectSourcesStep,
    execute,
    plan,
)
from .registration import (
    ParsedRegistration,
    build_registration,
    parse_registration,
)
from .views import DistributionView, IntegratedView

__all__ = [
    "AGG_FUNCS",
    "AggregateStep",
    "ComputeLubStep",
    "CorrelationQuery",
    "Distribution",
    "DistributionRow",
    "DistributionView",
    "IntegratedView",
    "Mediator",
    "ParsedRegistration",
    "PlanContext",
    "PlanStep",
    "PushSelectionStep",
    "QueryPlan",
    "RegisteredSource",
    "RetrieveAnchoredStep",
    "SelectSourcesStep",
    "aggregate_over_dm",
    "ask_lazy",
    "build_registration",
    "direct_values_at",
    "execute",
    "parse_registration",
    "plan",
    "plan_fetches",
    "referenced_class_names",
]
