"""``python -m repro`` — the command-line front end.

Three subcommands:

* ``demo`` (the default) — a compact live demo of the mediated system:
  builds the KIND scenario (including the ANATOM atlas source with its
  domain-map refinement), runs the paper's Section 5 query, and prints
  a provenance trace for one mediated fact; ``--trace`` appends the
  medtrace span tree, ``--trace-json PATH`` writes the JSON document,
  and ``--parallel N`` runs the plan under medpar fan-out;
* ``lint`` — medlint, the whole-deployment static analyzer: lints the
  deployments built by the given Python scripts (or the shipped KIND
  scenario when no target is given) and exits non-zero if any
  error-severity diagnostic is reported;
* ``trace`` — medtrace: runs the given deployment scripts (or the
  shipped KIND scenario plus its Section 5 query) under an installed
  tracer and prints the span tree and metrics (``--json`` for the
  machine-readable document, ``--why FACT`` for a stratum/round-
  annotated derivation tree of one mediated fact);
* ``chaos`` — medguard: deterministic fault-injection runs.  With no
  target, the Section 5 scenario runs over the XML wire while a seeded
  schedule injects a transient fault and kills the retrieval source
  mid-plan; the run must yield a *degraded* answer satisfying the
  degraded-answer contract, byte-identically across reruns of the same
  seed (and, with ``--parallel N``, byte-identically to the sequential
  run).  With targets, each deployment script runs with every wrapper
  misbehaving on a seeded recoverable schedule and must still
  complete, all raising faults absorbed by the resilience layer;
* ``cache`` — medcache: ``stats`` prints the deterministic cache
  counters of a cold+warm Section 5 double run, ``warm``/``clear``
  demonstrate priming and flushing, and ``verify`` checks the
  cache-correctness contract (second run byte-identical with zero
  query wire bytes) on the scenario or on deployment scripts.
"""

from __future__ import annotations

import argparse
import contextlib
import io
import json
import sys


def demo(args=None):
    from repro import obs
    from repro.neuro import build_scenario, section5_query

    tracing = args is not None and (args.trace or args.trace_json)
    parallel = getattr(args, "parallel", None)
    tracer = obs.install(obs.Tracer("repro-demo")) if tracing else None
    try:
        print("repro: Model-Based Mediation with Domain Maps (ICDE 2001)")
        print("=" * 64)

        scenario = build_scenario(
            include_anatom_source=True, parallel=parallel
        )
        mediator = scenario.mediator
        print("sources registered over the XML wire:")
        for message, size in mediator.wire_log:
            print("  %-24s %7d bytes" % (message, size))
        print(
            "domain map: %d concepts (incl. %s from ANATOM's refinement)"
            % (
                len(mediator.dm.concepts),
                ", ".join(
                    c for c in ("Basket_Cell", "Stellate_Cell", "Golgi_Cell")
                    if c in mediator.dm.concepts
                ),
            )
        )

        print("\nSection 5 query: calcium-binding proteins in neurons")
        print("receiving signals from parallel fibers in rat brains")
        plan, context = mediator.correlate(section5_query())
        print(plan.describe())
        print("\nanswers (protein, cumulative amount below %s):" % context.root)
        for protein, distribution in context.answers:
            print("  %-22s %8.3f" % (protein, distribution.total()))

        obj = sorted(
            row["X"]
            for row in mediator.ask("X : 'Compartment'")
            if str(row["X"]).startswith("NCMIR")
        )[0]
        print("\nwhy is %s a Compartment?" % obj)
        print(mediator.explain("'%s' : 'Compartment'" % obj).format(indent=1))
    finally:
        if tracing:
            obs.uninstall()
    if tracer is not None:
        if args.trace:
            print("\n" + obs.render_tree(tracer))
        if args.trace_json:
            with open(args.trace_json, "w") as handle:
                handle.write(obs.to_json(tracer) + "\n")
            print("\ntrace written to %s" % args.trace_json)
    return 0


def lint(args):
    from repro.analysis import analyze, lint_path

    reports = []
    if args.targets:
        for target in args.targets:
            reports.append(lint_path(target))
    else:
        from repro.neuro import build_scenario

        scenario = build_scenario(include_anatom_source=True)
        reports.append(analyze(scenario.mediator))

    include_info = not args.no_info
    if args.json:
        payload = [report.as_dict(include_info=include_info) for report in reports]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.format_text(include_info=include_info, explain=args.explain))
    return 1 if any(report.has_errors for report in reports) else 0


def trace(args):
    """medtrace: run deployments under a tracer, print spans + metrics."""
    from repro import obs

    tracer = obs.install(obs.Tracer("repro-trace"))
    why_output = None
    try:
        if args.targets:
            import runpy

            for target in args.targets:
                with tracer.span("script", path=target):
                    # the script's own printing is not the trace;
                    # silence it unless asked to keep it
                    if args.keep_output:
                        runpy.run_path(target, run_name="__main__")
                    else:
                        sink = io.StringIO()
                        with contextlib.redirect_stdout(sink):
                            runpy.run_path(target, run_name="__main__")
        else:
            from repro.neuro import build_scenario, section5_query

            scenario = build_scenario(include_anatom_source=True)
            mediator = scenario.mediator
            mediator.correlate(section5_query())
            if args.why:
                derivation = mediator.explain(args.why)
                if derivation is None:
                    why_output = "no derivation: %r is not in the model" % args.why
                else:
                    why_output = derivation.format()
    finally:
        obs.uninstall()

    if args.json:
        rendered = obs.to_json(tracer, mask_timings=args.mask_timings)
    else:
        rendered = obs.render_tree(tracer, mask_timings=args.mask_timings)
    if args.out:
        with open(args.out, "w") as handle:
            handle.write(rendered + "\n")
        print("trace written to %s" % args.out)
    else:
        print(rendered)
    if why_output is not None:
        print("\nwhy %s ?" % args.why)
        print(why_output)
    return 0


def chaos(args):
    """medguard: seeded chaos runs checking the degraded-answer contract."""
    from repro.resilience.chaos import (
        ContractCheck,
        run_chaos_scenario,
        run_chaos_script,
    )

    reports = []
    if args.targets:
        for target in args.targets:
            reports.append(
                run_chaos_script(
                    target,
                    args.seed,
                    rate=args.rate,
                    keep_output=args.keep_output,
                )
            )
    else:
        parallel = args.parallel or False
        report = run_chaos_scenario(args.seed, parallel=parallel)
        # the contract demands byte-for-byte reproducibility: the same
        # seed must produce the identical report
        rerun = run_chaos_scenario(args.seed, parallel=parallel)
        report.checks.append(
            ContractCheck(
                "reproducible",
                report.format() == rerun.format(),
                "re-running seed=%s reproduces the report byte-for-byte"
                % args.seed,
            )
        )
        reports.append(report)

    if args.json:
        payload = [report.as_dict() for report in reports]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for index, report in enumerate(reports):
            if index:
                print()
            print(report.format())
    return 0 if all(report.ok for report in reports) else 1


def cache_cmd(args):
    """medcache: stats / warm / clear / verify."""
    from repro import obs
    from repro.cache import AnswerCache
    from repro.neuro import build_scenario, section5_query

    if args.action == "verify":
        from repro.cache.verify import verify_scenario, verify_script

        reports = (
            [verify_script(target) for target in args.targets]
            if args.targets
            else [verify_scenario()]
        )
        if args.json:
            print(
                json.dumps(
                    [report.as_dict() for report in reports],
                    indent=2,
                    sort_keys=True,
                )
            )
        else:
            for index, report in enumerate(reports):
                if index:
                    print()
                print(report.format())
        return 0 if all(report.ok for report in reports) else 1

    # stats / warm / clear all prime the same deterministic workload:
    # the Section 5 correlation over the XML wire, against the shipped
    # scenario with a fixed seed
    cache = AnswerCache()
    with obs.capture("repro-cache") as tracer:
        scenario = build_scenario(
            eager=False, dialogue_via_xml=True, cache=cache
        )
        mediator = scenario.mediator
        runs = 1 if args.action == "warm" else 2
        for _run in range(runs):
            mediator.correlate(section5_query())
    flushed = None
    if args.action == "clear":
        flushed = cache.flush(reason="repro cache clear")
    payload = {
        "action": args.action,
        "cache": cache.stats_dict(),
        "counters": tracer.metrics.counters_with_prefix("cache."),
        "source_queries": tracer.metrics.counter_total("source.queries"),
        "query_wire_bytes": tracer.metrics.counter_value(
            "wire.bytes", kind="query"
        ),
    }
    if flushed is not None:
        payload["flushed"] = {
            "entries": flushed[0],
            "materializations": flushed[1],
        }
    if args.json:
        print(json.dumps(payload, indent=2, sort_keys=True))
        return 0
    print("medcache %s — Section 5 workload (%d run%s over the XML wire)"
          % (args.action, runs, "" if runs == 1 else "s"))
    for key, value in sorted(payload["cache"].items()):
        print("  cache.%-28s %s" % (key, value))
    for key, value in sorted(payload["counters"].items()):
        print("  counter.%-26s %s" % (key, value))
    print("  %-34s %s" % ("source_queries", payload["source_queries"]))
    print("  %-34s %s" % ("query_wire_bytes", payload["query_wire_bytes"]))
    if flushed is not None:
        print("  flushed %d entries, %d materializations" % flushed)
    return 0


_EPILOG = """subcommands:
  demo   run the KIND scenario live demo (the default)
  lint   medlint — statically analyze deployments (MBM0xx diagnostics)
  trace  medtrace — run deployments under the tracer, print spans + metrics
  chaos  medguard — seeded fault injection + degraded-answer contract
  cache  medcache — answer-cache stats, warming, and correctness verify
"""


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Model-Based Mediation with Domain Maps (ICDE 2001)",
        epilog=_EPILOG,
        formatter_class=argparse.RawDescriptionHelpFormatter,
    )
    parser.add_argument(
        "--version",
        action="version",
        version="%(prog)s " + _version(),
    )
    sub = parser.add_subparsers(dest="command")

    demo_parser = sub.add_parser("demo", help="run the KIND scenario demo")
    demo_parser.add_argument(
        "--trace",
        action="store_true",
        help="append the medtrace span tree to the demo output",
    )
    demo_parser.add_argument(
        "--trace-json",
        metavar="PATH",
        help="write the trace as a JSON document to PATH",
    )
    demo_parser.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        help="fan plan retrieval out over N worker threads (medpar); "
        "answers and traces stay deterministic",
    )
    demo_parser.set_defaults(func=demo)

    lint_parser = sub.add_parser(
        "lint",
        help="statically analyze deployments (medlint)",
        description="Lint deployment scripts without evaluating them. "
        "Each target is a Python file; every Mediator it constructs is "
        "analyzed. With no target, the shipped KIND scenario is linted.",
    )
    lint_parser.add_argument(
        "targets", nargs="*", help="deployment scripts (.py) to lint"
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    lint_parser.add_argument(
        "--no-info", action="store_true", help="hide info-severity diagnostics"
    )
    lint_parser.add_argument(
        "--explain",
        action="store_true",
        help="follow each diagnostic with its catalog title",
    )
    lint_parser.set_defaults(func=lint)

    trace_parser = sub.add_parser(
        "trace",
        help="run deployments under the medtrace tracer",
        description="Run deployment scripts (or the shipped KIND "
        "scenario and its Section 5 query, when no target is given) "
        "with tracing enabled, then print the span tree and collected "
        "metrics.  See docs/observability.md for the span taxonomy.",
    )
    trace_parser.add_argument(
        "targets", nargs="*", help="deployment scripts (.py) to run traced"
    )
    trace_parser.add_argument(
        "--json", action="store_true", help="emit the JSON trace document"
    )
    trace_parser.add_argument(
        "--out", metavar="PATH", help="write the trace to PATH instead of stdout"
    )
    trace_parser.add_argument(
        "--mask-timings",
        action="store_true",
        help="render timings as '--' (deterministic shape output)",
    )
    trace_parser.add_argument(
        "--keep-output",
        action="store_true",
        help="do not silence the target scripts' own stdout",
    )
    trace_parser.add_argument(
        "--why",
        metavar="FACT",
        help="also print a stratum/round-annotated derivation tree for "
        "one mediated F-logic fact (shipped scenario only), e.g. "
        "\"'NCMIR.protein_amount.1' : 'Compartment'\"",
    )
    trace_parser.set_defaults(func=trace)

    chaos_parser = sub.add_parser(
        "chaos",
        help="run deployments under seeded fault injection (medguard)",
        description="Inject deterministic faults into wrapped sources "
        "and check the degraded-answer contract.  With no target, the "
        "shipped Section 5 scenario runs over the XML wire while a "
        "seeded schedule kills the retrieval source mid-plan; with "
        "targets, each deployment script runs with flaky wrappers and "
        "a default resilience policy.  Exits non-zero on any contract "
        "violation.  See docs/resilience.md.",
    )
    chaos_parser.add_argument(
        "targets", nargs="*", help="deployment scripts (.py) to run under chaos"
    )
    chaos_parser.add_argument(
        "--seed",
        type=int,
        default=7,
        help="fault-schedule seed (default: 7); identical seeds "
        "reproduce identical reports",
    )
    chaos_parser.add_argument(
        "--rate",
        type=float,
        default=0.2,
        help="per-call fault probability in script mode (default: 0.2)",
    )
    chaos_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    chaos_parser.add_argument(
        "--keep-output",
        action="store_true",
        help="do not silence the target scripts' own stdout",
    )
    chaos_parser.add_argument(
        "--parallel",
        type=int,
        metavar="N",
        help="run the scenario with medpar fan-out over N workers; the "
        "report must stay byte-identical to the sequential run of the "
        "same seed (scenario mode only)",
    )
    chaos_parser.set_defaults(func=chaos)

    cache_parser = sub.add_parser(
        "cache",
        help="answer-cache stats / warming / correctness verify (medcache)",
        description="medcache front end.  'stats' runs the Section 5 "
        "correlation twice (cold, then warm from the cache) over the "
        "XML wire and prints the deterministic cache counters; 'warm' "
        "primes a cache with one run; 'clear' demonstrates the flush "
        "escape hatch; 'verify' checks the cache-correctness contract "
        "— cached reruns must answer byte-identically with zero query "
        "wire bytes — on the shipped scenario, or on each given "
        "deployment script run twice over one shared store.  Exits "
        "non-zero on a verify failure.  See docs/caching.md.",
    )
    cache_parser.add_argument(
        "action",
        choices=("stats", "warm", "clear", "verify"),
        help="what to do",
    )
    cache_parser.add_argument(
        "targets",
        nargs="*",
        help="deployment scripts (.py) for 'verify' (default: the "
        "shipped Section 5 scenario)",
    )
    cache_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    cache_parser.set_defaults(func=cache_cmd)
    return parser


def _version():
    from repro import __version__

    return __version__


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "func", None) is None:
            # bare `python -m repro` keeps running the demo
            return demo()
        return args.func(args)
    except BrokenPipeError:
        # output piped into a consumer that stopped reading (e.g. head)
        return 0


if __name__ == "__main__":
    sys.exit(main())
