"""`python -m repro` — a compact live demo of the mediated system.

Builds the KIND scenario (including the ANATOM atlas source with its
domain-map refinement), runs the paper's Section 5 query, and prints a
provenance trace for one mediated fact.
"""

from __future__ import annotations


def main():
    from repro.neuro import build_scenario, section5_query

    print("repro: Model-Based Mediation with Domain Maps (ICDE 2001)")
    print("=" * 64)

    scenario = build_scenario(include_anatom_source=True)
    mediator = scenario.mediator
    print("sources registered over the XML wire:")
    for message, size in mediator.wire_log:
        print("  %-24s %7d bytes" % (message, size))
    print(
        "domain map: %d concepts (incl. %s from ANATOM's refinement)"
        % (
            len(mediator.dm.concepts),
            ", ".join(
                c for c in ("Basket_Cell", "Stellate_Cell", "Golgi_Cell")
                if c in mediator.dm.concepts
            ),
        )
    )

    print("\nSection 5 query: calcium-binding proteins in neurons")
    print("receiving signals from parallel fibers in rat brains")
    plan, context = mediator.correlate(section5_query())
    print(plan.describe())
    print("\nanswers (protein, cumulative amount below %s):" % context.root)
    for protein, distribution in context.answers:
        print("  %-22s %8.3f" % (protein, distribution.total()))

    obj = sorted(
        row["X"]
        for row in mediator.ask("X : 'Compartment'")
        if str(row["X"]).startswith("NCMIR")
    )[0]
    print("\nwhy is %s a Compartment?" % obj)
    print(mediator.explain("'%s' : 'Compartment'" % obj).format(indent=1))


if __name__ == "__main__":
    main()
