"""``python -m repro`` — the command-line front end.

Two subcommands:

* ``demo`` (the default) — a compact live demo of the mediated system:
  builds the KIND scenario (including the ANATOM atlas source with its
  domain-map refinement), runs the paper's Section 5 query, and prints
  a provenance trace for one mediated fact;
* ``lint`` — medlint, the whole-deployment static analyzer: lints the
  deployments built by the given Python scripts (or the shipped KIND
  scenario when no target is given) and exits non-zero if any
  error-severity diagnostic is reported.
"""

from __future__ import annotations

import argparse
import json
import sys


def demo(args=None):
    from repro.neuro import build_scenario, section5_query

    print("repro: Model-Based Mediation with Domain Maps (ICDE 2001)")
    print("=" * 64)

    scenario = build_scenario(include_anatom_source=True)
    mediator = scenario.mediator
    print("sources registered over the XML wire:")
    for message, size in mediator.wire_log:
        print("  %-24s %7d bytes" % (message, size))
    print(
        "domain map: %d concepts (incl. %s from ANATOM's refinement)"
        % (
            len(mediator.dm.concepts),
            ", ".join(
                c for c in ("Basket_Cell", "Stellate_Cell", "Golgi_Cell")
                if c in mediator.dm.concepts
            ),
        )
    )

    print("\nSection 5 query: calcium-binding proteins in neurons")
    print("receiving signals from parallel fibers in rat brains")
    plan, context = mediator.correlate(section5_query())
    print(plan.describe())
    print("\nanswers (protein, cumulative amount below %s):" % context.root)
    for protein, distribution in context.answers:
        print("  %-22s %8.3f" % (protein, distribution.total()))

    obj = sorted(
        row["X"]
        for row in mediator.ask("X : 'Compartment'")
        if str(row["X"]).startswith("NCMIR")
    )[0]
    print("\nwhy is %s a Compartment?" % obj)
    print(mediator.explain("'%s' : 'Compartment'" % obj).format(indent=1))
    return 0


def lint(args):
    from repro.analysis import analyze, lint_path

    reports = []
    if args.targets:
        for target in args.targets:
            reports.append(lint_path(target))
    else:
        from repro.neuro import build_scenario

        scenario = build_scenario(include_anatom_source=True)
        reports.append(analyze(scenario.mediator))

    include_info = not args.no_info
    if args.json:
        payload = [report.as_dict(include_info=include_info) for report in reports]
        print(json.dumps(payload, indent=2, sort_keys=True))
    else:
        for report in reports:
            print(report.format_text(include_info=include_info, explain=args.explain))
    return 1 if any(report.has_errors for report in reports) else 0


def build_parser():
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Model-Based Mediation with Domain Maps (ICDE 2001)",
    )
    sub = parser.add_subparsers(dest="command")

    demo_parser = sub.add_parser("demo", help="run the KIND scenario demo")
    demo_parser.set_defaults(func=demo)

    lint_parser = sub.add_parser(
        "lint",
        help="statically analyze deployments (medlint)",
        description="Lint deployment scripts without evaluating them. "
        "Each target is a Python file; every Mediator it constructs is "
        "analyzed. With no target, the shipped KIND scenario is linted.",
    )
    lint_parser.add_argument(
        "targets", nargs="*", help="deployment scripts (.py) to lint"
    )
    lint_parser.add_argument(
        "--json", action="store_true", help="emit machine-readable JSON"
    )
    lint_parser.add_argument(
        "--no-info", action="store_true", help="hide info-severity diagnostics"
    )
    lint_parser.add_argument(
        "--explain",
        action="store_true",
        help="follow each diagnostic with its catalog title",
    )
    lint_parser.set_defaults(func=lint)
    return parser


def main(argv=None):
    parser = build_parser()
    args = parser.parse_args(argv)
    try:
        if getattr(args, "func", None) is None:
            # bare `python -m repro` keeps running the demo
            return demo()
        return args.func(args)
    except BrokenPipeError:
        # output piped into a consumer that stopped reading (e.g. head)
        return 0


if __name__ == "__main__":
    sys.exit(main())
