"""medtrace renderers: human span trees and the JSON export.

Mirrors the rendering discipline of :mod:`repro.analysis.report`:
deterministic ordering everywhere (attributes sorted by name, children
in recording order), so ``mask_timings=True`` output is byte-stable and
golden-testable.
"""

from __future__ import annotations

import json
from typing import Iterable, List

MASKED = "      --"


def _format_attrs(attrs):
    return " ".join(
        "%s=%s" % (key, _format_value(attrs[key])) for key in sorted(attrs)
    )


def _format_value(value):
    if isinstance(value, float):
        return "%.6g" % value
    if isinstance(value, str) and (" " in value or not value):
        return repr(value)
    return str(value)


def _format_ms(seconds, mask_timings):
    if mask_timings or seconds is None:
        return MASKED
    return "%7.2fms" % (seconds * 1000.0)


def _span_lines(span, indent, mask_timings, lines):
    pad = "  " * indent
    label = span.name
    attrs = _format_attrs(span.attrs)
    if attrs:
        label = "%s  {%s}" % (label, attrs)
    lines.append(
        "%s %s%s" % (_format_ms(span.duration(), mask_timings), pad, label)
    )
    for event in span.events:
        event_attrs = _format_attrs(event.attrs)
        lines.append(
            "%s %s  ! %s%s"
            % (
                MASKED,
                pad,
                event.name,
                ("  {%s}" % event_attrs) if event_attrs else "",
            )
        )
    for child in span.children:
        _span_lines(child, indent + 1, mask_timings, lines)


def render_tree(tracer, mask_timings=False, metrics=True):
    """Human-readable span forest (plus a metrics tail).

    With ``mask_timings=True`` every duration column renders as ``--``,
    making the output a pure *shape* — names, nesting, attributes —
    suitable for golden-file tests.
    """
    lines: List[str] = ["trace: %s" % tracer.name]
    for root in tracer.roots:
        _span_lines(root, 0, mask_timings, lines)
    if metrics:
        lines.extend(render_metrics(tracer.metrics))
    return "\n".join(lines)


def render_metrics(metrics):
    """The counter/gauge tail of the tree rendering."""
    exported = metrics.as_dict()
    lines: List[str] = []
    if exported["counters"]:
        lines.append("counters:")
        for row in exported["counters"]:
            lines.append("  %s = %s" % (_metric_label(row), _format_value(row["value"])))
    if exported["gauges"]:
        lines.append("gauges:")
        for row in exported["gauges"]:
            lines.append("  %s = %s" % (_metric_label(row), _format_value(row["value"])))
    return lines


def _metric_label(row):
    if not row["labels"]:
        return row["name"]
    labels = ",".join(
        "%s=%s" % (k, _format_value(v)) for k, v in sorted(row["labels"].items())
    )
    return "%s{%s}" % (row["name"], labels)


def to_json(tracer, mask_timings=False, indent=2):
    """The one-document JSON export: span forest + metrics."""
    return json.dumps(
        tracer.as_dict(mask_timings=mask_timings),
        indent=indent,
        sort_keys=True,
        default=str,
    )
