"""medtrace metrics: counters and gauges collected during a trace.

Two flavours:

* :class:`Metrics` — a labelled counter/gauge registry owned by a
  :class:`~repro.obs.tracer.Tracer`; instrumentation reports through
  ``tracer.count(...)`` / ``tracer.gauge(...)`` and never touches this
  module directly.
* :class:`EvaluationMetrics` — the per-evaluation record the Datalog
  engine fills in when tracing is enabled: rule firings, facts derived
  per stratum, semi-naive delta sizes per round, well-founded
  alternation count, final store size, and the ``derived_at`` map
  (atom -> (stratum, round)) that provenance uses to annotate
  derivation trees.

Metric names are dotted, lower-case, and stable — they are part of the
JSON schema documented in ``docs/observability.md``.
"""

from __future__ import annotations

import threading
from typing import Dict, List, Optional, Tuple


class Metrics:
    """Labelled counters and gauges with deterministic export order.

    Thread-safe: medpar workers bump counters concurrently, and the
    read-modify-write of an increment would lose updates unlocked.
    """

    __slots__ = ("_counters", "_gauges", "_lock")

    def __init__(self):
        self._counters: Dict[Tuple, float] = {}
        self._gauges: Dict[Tuple, float] = {}
        self._lock = threading.Lock()

    @staticmethod
    def _key(name, labels):
        return (name,) + tuple(sorted(labels.items()))

    def count(self, name, value=1, **labels):
        """Add `value` to a (labelled) counter."""
        key = self._key(name, labels)
        with self._lock:
            self._counters[key] = self._counters.get(key, 0) + value

    def gauge(self, name, value, **labels):
        """Set a (labelled) gauge to its latest value."""
        with self._lock:
            self._gauges[self._key(name, labels)] = value

    def counter_value(self, name, **labels):
        return self._counters.get(self._key(name, labels), 0)

    def gauge_value(self, name, default=None, **labels):
        return self._gauges.get(self._key(name, labels), default)

    def counter_total(self, name):
        """Sum of a counter across all label sets."""
        return sum(v for k, v in self._counters.items() if k[0] == name)

    def counters_with_prefix(self, prefix):
        """``{counter name: total across label sets}`` for counters
        whose name starts with `prefix` — e.g. ``"cache."`` collects
        the medcache family (``cache.hits``, ``cache.misses``,
        ``cache.puts``, ``cache.dedup``, ``cache.evictions``,
        ``cache.invalidated_entries``,
        ``cache.invalidated_materializations``,
        ``cache.materializations``).  Sorted by name, so the export
        is deterministic."""
        totals = {}
        for key, value in self._counters.items():
            if key[0].startswith(prefix):
                totals[key[0]] = totals.get(key[0], 0) + value
        return dict(sorted(totals.items()))

    def merge(self, other):
        """Fold another registry into this one (counters add, gauges
        take the other's value)."""
        with other._lock:
            counters = dict(other._counters)
            gauges = dict(other._gauges)
        with self._lock:
            for key, value in counters.items():
                self._counters[key] = self._counters.get(key, 0) + value
            self._gauges.update(gauges)
        return self

    def as_dict(self):
        """JSON-ready: {"counters": [...], "gauges": [...]} sorted by
        name then labels."""

        def rows(table):
            out = []
            for key in sorted(table, key=repr):
                name, labels = key[0], key[1:]
                out.append(
                    {
                        "name": name,
                        "labels": {k: v for k, v in labels},
                        "value": table[key],
                    }
                )
            return out

        return {"counters": rows(self._counters), "gauges": rows(self._gauges)}

    def __len__(self):
        return len(self._counters) + len(self._gauges)

    def __repr__(self):
        return "Metrics(counters=%d, gauges=%d)" % (
            len(self._counters),
            len(self._gauges),
        )


class StratumMetrics:
    """Per-stratum record: how many facts each semi-naive round derived."""

    __slots__ = ("index", "relations", "facts_derived", "rounds")

    def __init__(self, index, relations=()):
        self.index = index
        self.relations = sorted(relations)
        self.facts_derived = 0
        self.rounds: List[int] = []  # delta size per semi-naive round

    def as_dict(self):
        return {
            "index": self.index,
            "relations": list(self.relations),
            "facts_derived": self.facts_derived,
            "rounds": list(self.rounds),
        }

    def __repr__(self):
        return "StratumMetrics(index=%d, facts=%d, rounds=%r)" % (
            self.index,
            self.facts_derived,
            self.rounds,
        )


class EvaluationMetrics:
    """What one Datalog evaluation did (attached to EvaluationResult)."""

    def __init__(self):
        self.rule_firings = 0
        self.strata: List[StratumMetrics] = []
        self.wf_alternations = 0
        self.store_size = 0
        self.undefined_count = 0
        #: atom -> (stratum index, round index); round 0 is the initial
        #: full pass (facts included), rounds 1.. are semi-naive deltas.
        #: Empty under the well-founded fallback (the alternating
        #: fixpoint re-derives facts many times; "the" round is not
        #: well defined there).
        self.derived_at: Dict = {}

    def begin_stratum(self, index, relations=()):
        stratum = StratumMetrics(index, relations)
        self.strata.append(stratum)
        return stratum

    @property
    def facts_derived(self):
        return sum(s.facts_derived for s in self.strata)

    @property
    def rounds_total(self):
        return sum(len(s.rounds) for s in self.strata)

    def derivation_of(self, atom):
        """(stratum, round) the atom was first derived in, or None."""
        return self.derived_at.get(atom)

    def as_dict(self):
        return {
            "rule_firings": self.rule_firings,
            "facts_derived": self.facts_derived,
            "strata": [s.as_dict() for s in self.strata],
            "wf_alternations": self.wf_alternations,
            "store_size": self.store_size,
            "undefined_count": self.undefined_count,
        }

    def __repr__(self):
        return (
            "EvaluationMetrics(firings=%d, facts=%d, strata=%d, wf=%d)"
            % (
                self.rule_firings,
                self.facts_derived,
                len(self.strata),
                self.wf_alternations,
            )
        )
