"""medtrace: span-based tracing and metrics for the mediator stack.

A zero-dependency observability layer threaded through every layer of
the deployment — correlation plan steps, F-logic translation, Datalog
strata and semi-naive rounds, domain-map graph operations, and the
wrapper/XML wire.  The process-wide default tracer is a no-op, so
instrumentation costs one module-attribute read and an identity check
when tracing is off (the common case); install a real
:class:`Tracer` with :func:`install` or the :func:`capture` context
manager to record.

Typical use::

    from repro import obs

    with obs.capture("section5") as tracer:
        mediator.correlate(section5_query())
    print(obs.render_tree(tracer))
    open("trace.json", "w").write(obs.to_json(tracer))

Instrumentation points call the module-level helpers —
:func:`span`, :func:`event`, :func:`count`, :func:`gauge` — which
dispatch to the active tracer.  Span taxonomy, metric names, and the
JSON schema are documented in ``docs/observability.md``.
"""

from __future__ import annotations

from contextlib import contextmanager

from .metrics import EvaluationMetrics, Metrics, StratumMetrics
from .render import render_metrics, render_tree, to_json
from .tracer import NOOP, NOOP_SPAN, Span, SpanEvent, Tracer

#: the process-wide active tracer; NOOP unless :func:`install`-ed.
_active = NOOP


def active():
    """The currently installed tracer (the shared no-op by default)."""
    return _active


def enabled():
    """Is a real tracer installed?"""
    return _active.enabled


def install(tracer=None):
    """Install `tracer` (a fresh one when omitted) process-wide and
    return it.  Remember to :func:`uninstall` — or use
    :func:`capture`, which does both."""
    global _active
    _active = tracer if tracer is not None else Tracer()
    return _active


def uninstall():
    """Restore the no-op default; returns the tracer that was active."""
    global _active
    previous = _active
    _active = NOOP
    return previous


@contextmanager
def capture(name="trace"):
    """Install a fresh tracer for the block; yields it."""
    tracer = Tracer(name)
    previous = _active
    install(tracer)
    try:
        yield tracer
    finally:
        install(previous)


# -- instrumentation entry points (hot-path cheap) ------------------------


def span(name, **attrs):
    """Open a span on the active tracer (no-op span when disabled)."""
    tracer = _active
    if tracer is NOOP:
        return NOOP_SPAN
    return tracer.span(name, **attrs)


def event(name, **attrs):
    """Record an event on the active tracer's current span."""
    tracer = _active
    if tracer is not NOOP:
        tracer.event(name, **attrs)


def count(name, value=1, **labels):
    """Bump a counter on the active tracer's metrics."""
    tracer = _active
    if tracer is not NOOP:
        tracer.count(name, value, **labels)


def gauge(name, value, **labels):
    """Set a gauge on the active tracer's metrics."""
    tracer = _active
    if tracer is not NOOP:
        tracer.gauge(name, value, **labels)


__all__ = [
    "EvaluationMetrics",
    "Metrics",
    "NOOP",
    "NOOP_SPAN",
    "Span",
    "SpanEvent",
    "StratumMetrics",
    "Tracer",
    "active",
    "capture",
    "count",
    "enabled",
    "event",
    "gauge",
    "install",
    "render_metrics",
    "render_tree",
    "span",
    "to_json",
    "uninstall",
]
