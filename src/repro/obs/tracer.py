"""medtrace spans: nested wall-time measurements of mediator work.

A :class:`Span` is one timed region — a plan step, a Datalog stratum, a
wrapper call — with a name, sorted attributes, point-in-time *events*,
and child spans.  A :class:`Tracer` maintains the current-span stack
and the per-trace :class:`~repro.obs.metrics.Metrics`.

The process-wide default is the singleton :data:`NOOP` tracer, so
instrumentation in the hot paths costs one module-attribute read and an
identity check when tracing is off (see :func:`span` and friends in
:mod:`repro.obs`).  Timings come from :func:`time.perf_counter`; trees
are rendered by :mod:`repro.obs.render`.
"""

from __future__ import annotations

import threading
from contextlib import contextmanager
from time import perf_counter
from typing import Dict, List, Optional, Tuple

from .metrics import Metrics


class SpanEvent:
    """A point-in-time annotation inside a span (e.g. a skipped source)."""

    __slots__ = ("name", "attrs", "at")

    def __init__(self, name, attrs, at):
        self.name = name
        self.attrs = dict(attrs)
        self.at = at

    def as_dict(self, mask_timings=False):
        return {
            "name": self.name,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "at_ms": None if mask_timings else round(self.at * 1000.0, 3),
        }

    def __repr__(self):
        return "SpanEvent(%r, %r)" % (self.name, self.attrs)


class Span:
    """One timed, attributed region of work; usable as a context manager
    only through :meth:`Tracer.span`."""

    __slots__ = ("name", "attrs", "parent", "children", "events",
                 "_tracer", "_start", "_end")

    def __init__(self, name, attrs, parent, tracer):
        self.name = name
        self.attrs: Dict = dict(attrs)
        self.parent = parent
        self.children: List[Span] = []
        self.events: List[SpanEvent] = []
        self._tracer = tracer
        self._start: Optional[float] = None
        self._end: Optional[float] = None

    # -- lifecycle ---------------------------------------------------------

    def __enter__(self):
        self._start = perf_counter()
        return self

    def __exit__(self, exc_type, exc, tb):
        self._end = perf_counter()
        if exc_type is not None and "error" not in self.attrs:
            self.attrs["error"] = exc_type.__name__
        self._tracer._pop(self)
        return False

    @property
    def enabled(self):
        return True

    @property
    def finished(self):
        return self._end is not None

    def duration(self):
        """Wall-clock seconds (None while the span is still open)."""
        if self._start is None or self._end is None:
            return None
        return self._end - self._start

    # -- annotation --------------------------------------------------------

    def set(self, **attrs):
        """Attach/overwrite attributes (e.g. a cardinality known only
        after the work ran)."""
        self.attrs.update(attrs)
        return self

    def event(self, name, **attrs):
        """Record a point-in-time event inside this span."""
        self.events.append(SpanEvent(name, attrs, perf_counter()))
        return self

    # -- export ------------------------------------------------------------

    def as_dict(self, mask_timings=False):
        duration = self.duration()
        return {
            "name": self.name,
            "attrs": {k: self.attrs[k] for k in sorted(self.attrs)},
            "duration_ms": (
                None
                if mask_timings or duration is None
                else round(duration * 1000.0, 3)
            ),
            "events": [e.as_dict(mask_timings) for e in self.events],
            "children": [c.as_dict(mask_timings) for c in self.children],
        }

    def iter_spans(self):
        """This span and every descendant, depth-first."""
        yield self
        for child in self.children:
            yield from child.iter_spans()

    def __repr__(self):
        return "Span(%r, children=%d)" % (self.name, len(self.children))


class _NoopSpan:
    """The shared do-nothing span: every method is inert, so code can
    annotate its span unconditionally."""

    __slots__ = ()
    enabled = False

    def __enter__(self):
        return self

    def __exit__(self, exc_type, exc, tb):
        return False

    def set(self, **attrs):
        return self

    def event(self, name, **attrs):
        return self


NOOP_SPAN = _NoopSpan()


class Tracer:
    """Collects a forest of spans plus per-trace metrics."""

    enabled = True

    def __init__(self, name="trace"):
        self.name = name
        self.roots: List[Span] = []
        self.metrics = Metrics()
        # one span stack per thread: medpar workers open spans
        # concurrently, and a shared stack would interleave parents
        self._stacks = threading.local()

    @property
    def _stack(self):
        stack = getattr(self._stacks, "stack", None)
        if stack is None:
            stack = self._stacks.stack = []
        return stack

    # -- span stack --------------------------------------------------------

    def span(self, name, **attrs):
        """Open a child span of the current span (context manager)."""
        parent = self._stack[-1] if self._stack else None
        span = Span(name, attrs, parent, self)
        if parent is not None:
            parent.children.append(span)
        else:
            self.roots.append(span)
        self._stack.append(span)
        return span

    def _pop(self, span):
        if self._stack and self._stack[-1] is span:
            self._stack.pop()
        elif span in self._stack:  # tolerate out-of-order exits
            self._stack.remove(span)

    @property
    def current(self):
        """The innermost open span (or the shared no-op span)."""
        return self._stack[-1] if self._stack else NOOP_SPAN

    @contextmanager
    def adopt(self, parent):
        """Adopt `parent` — a span captured on another thread — as this
        thread's current span for the block.

        The medpar executor captures the submitting thread's
        :attr:`current` at fan-out and wraps each worker task in
        ``adopt``, so spans a worker opens nest under the plan step
        that fanned it out instead of starting a foreign root.
        Adopting ``None`` or the no-op span is a no-op.
        """
        if parent is None or parent is NOOP_SPAN:
            yield
            return
        stack = self._stack
        stack.append(parent)
        try:
            yield
        finally:
            if stack and stack[-1] is parent:
                stack.pop()
            elif parent in stack:  # tolerate out-of-order exits
                stack.remove(parent)

    def event(self, name, **attrs):
        """Record an event on the current span (dropped at top level)."""
        current = self.current
        if current is not NOOP_SPAN:
            current.event(name, **attrs)

    # -- metrics proxies ---------------------------------------------------

    def count(self, name, value=1, **labels):
        self.metrics.count(name, value, **labels)

    def gauge(self, name, value, **labels):
        self.metrics.gauge(name, value, **labels)

    # -- export ------------------------------------------------------------

    def iter_spans(self):
        for root in self.roots:
            yield from root.iter_spans()

    def find_spans(self, name):
        """All spans with the given name, depth-first order."""
        return [s for s in self.iter_spans() if s.name == name]

    def as_dict(self, mask_timings=False):
        """The one-document JSON form: span forest + metrics."""
        return {
            "trace": self.name,
            "spans": [r.as_dict(mask_timings) for r in self.roots],
            "metrics": self.metrics.as_dict(),
        }

    def __repr__(self):
        return "Tracer(%r, roots=%d)" % (self.name, len(self.roots))


class _NoopTracer:
    """The disabled default: every operation is inert."""

    __slots__ = ()
    enabled = False
    name = "noop"
    roots = ()
    current = NOOP_SPAN

    def span(self, name, **attrs):
        return NOOP_SPAN

    @contextmanager
    def adopt(self, parent):
        yield

    def event(self, name, **attrs):
        pass

    def count(self, name, value=1, **labels):
        pass

    def gauge(self, name, value, **labels):
        pass

    def iter_spans(self):
        return iter(())

    def find_spans(self, name):
        return []

    def __repr__(self):
        return "NoopTracer()"


NOOP = _NoopTracer()
