"""Terms of the Datalog dialect: constants, variables, compound terms.

The engine works over three kinds of terms:

* :class:`Const` wraps an arbitrary hashable Python value (strings,
  numbers, tuples, ...).  Constants compare by value.
* :class:`Var` is a named logic variable.  Variables whose name starts
  with ``_`` are anonymous ("don't care") and never join.
* :class:`Struct` is a compound term ``f(t1, ..., tn)``.  Structs give
  the language the object-creating power the paper needs for Skolem
  placeholder objects ``f_{C,r,D}(x)`` (Section 4, assertion-mode domain
  map edges) and for reified relation identifiers.

Substitutions are plain dicts mapping :class:`Var` to terms; the module
functions :func:`walk`, :func:`substitute`, :func:`unify` implement the
usual triangular-substitution machinery.
"""

from __future__ import annotations

from typing import Dict, Iterator, Optional, Tuple, Union


class Term:
    """Abstract base class for Datalog terms."""

    __slots__ = ()

    def is_ground(self):
        """Return True when the term contains no variables."""
        raise NotImplementedError

    def variables(self):
        """Yield each :class:`Var` occurring in this term (with repeats)."""
        raise NotImplementedError


class Const(Term):
    """An atomic constant wrapping a hashable Python value."""

    __slots__ = ("value", "_hash")

    def __init__(self, value):
        self.value = value
        self._hash = hash(("Const", value))

    def is_ground(self):
        return True

    def variables(self):
        return iter(())

    def __eq__(self, other):
        return isinstance(other, Const) and self.value == other.value

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Const(%r)" % (self.value,)

    def __str__(self):
        if isinstance(self.value, str):
            return _quote_symbol(self.value)
        return str(self.value)


class Var(Term):
    """A named logic variable.

    Names beginning with ``_`` denote anonymous variables: each textual
    occurrence of ``_`` in the parser is renamed apart, and safety
    analysis treats them as ordinary variables.
    """

    __slots__ = ("name", "_hash")

    def __init__(self, name):
        self.name = name
        self._hash = hash(("Var", name))

    def is_ground(self):
        return False

    def variables(self):
        yield self

    @property
    def is_anonymous(self):
        return self.name.startswith("_")

    def __eq__(self, other):
        return isinstance(other, Var) and self.name == other.name

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Var(%r)" % (self.name,)

    def __str__(self):
        return self.name


class Struct(Term):
    """A compound term ``functor(arg1, ..., argn)``.

    Used for Skolem functions (placeholder objects of assertion-mode
    domain-map edges) and any other constructed identifiers.  Structs
    compare structurally and may be nested.
    """

    __slots__ = ("functor", "args", "_hash", "_ground")

    def __init__(self, functor, args=()):
        self.functor = functor
        self.args = tuple(args)
        self._hash = hash(("Struct", functor, self.args))
        # groundness is computed eagerly: children already cached theirs,
        # so this is O(arity) and keeps deep Skolem chains from blowing
        # the recursion limit on is_ground()
        self._ground = all(arg.is_ground() for arg in self.args)

    def is_ground(self):
        return self._ground

    def variables(self):
        for arg in self.args:
            yield from arg.variables()

    @property
    def arity(self):
        return len(self.args)

    def __eq__(self, other):
        return (
            isinstance(other, Struct)
            and self.functor == other.functor
            and self.args == other.args
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Struct(%r, %r)" % (self.functor, self.args)

    def __str__(self):
        if not self.args:
            return _quote_symbol(self.functor)
        return "%s(%s)" % (
            _quote_symbol(self.functor),
            ", ".join(str(a) for a in self.args),
        )


Subst = Dict[Var, Term]

_SYMBOL_SAFE_FIRST = "abcdefghijklmnopqrstuvwxyz"
_SYMBOL_SAFE_REST = set(
    "abcdefghijklmnopqrstuvwxyzABCDEFGHIJKLMNOPQRSTUVWXYZ0123456789_"
)


def _quote_symbol(name):
    """Render a symbol, quoting it when it is not a plain lowercase atom."""
    if (
        name
        and name[0] in _SYMBOL_SAFE_FIRST
        and all(ch in _SYMBOL_SAFE_REST for ch in name)
    ):
        return name
    return "'%s'" % name.replace("\\", "\\\\").replace("'", "\\'")


def const(value):
    """Convenience constructor: wrap `value` in :class:`Const`."""
    return Const(value)


def var(name):
    """Convenience constructor for :class:`Var`."""
    return Var(name)


def struct(functor, *args):
    """Convenience constructor for :class:`Struct` with varargs."""
    return Struct(functor, args)


def coerce_term(value):
    """Lift a Python value to a :class:`Term`.

    Terms pass through unchanged; anything else is wrapped in a
    :class:`Const`.  This keeps user-facing APIs ergonomic: callers can
    pass plain strings and numbers wherever terms are expected.
    """
    if isinstance(value, Term):
        return value
    return Const(value)


def walk(term, subst):
    """Follow variable bindings in `subst` until a non-variable or an
    unbound variable is reached."""
    while isinstance(term, Var):
        bound = subst.get(term)
        if bound is None:
            return term
        term = bound
    return term


def substitute(term, subst):
    """Apply `subst` to `term`, resolving bindings recursively."""
    term = walk(term, subst)
    if isinstance(term, Struct) and not term.is_ground():
        return Struct(term.functor, tuple(substitute(a, subst) for a in term.args))
    return term


def occurs_in(variable, term, subst):
    """Occurs check: does `variable` occur in `term` under `subst`?"""
    term = walk(term, subst)
    if term == variable:
        return True
    if isinstance(term, Struct) and not term.is_ground():
        return any(occurs_in(variable, arg, subst) for arg in term.args)
    return False


def unify(left, right, subst=None, occurs_check=True):
    """Unify two terms, returning an extended substitution or None.

    The input substitution is never mutated; a (possibly shared) dict is
    returned on success.  With `occurs_check` disabled, cyclic bindings
    are possible; the engine always leaves it on because Skolem terms
    make cycles reachable in principle.
    """
    if subst is None:
        subst = {}
    left = walk(left, subst)
    right = walk(right, subst)
    if left == right:
        return subst
    if isinstance(left, Var):
        if occurs_check and occurs_in(left, right, subst):
            return None
        new = dict(subst)
        new[left] = right
        return new
    if isinstance(right, Var):
        if occurs_check and occurs_in(right, left, subst):
            return None
        new = dict(subst)
        new[right] = left
        return new
    if isinstance(left, Struct) and isinstance(right, Struct):
        if left.functor != right.functor or left.arity != right.arity:
            return None
        for l_arg, r_arg in zip(left.args, right.args):
            subst = unify(l_arg, r_arg, subst, occurs_check)
            if subst is None:
                return None
        return subst
    return None


def match(pattern, ground, subst=None):
    """One-way matching: bind variables in `pattern` against a ground term.

    Faster than full unification for fact lookup because the engine
    guarantees stored facts are ground.  Returns an extended substitution
    or None.
    """
    if subst is None:
        subst = {}
    pattern = walk(pattern, subst)
    if isinstance(pattern, Var):
        new = dict(subst)
        new[pattern] = ground
        return new
    if isinstance(pattern, Const):
        if isinstance(ground, Const) and pattern.value == ground.value:
            return subst
        return None
    if isinstance(pattern, Struct):
        if (
            not isinstance(ground, Struct)
            or pattern.functor != ground.functor
            or pattern.arity != ground.arity
        ):
            return None
        for p_arg, g_arg in zip(pattern.args, ground.args):
            subst = match(p_arg, g_arg, subst)
            if subst is None:
                return None
        return subst
    raise TypeError("unexpected pattern term: %r" % (pattern,))


def term_sort_key(term):
    """A total order over ground terms, used for deterministic output.

    Orders by term kind first, then by value; mixed-type constants are
    ordered by (type name, repr) so sorting never raises.
    """
    if isinstance(term, Const):
        value = term.value
        return (0, type(value).__name__, repr(value))
    if isinstance(term, Struct):
        return (1, term.functor, tuple(term_sort_key(a) for a in term.args))
    if isinstance(term, Var):
        return (2, term.name)
    raise TypeError("not a term: %r" % (term,))


def fresh_variable_factory(prefix="_G"):
    """Return a callable producing globally-unused variable names."""
    counter = [0]

    def fresh():
        counter[0] += 1
        return Var("%s%d" % (prefix, counter[0]))

    return fresh
