"""Abstract syntax of the Datalog dialect.

A *program* is a set of rules ``head :- body`` where the body mixes:

* positive and negated relational literals (:class:`Literal`),
* comparison/arithmetic builtins (:class:`Comparison`, :class:`Assignment`),
* aggregate subgoals (:class:`AggregateLiteral`) in the style of the
  paper's Example 3::

      N = count{VA [VB]; R(VA, VB)}

  which groups the solutions of the subgoal conjunction by ``VB`` and
  counts the distinct ``VA`` per group.

Facts are rules with an empty body and a ground head.
"""

from __future__ import annotations

from typing import Iterable, Iterator, List, Optional, Sequence, Tuple

from .terms import Const, Struct, Term, Var, coerce_term, substitute

#: Builtin comparison operator names accepted by :class:`Comparison`.
COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")

#: Aggregate function names accepted by :class:`AggregateLiteral`.
AGGREGATE_FUNCS = ("count", "sum", "min", "max", "avg")


class Atom:
    """A relational atom ``pred(t1, ..., tn)``."""

    __slots__ = ("pred", "args", "_hash")

    def __init__(self, pred, args=()):
        self.pred = pred
        self.args = tuple(coerce_term(a) for a in args)
        self._hash = hash(("Atom", pred, self.args))

    @property
    def arity(self):
        return len(self.args)

    @property
    def signature(self):
        """The (predicate, arity) pair identifying the relation."""
        return (self.pred, self.arity)

    def is_ground(self):
        return all(arg.is_ground() for arg in self.args)

    def variables(self):
        for arg in self.args:
            yield from arg.variables()

    def substitute(self, subst):
        return Atom(self.pred, tuple(substitute(a, subst) for a in self.args))

    def __eq__(self, other):
        return (
            isinstance(other, Atom)
            and self.pred == other.pred
            and self.args == other.args
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Atom(%r, %r)" % (self.pred, self.args)

    def __str__(self):
        if not self.args:
            return self.pred
        return "%s(%s)" % (self.pred, ", ".join(str(a) for a in self.args))


class BodyItem:
    """Abstract base for anything that may appear in a rule body."""

    __slots__ = ()

    def variables(self):
        raise NotImplementedError

    def substitute(self, subst):
        raise NotImplementedError


class Literal(BodyItem):
    """A possibly negated relational atom in a rule body."""

    __slots__ = ("atom", "positive", "_hash")

    def __init__(self, atom, positive=True):
        self.atom = atom
        self.positive = positive
        self._hash = hash(("Literal", atom, positive))

    def variables(self):
        return self.atom.variables()

    def substitute(self, subst):
        return Literal(self.atom.substitute(subst), self.positive)

    def negate(self):
        return Literal(self.atom, not self.positive)

    def __eq__(self, other):
        return (
            isinstance(other, Literal)
            and self.atom == other.atom
            and self.positive == other.positive
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Literal(%r, positive=%r)" % (self.atom, self.positive)

    def __str__(self):
        return str(self.atom) if self.positive else "not %s" % self.atom


class Comparison(BodyItem):
    """A builtin comparison ``left op right`` over ground values.

    ``=`` doubles as unification when one side is unbound; every other
    operator requires both sides bound at evaluation time (the safety
    checker enforces an ordering that guarantees this for safe rules).
    """

    __slots__ = ("op", "left", "right", "_hash")

    def __init__(self, op, left, right):
        if op not in COMPARISON_OPS:
            raise ValueError("unknown comparison operator: %r" % op)
        self.op = op
        self.left = coerce_term(left)
        self.right = coerce_term(right)
        self._hash = hash(("Comparison", op, self.left, self.right))

    def variables(self):
        yield from self.left.variables()
        yield from self.right.variables()

    def substitute(self, subst):
        return Comparison(self.op, substitute(self.left, subst), substitute(self.right, subst))

    def __eq__(self, other):
        return (
            isinstance(other, Comparison)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Comparison(%r, %r, %r)" % (self.op, self.left, self.right)

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


class Assignment(BodyItem):
    """An arithmetic assignment ``Var is Expr`` with `Expr` a
    :class:`Struct` tree over ``+ - * / mod`` and ground leaves."""

    __slots__ = ("target", "expr", "_hash")

    def __init__(self, target, expr):
        self.target = target
        self.expr = coerce_term(expr)
        self._hash = hash(("Assignment", target, self.expr))

    def variables(self):
        yield from self.target.variables()
        yield from self.expr.variables()

    def substitute(self, subst):
        return Assignment(substitute(self.target, subst), substitute(self.expr, subst))

    def __eq__(self, other):
        return (
            isinstance(other, Assignment)
            and self.target == other.target
            and self.expr == other.expr
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Assignment(%r, %r)" % (self.target, self.expr)

    def __str__(self):
        return "%s is %s" % (self.target, self.expr)


class AggregateLiteral(BodyItem):
    """An aggregate subgoal ``Result = func{Value [G1,...,Gk]; body}``.

    Semantics: evaluate `body` (a conjunction of positive literals and
    comparisons), group solutions by the grouping variables, apply
    `func` to the multiset of `value` instantiations per group (count
    uses the *set* of distinct values, matching the paper's use), and
    bind `result` per group.

    Grouping variables are the aggregate's join interface: they may be
    bound from the outer rule; `result` must be a fresh variable.
    """

    __slots__ = ("func", "result", "value", "group_by", "body", "_hash")

    def __init__(self, func, result, value, group_by, body):
        if func not in AGGREGATE_FUNCS:
            raise ValueError("unknown aggregate function: %r" % func)
        self.func = func
        self.result = result
        self.value = coerce_term(value)
        self.group_by = tuple(group_by)
        self.body = tuple(body)
        self._hash = hash(
            ("AggregateLiteral", func, result, self.value, self.group_by, self.body)
        )

    def variables(self):
        """Variables visible to the *outer* rule: result + grouping vars."""
        yield from self.result.variables()
        for g in self.group_by:
            yield from g.variables()

    def inner_variables(self):
        """All variables used inside the aggregate subgoal."""
        yield from self.value.variables()
        for g in self.group_by:
            yield from g.variables()
        for item in self.body:
            yield from item.variables()

    def substitute(self, subst):
        return AggregateLiteral(
            self.func,
            substitute(self.result, subst),
            substitute(self.value, subst),
            tuple(substitute(g, subst) for g in self.group_by),
            tuple(item.substitute(subst) for item in self.body),
        )

    def __eq__(self, other):
        return (
            isinstance(other, AggregateLiteral)
            and self.func == other.func
            and self.result == other.result
            and self.value == other.value
            and self.group_by == other.group_by
            and self.body == other.body
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "AggregateLiteral(%r, %r, %r, %r, %r)" % (
            self.func,
            self.result,
            self.value,
            self.group_by,
            self.body,
        )

    def __str__(self):
        group = ""
        if self.group_by:
            group = " [%s]" % ", ".join(str(g) for g in self.group_by)
        body = ", ".join(str(b) for b in self.body)
        return "%s = %s{%s%s; %s}" % (self.result, self.func, self.value, group, body)


class Rule:
    """A rule ``head :- body``.  A fact is a rule with an empty body."""

    __slots__ = ("head", "body", "_hash")

    def __init__(self, head, body=()):
        self.head = head
        self.body = tuple(body)
        self._hash = hash(("Rule", head, self.body))

    @property
    def is_fact(self):
        return not self.body

    def variables(self):
        yield from self.head.variables()
        for item in self.body:
            yield from item.variables()

    def positive_body_atoms(self):
        for item in self.body:
            if isinstance(item, Literal) and item.positive:
                yield item.atom

    def negative_body_atoms(self):
        for item in self.body:
            if isinstance(item, Literal) and not item.positive:
                yield item.atom

    def aggregate_literals(self):
        for item in self.body:
            if isinstance(item, AggregateLiteral):
                yield item

    def substitute(self, subst):
        return Rule(self.head.substitute(subst), tuple(b.substitute(subst) for b in self.body))

    def __eq__(self, other):
        return (
            isinstance(other, Rule)
            and self.head == other.head
            and self.body == other.body
        )

    def __hash__(self):
        return self._hash

    def __repr__(self):
        return "Rule(%r, %r)" % (self.head, self.body)

    def __str__(self):
        if self.is_fact:
            return "%s." % self.head
        return "%s :- %s." % (self.head, ", ".join(str(b) for b in self.body))


class Program:
    """An ordered, duplicate-free collection of rules and facts."""

    def __init__(self, rules=()):
        self._rules: List[Rule] = []
        self._seen = set()
        for rule in rules:
            self.add(rule)

    def add(self, rule):
        """Add one rule; duplicates are silently ignored."""
        if rule not in self._seen:
            self._seen.add(rule)
            self._rules.append(rule)
        return self

    def extend(self, rules):
        for rule in rules:
            self.add(rule)
        return self

    def add_fact(self, pred, *args):
        """Convenience: add a ground fact ``pred(args)``."""
        self.add(Rule(Atom(pred, args)))
        return self

    @property
    def rules(self):
        return tuple(self._rules)

    def facts(self):
        return (r for r in self._rules if r.is_fact)

    def proper_rules(self):
        return (r for r in self._rules if not r.is_fact)

    def predicates(self):
        """All (pred, arity) signatures appearing in heads."""
        return {rule.head.signature for rule in self._rules}

    def idb_predicates(self):
        """Signatures defined by at least one proper rule."""
        return {rule.head.signature for rule in self.proper_rules()}

    def edb_predicates(self):
        """Signatures defined by facts only."""
        return self.predicates() - self.idb_predicates()

    def __iter__(self):
        return iter(self._rules)

    def __len__(self):
        return len(self._rules)

    def __contains__(self, rule):
        return rule in self._seen

    def __str__(self):
        return "\n".join(str(rule) for rule in self._rules)

    def copy(self):
        return Program(self._rules)

    def merged_with(self, other):
        """A new program holding this program's rules then `other`'s."""
        merged = self.copy()
        merged.extend(other)
        return merged


def fact(pred, *args):
    """Build a ground fact rule ``pred(args).``"""
    return Rule(Atom(pred, args))


def rename_apart(rule, fresh):
    """Rename all of `rule`'s variables using the `fresh` factory.

    Used when the same rule template is instantiated several times in one
    derivation context (e.g. view unfolding) so variable names cannot
    collide.
    """
    mapping = {}
    for v in rule.variables():
        if v not in mapping:
            mapping[v] = fresh()
    return rule.substitute(mapping)
