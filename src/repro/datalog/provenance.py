"""Provenance: derivation trees for derived facts.

A mediated answer combines knowledge from several sources, domain-map
axioms and view rules; *why is this fact true?* is the first question a
mediation engineer asks.  :func:`explain` reconstructs a proof tree for
a ground atom from the evaluated model:

* an EDB fact explains itself,
* a derived atom is explained by a rule instance whose positive body
  atoms are recursively explained, whose negative subgoals are justified
  by absence from the model (closed world), and whose builtins are
  checked directly,
* cyclic justifications are rejected (an atom may not support itself),
  so the returned tree is always well-founded.

Reconstruction is top-down over the *already computed* model, so it
never derives anything new; it only arranges existing facts into a
proof.
"""

from __future__ import annotations

from typing import Dict, List, Optional, Set, Tuple

from ..errors import EvaluationError
from .ast import AggregateLiteral, Assignment, Atom, Comparison, Literal, Program, Rule
from .engine import _Evaluator, _order_body_items, evaluate
from .terms import substitute


class Derivation:
    """One node of a proof tree.

    `derived_at` is an optional (stratum, round) pair recording when
    the evaluator first derived this atom — filled in from
    :class:`~repro.obs.EvaluationMetrics` when the evaluation ran
    under a tracer (see :func:`explain`'s `metrics` argument).
    """

    def __init__(self, atom, rule=None, children=(), note=None, derived_at=None):
        self.atom = atom
        self.rule = rule
        self.children = list(children)
        self.note = note
        self.derived_at = derived_at

    def annotate(self, metrics):
        """Recursively attach (stratum, round) pairs from an
        :class:`~repro.obs.EvaluationMetrics` record; returns self."""
        if metrics is not None and metrics.derived_at:
            for node in self._walk():
                node.derived_at = metrics.derived_at.get(node.atom)
        return self

    def _walk(self):
        yield self
        for child in self.children:
            yield from child._walk()

    @property
    def is_fact(self):
        return self.rule is not None and self.rule.is_fact

    def depth(self):
        if not self.children:
            return 1
        return 1 + max(child.depth() for child in self.children)

    def leaves(self):
        """The EDB facts / builtin checks this proof bottoms out in."""
        if not self.children:
            return [self]
        out = []
        for child in self.children:
            out.extend(child.leaves())
        return out

    def format(self, indent=0):
        pad = "  " * indent
        label = str(self.atom)
        if self.note:
            label = "%s   [%s]" % (label, self.note)
        elif self.rule is not None and self.rule.is_fact:
            label += "   [fact]"
        elif self.rule is not None:
            label += "   [rule: %s]" % self.rule
        if self.derived_at is not None:
            label += "   (stratum %d, round %d)" % self.derived_at
        lines = [pad + label]
        for child in self.children:
            lines.append(child.format(indent + 1))
        return "\n".join(lines)

    def __str__(self):
        return self.format()

    def __repr__(self):
        return "Derivation(%s, children=%d)" % (self.atom, len(self.children))


class _Explainer:
    def __init__(self, program, store):
        self.program = program
        self.store = store
        self.rules_by_sig: Dict[Tuple[str, int], List[Rule]] = {}
        for rule in program:
            self.rules_by_sig.setdefault(rule.head.signature, []).append(rule)
        self.memo: Dict[Atom, Derivation] = {}
        self.solver = _Evaluator(store)

    def explain(self, atom, path):
        if atom in self.memo:
            return self.memo[atom]
        if atom in path:
            return None  # no self-supporting proofs
        if not self.store.contains(atom):
            return None
        path = path | {atom}

        candidates = self.rules_by_sig.get(atom.signature, ())
        # facts first: the shortest possible proof
        for rule in candidates:
            if rule.is_fact and rule.head == atom:
                derivation = Derivation(atom, rule)
                self.memo[atom] = derivation
                return derivation
        for rule in candidates:
            if rule.is_fact:
                continue
            derivation = self._try_rule(atom, rule, path)
            if derivation is not None:
                self.memo[atom] = derivation
                return derivation
        return None

    def _try_rule(self, atom, rule, path):
        from .terms import unify

        subst = {}
        for pattern, ground in zip(rule.head.args, atom.args):
            subst = unify(pattern, ground, subst)
            if subst is None:
                return None
        body = _order_body_items(list(rule.body))
        for solution in self.solver._solve(body, 0, subst, None, None):
            children = self._explain_body(rule.body, solution, path)
            if children is not None:
                return Derivation(atom, rule, children)
        return None

    def _explain_body(self, body, solution, path):
        children: List[Derivation] = []
        for item in body:
            if isinstance(item, Literal):
                ground = item.atom.substitute(solution)
                if item.positive:
                    child = self.explain(ground, path)
                    if child is None:
                        return None
                    children.append(child)
                else:
                    children.append(
                        Derivation(ground, note="absent (closed world)")
                    )
            elif isinstance(item, Comparison):
                children.append(
                    Derivation(item.substitute(solution), note="builtin")
                )
            elif isinstance(item, Assignment):
                children.append(
                    Derivation(item.substitute(solution), note="arithmetic")
                )
            elif isinstance(item, AggregateLiteral):
                children.append(
                    Derivation(item.substitute(solution), note="aggregate")
                )
        return children


def explain(program, atom, result=None, metrics=None):
    """Build a :class:`Derivation` for a ground atom, or None.

    Args:
        program: the program that was (or will be) evaluated.
        atom: the ground atom to explain.
        result: a prior :class:`EvaluationResult` to reuse; evaluated
            fresh when omitted.
        metrics: an :class:`~repro.obs.EvaluationMetrics` whose
            ``derived_at`` map annotates each proof node with the
            (stratum, round) it was first derived in.  Defaults to
            ``result.metrics`` when the evaluation ran under a tracer.
    """
    if not atom.is_ground():
        raise EvaluationError("can only explain ground atoms, got %s" % atom)
    if result is None:
        result = evaluate(program)
    if metrics is None:
        metrics = getattr(result, "metrics", None)
    explainer = _Explainer(program, result.store)
    derivation = explainer.explain(atom, frozenset())
    if derivation is not None:
        derivation.annotate(metrics)
    return derivation
