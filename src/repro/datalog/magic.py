"""Magic-set transformation: goal-directed bottom-up evaluation.

The mediator's query processing "pushes down" selections (Section 5);
magic sets is the corresponding rule-rewriting technique for the
Datalog tier: given a goal with bound arguments, the program is
rewritten so bottom-up evaluation only derives facts *relevant* to the
goal, instead of materializing whole relations.

The implementation is the generalized magic-set transformation with
left-to-right sideways information passing and inline supplementary
bodies (each magic rule repeats the preceding subgoals rather than
introducing supplementary predicates — simpler, same answers):

* the goal's constant positions give the initial *adornment* (``b`` for
  bound, ``f`` for free);
* each reachable IDB predicate/adornment pair gets adorned rules whose
  bodies are guarded by a ``_magic_p_<ad>`` literal over the bound
  arguments;
* magic rules propagate bindings into body IDB subgoals;
* EDB predicates, builtins and comparisons pass through untouched;
* negated or aggregated subgoals are *not* restricted: their predicates
  (and everything below them) are evaluated in full, keeping the
  transformation sound for stratified programs.

:func:`magic_query` is the drop-in replacement for
:func:`repro.datalog.engine.query` that applies the transformation
first; equivalence is property-tested.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import EvaluationError
from .ast import AggregateLiteral, Assignment, Atom, Comparison, Literal, Program, Rule
from .engine import evaluate, match_atom
from .terms import Var


def _adornment_of(atom, bound_vars):
    """The b/f adornment string of `atom` given bound variables."""
    flags = []
    for arg in atom.args:
        arg_vars = set(arg.variables())
        if not arg_vars:  # ground argument
            flags.append("b")
        elif arg_vars <= bound_vars:
            flags.append("b")
        else:
            flags.append("f")
    return "".join(flags)


def _adorned_name(pred, adornment):
    return "%s__%s" % (pred, adornment)


def _magic_name(pred, adornment):
    return "_magic_%s__%s" % (pred, adornment)


def _bound_args(atom, adornment):
    return tuple(
        arg for arg, flag in zip(atom.args, adornment) if flag == "b"
    )


class MagicTransform:
    """The rewriting of one program for one goal."""

    def __init__(self, program, goal):
        self.program = program
        self.goal = goal
        self.idb = program.idb_predicates()
        self.rules_by_pred: Dict[Tuple[str, int], List[Rule]] = {}
        for rule in program:
            self.rules_by_pred.setdefault(rule.head.signature, []).append(rule)
        self.output = Program()
        self.done_adorned: Set[Tuple[str, int, str]] = set()
        self.full_predicates: Set[Tuple[str, int]] = set()

    def run(self):
        """Apply the transformation; returns (program, adorned goal)."""
        goal_adornment = _adornment_of(self.goal, set())
        if "b" not in goal_adornment or self.goal.signature not in self.idb:
            # Nothing to specialize: fall back to the original program.
            return self.program, self.goal

        # seed fact
        seed_args = _bound_args(self.goal, goal_adornment)
        self.output.add(Rule(Atom(_magic_name(self.goal.pred, goal_adornment), seed_args)))
        self._process(self.goal.pred, len(self.goal.args), goal_adornment)

        # facts and untouched (EDB / full) predicates
        for rule in self.program:
            if rule.head.signature not in self.idb:
                self.output.add(rule)
        for signature in sorted(self.full_predicates):
            self._emit_full(signature, set())

        adorned_goal = Atom(
            _adorned_name(self.goal.pred, goal_adornment), self.goal.args
        )
        return self.output, adorned_goal

    # -- helpers ------------------------------------------------------------

    def _emit_full(self, signature, emitting):
        """Copy a predicate's rules (and its IDB dependencies) verbatim."""
        if signature in emitting:
            return
        emitting = emitting | {signature}
        for rule in self.rules_by_pred.get(signature, ()):
            self.output.add(rule)
            for item in rule.body:
                for dep in _idb_deps(item, self.idb):
                    self._emit_full(dep, emitting)

    def _process(self, pred, arity, adornment):
        key = (pred, arity, adornment)
        if key in self.done_adorned:
            return
        self.done_adorned.add(key)
        for rule in self.rules_by_pred.get((pred, arity), ()):
            self._adorn_rule(rule, adornment)

    def _adorn_rule(self, rule, adornment):
        head = rule.head
        bound_head_args = _bound_args(head, adornment)
        magic_literal = Literal(
            Atom(_magic_name(head.pred, adornment), bound_head_args)
        )
        bound_vars: Set[Var] = set()
        for arg in bound_head_args:
            bound_vars |= set(arg.variables())

        new_body: List = [magic_literal]
        prefix: List = [magic_literal]  # supplementary body so far
        for item in rule.body:
            if isinstance(item, Literal) and item.positive:
                signature = item.atom.signature
                if signature in self.idb:
                    sub_adornment = _adornment_of(item.atom, bound_vars)
                    if "b" in sub_adornment:
                        # magic rule: how bindings reach this subgoal
                        magic_head = Atom(
                            _magic_name(item.atom.pred, sub_adornment),
                            _bound_args(item.atom, sub_adornment),
                        )
                        self.output.add(Rule(magic_head, tuple(prefix)))
                        self._process(
                            item.atom.pred, item.atom.arity, sub_adornment
                        )
                        adorned = Literal(
                            Atom(
                                _adorned_name(item.atom.pred, sub_adornment),
                                item.atom.args,
                            )
                        )
                        new_body.append(adorned)
                        prefix.append(adorned)
                    else:
                        # no bindings flow in: evaluate in full
                        self.full_predicates.add(signature)
                        new_body.append(item)
                        prefix.append(item)
                else:
                    new_body.append(item)
                    prefix.append(item)
                bound_vars |= set(item.atom.variables())
            elif isinstance(item, Literal):  # negation: never restricted
                if item.atom.signature in self.idb:
                    self.full_predicates.add(item.atom.signature)
                new_body.append(item)
                prefix.append(item)
            elif isinstance(item, AggregateLiteral):
                for dep in _idb_deps(item, self.idb):
                    self.full_predicates.add(dep)
                new_body.append(item)
                prefix.append(item)
                bound_vars |= set(item.variables())
            else:  # comparisons / assignments
                new_body.append(item)
                prefix.append(item)
                bound_vars |= set(item.variables())

        adorned_head = Atom(_adorned_name(rule.head.pred, adornment), head.args)
        self.output.add(Rule(adorned_head, tuple(new_body)))


def _idb_deps(item, idb):
    deps = []
    if isinstance(item, Literal):
        if item.atom.signature in idb:
            deps.append(item.atom.signature)
    elif isinstance(item, AggregateLiteral):
        for inner in item.body:
            deps.extend(_idb_deps(inner, idb))
    return deps


def magic_transform(program, goal):
    """Rewrite `program` for goal-directed evaluation of `goal`.

    Returns ``(rewritten_program, rewritten_goal)``.  When the goal has
    no bound argument (or is EDB), the original program/goal are
    returned unchanged.
    """
    return MagicTransform(program, goal).run()


def magic_query(program, goal, check_safety=True):
    """Goal-directed equivalent of :func:`repro.datalog.query`."""
    rewritten, adorned_goal = magic_transform(program, goal)
    result = evaluate(rewritten, check_safety=check_safety)
    return match_atom(result.store, adorned_goal)
