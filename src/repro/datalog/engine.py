"""Bottom-up evaluation: semi-naive, stratified, and well-founded.

The evaluator computes the minimal model of a safe program:

* **Stratified programs** are split into strata (:mod:`.stratify`) and
  each stratum is saturated by semi-naive iteration; negated and
  aggregated subgoals only ever reference relations completed in earlier
  strata, so they are evaluated against the accumulating store directly.
* **Non-stratifiable negation** falls back to the *alternating fixpoint*
  computation of the well-founded model (Van Gelder): a growing
  underestimate of true facts and a shrinking overestimate are iterated
  until both stabilize; facts in the overestimate but not the
  underestimate are *undefined*.  This is exactly the semantics the
  paper requires of the GCM rule language ("Datalog with well-founded
  negation", Section 3).

Rule bodies are greedily reordered at evaluation time so builtins and
negation run as soon as their variables are bound, which the safety
check guarantees is always eventually possible.
"""

from __future__ import annotations

from typing import Dict, Iterable, Iterator, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..errors import EvaluationError, StratificationError
from .ast import AggregateLiteral, Assignment, Atom, Comparison, Literal, Program, Rule
from .builtins import solve_assignment, solve_comparison
from .safety import check_program_safety
from .store import FactStore
from .stratify import is_aggregate_stratified, stratify
from .terms import Const, Struct, Term, Var, substitute, term_sort_key, unify, walk


class EvaluationResult:
    """Outcome of evaluating a program.

    Attributes:
        store: all facts that are *true* in the computed model.
        undefined: facts with *undefined* truth value (empty unless the
            program needed the well-founded fallback).
        used_well_founded: True when the alternating fixpoint ran.
        strata: the stratification used (None under the fallback).
        metrics: an :class:`~repro.obs.EvaluationMetrics` record (rule
            firings, per-stratum/round fact counts, the ``derived_at``
            map) — populated only when a tracer was active during
            evaluation, None otherwise.
    """

    def __init__(self, store, undefined=None, used_well_founded=False, strata=None,
                 metrics=None):
        self.store = store
        self.undefined = undefined if undefined is not None else FactStore()
        self.used_well_founded = used_well_founded
        self.strata = strata
        self.metrics = metrics

    def is_true(self, atom):
        return self.store.contains(atom)

    def is_undefined(self, atom):
        return self.undefined.contains(atom)

    def facts(self, pred=None):
        return self.store.sorted_atoms(pred)


#: default ceiling on derived facts: compound (Skolem) terms make
#: non-terminating programs easy to write; hitting the ceiling raises a
#: diagnosable error instead of looping forever.
DEFAULT_MAX_FACTS = 2_000_000


def evaluate(program, check_safety=True, strategy="seminaive", max_facts=None):
    """Evaluate `program` and return an :class:`EvaluationResult`.

    Stratifiable programs get the stratified semi-naive treatment; with
    recursive negation the well-founded model is computed instead.
    Aggregation through recursion is always an error.

    `strategy` selects the fixpoint iteration: ``"seminaive"``
    (default) restricts recursive rules to the previous round's delta;
    ``"naive"`` re-fires every rule against the full store each round —
    kept for the ablation benchmark.

    `max_facts` bounds the derived-fact count (default
    :data:`DEFAULT_MAX_FACTS`); programs that create unboundedly many
    Skolem terms fail with :class:`EvaluationError` rather than running
    forever.
    """
    if strategy not in ("seminaive", "naive"):
        raise EvaluationError("unknown evaluation strategy %r" % strategy)
    if check_safety:
        check_program_safety(program)
    tracer = obs.active()
    metrics = obs.EvaluationMetrics() if tracer.enabled else None
    try:
        strata = stratify(program)
    except StratificationError:
        if not is_aggregate_stratified(program):
            raise
        true_store, undefined = well_founded_model(
            program, check_safety=False, metrics=metrics
        )
        if metrics is not None:
            metrics.store_size = len(true_store)
            metrics.undefined_count = len(undefined)
            tracer.count("datalog.evaluations")
        return EvaluationResult(
            true_store,
            undefined=undefined,
            used_well_founded=True,
            metrics=metrics,
        )
    store = FactStore()
    evaluator = _Evaluator(
        store,
        seminaive=(strategy == "seminaive"),
        max_facts=max_facts if max_facts is not None else DEFAULT_MAX_FACTS,
        tracer=tracer,
    )
    for index, stratum in enumerate(strata):
        rules = [r for r in program if r.head.signature in stratum]
        if metrics is None:
            evaluator.saturate(rules)
            continue
        stratum_metrics = metrics.begin_stratum(
            index, ("%s/%d" % sig for sig in stratum)
        )
        with tracer.span(
            "datalog.stratum", index=index, relations=len(stratum)
        ) as span:
            evaluator.saturate(
                rules,
                stratum_metrics=stratum_metrics,
                derived_at=metrics.derived_at,
            )
            span.set(
                facts_derived=stratum_metrics.facts_derived,
                rounds=len(stratum_metrics.rounds),
            )
    if metrics is not None:
        metrics.rule_firings = evaluator.rule_firings
        metrics.store_size = len(store)
        tracer.count("datalog.evaluations")
        tracer.count("datalog.rule_firings", evaluator.rule_firings)
        tracer.count("datalog.facts_derived", metrics.facts_derived)
        tracer.gauge("datalog.store_size", len(store))
    return EvaluationResult(store, strata=strata, metrics=metrics)


def query(program, goal, check_safety=True):
    """Evaluate `program` and return all bindings of `goal`'s variables.

    `goal` is an :class:`Atom` (possibly with variables).  The result is
    a deterministically ordered list of dicts mapping variable names to
    Python values (Const payloads) or terms (for Struct results).
    """
    result = evaluate(program, check_safety=check_safety)
    return match_atom(result.store, goal)


def match_atom(store, goal):
    """All bindings of `goal` against a fact store (deterministic order)."""
    solutions = []
    for args in store.rows(goal.signature):
        subst = {}
        ok = True
        for pattern, ground in zip(goal.args, args):
            unified = unify(pattern, ground, subst)
            if unified is None:
                ok = False
                break
            subst = unified
        if ok:
            solutions.append(_externalize(subst, goal))
    solutions.sort(key=lambda binding: sorted(
        (name, _sort_key_for(value)) for name, value in binding.items()
    ))
    return solutions


def _sort_key_for(value):
    if isinstance(value, Term):
        return term_sort_key(value)
    return (0, type(value).__name__, repr(value))


def _externalize(subst, goal):
    binding = {}
    for v in set(goal.variables()):
        if v.is_anonymous:
            continue
        value = substitute(v, subst)
        if isinstance(value, Const):
            binding[v.name] = value.value
        else:
            binding[v.name] = value
    return binding


def well_founded_model(program, check_safety=True, max_rounds=10_000, metrics=None):
    """Compute the well-founded model by alternating fixpoint.

    Returns ``(true_store, undefined_store)``.  The iteration maintains
    an underestimate T (facts certainly true) and an overestimate U
    (facts not certainly false): ``T_{i+1} = Gamma(U_i)`` and
    ``U_{i+1} = Gamma(T_{i+1})`` where Gamma(J) evaluates the program
    with ``not q`` read as ``q not in J``.  T grows, U shrinks, and both
    converge because the ground instantiation is finite for safe,
    terminating programs.

    `metrics` is an optional :class:`~repro.obs.EvaluationMetrics`
    whose ``wf_alternations`` records how many T/U alternations ran.
    """
    if check_safety:
        check_program_safety(program)
    tracer = obs.active()
    rules = list(program)
    with tracer.span("datalog.wellfounded", rules=len(rules)) as wf_span:
        true_estimate = FactStore()  # T: certainly-true facts
        possible = _gamma(rules, FactStore())  # U_0 = Gamma(empty): everything possible
        alternations = 0
        for _round in range(max_rounds):
            with tracer.span("datalog.wf_round", round=_round):
                new_true = _gamma(rules, possible)
                new_possible = _gamma(rules, new_true)
            alternations += 1
            if new_true.same_facts(true_estimate) and new_possible.same_facts(possible):
                break
            true_estimate, possible = new_true, new_possible
        else:
            raise EvaluationError("well-founded computation did not converge")
        if metrics is not None:
            metrics.wf_alternations = alternations
        if tracer.enabled:
            wf_span.set(alternations=alternations)
            tracer.count("datalog.wf_alternations", alternations)
    undefined = FactStore()
    for atom in possible.iter_atoms():
        if not true_estimate.contains(atom):
            undefined.add(atom)
    return true_estimate, undefined


def _gamma(rules, anti_store):
    """Least model of `rules` with negation evaluated against `anti_store`."""
    store = FactStore()
    evaluator = _Evaluator(store, negation_store=anti_store)
    evaluator.saturate(rules)
    return store


class _Evaluator:
    """Semi-naive saturation of a rule set against a shared store.

    With `negation_store` set, negated subgoals are tested against that
    fixed store (well-founded Gamma operator); otherwise they read the
    accumulating store, which is only sound when the evaluated rules are
    a stratum whose negated dependencies are already complete.
    """

    def __init__(self, store, negation_store=None, seminaive=True, max_facts=None,
                 tracer=None):
        self.store = store
        self.negation_store = negation_store
        self.seminaive = seminaive
        self.max_facts = max_facts
        self.tracer = tracer if tracer is not None else obs.NOOP
        #: rule-instance firings (heads produced, pre-dedup); only
        #: counted while a stratum_metrics record is being filled
        self.rule_firings = 0

    def _check_budget(self):
        if self.max_facts is not None and len(self.store) > self.max_facts:
            raise EvaluationError(
                "evaluation exceeded max_facts=%d (non-terminating Skolem "
                "recursion?)" % self.max_facts
            )

    # -- saturation --------------------------------------------------

    def saturate(self, rules, stratum_metrics=None, derived_at=None):
        facts = [r for r in rules if r.is_fact]
        proper = [r for r in rules if not r.is_fact]
        collect = stratum_metrics is not None
        stratum_index = stratum_metrics.index if collect else 0
        delta = FactStore()
        for rule in facts:
            if self.store.add(rule.head):
                delta.add(rule.head)
                if collect and derived_at is not None:
                    derived_at.setdefault(rule.head, (stratum_index, 0))

        local_sigs = {r.head.signature for r in rules}
        ordered = [(rule, _order_body(rule)) for rule in proper]

        # First full pass: every rule against the complete store.  Heads
        # are buffered per rule so the store is never mutated while a
        # candidate set from the same relation is being iterated.
        for rule, body in ordered:
            heads = [
                rule.head.substitute(subst)
                for subst in self._solve(body, 0, {}, None, None)
            ]
            if collect:
                self.rule_firings += len(heads)
            for head in heads:
                if not head.is_ground():
                    raise EvaluationError("derived non-ground fact %s" % head)
                if self.store.add(head):
                    delta.add(head)
                    if collect and derived_at is not None:
                        derived_at.setdefault(head, (stratum_index, 0))
        if collect:
            stratum_metrics.rounds.append(len(delta))
            stratum_metrics.facts_derived += len(delta)

        # Semi-naive rounds: require one recursive literal in the delta.
        recursive = []
        for rule, body in ordered:
            delta_positions = [
                i
                for i, item in enumerate(body)
                if isinstance(item, Literal)
                and item.positive
                and item.atom.signature in local_sigs
            ]
            if delta_positions:
                recursive.append((rule, body, delta_positions))

        if not self.seminaive:
            # Naive ablation: every recursive rule refires against the
            # full store each round until nothing new is derived.
            changed = bool(delta)
            round_no = 0
            while changed:
                changed = False
                round_no += 1
                derived_this_round = 0
                for rule, body, _positions in recursive:
                    heads = [
                        rule.head.substitute(subst)
                        for subst in self._solve(body, 0, {}, None, None)
                    ]
                    if collect:
                        self.rule_firings += len(heads)
                    for head in heads:
                        if self.store.add(head):
                            changed = True
                            derived_this_round += 1
                            if collect and derived_at is not None:
                                derived_at.setdefault(
                                    head, (stratum_index, round_no)
                                )
                if collect:
                    stratum_metrics.rounds.append(derived_this_round)
                    stratum_metrics.facts_derived += derived_this_round
                self._check_budget()
            return

        if not recursive:
            self._check_budget()
            return

        round_no = 0
        while len(delta):
            round_no += 1
            with self.tracer.span(
                "datalog.round", round=round_no, delta_in=len(delta)
            ) as round_span:
                new_delta = FactStore()
                for rule, body, delta_positions in recursive:
                    for position in delta_positions:
                        heads = [
                            rule.head.substitute(subst)
                            for subst in self._solve(body, 0, {}, position, delta)
                        ]
                        if collect:
                            self.rule_firings += len(heads)
                        for head in heads:
                            if not head.is_ground():
                                raise EvaluationError(
                                    "derived non-ground fact %s" % head
                                )
                            if self.store.add(head):
                                new_delta.add(head)
                                if collect and derived_at is not None:
                                    derived_at.setdefault(
                                        head, (stratum_index, round_no)
                                    )
                if collect:
                    stratum_metrics.rounds.append(len(new_delta))
                    stratum_metrics.facts_derived += len(new_delta)
                    round_span.set(delta_out=len(new_delta))
            self._check_budget()
            delta = new_delta

    # -- body solving ------------------------------------------------

    def _solve(self, body, index, subst, delta_position, delta):
        """Yield substitutions satisfying body[index:] under `subst`.

        When `delta_position` is not None, the literal at that body
        index draws its candidate facts from `delta` instead of the full
        store (semi-naive restriction).
        """
        if index == len(body):
            yield subst
            return
        item = body[index]
        if isinstance(item, Literal):
            if item.positive:
                source = (
                    delta
                    if delta_position == index and delta is not None
                    else self.store
                )
                atom = item.atom
                for args in source.candidates(atom, subst):
                    new = subst
                    ok = True
                    for pattern, ground in zip(atom.args, args):
                        new = unify(pattern, ground, new)
                        if new is None:
                            ok = False
                            break
                    if ok:
                        yield from self._solve(
                            body, index + 1, new, delta_position, delta
                        )
            else:
                ground = item.atom.substitute(subst)
                if not ground.is_ground():
                    raise EvaluationError(
                        "negated subgoal %s not ground at evaluation time"
                        % ground
                    )
                target = (
                    self.negation_store
                    if self.negation_store is not None
                    else self.store
                )
                if not target.contains(ground):
                    yield from self._solve(
                        body, index + 1, subst, delta_position, delta
                    )
        elif isinstance(item, Comparison):
            for new in solve_comparison(item, subst):
                yield from self._solve(body, index + 1, new, delta_position, delta)
        elif isinstance(item, Assignment):
            for new in solve_assignment(item, subst):
                yield from self._solve(body, index + 1, new, delta_position, delta)
        elif isinstance(item, AggregateLiteral):
            for new in self._solve_aggregate(item, subst):
                yield from self._solve(body, index + 1, new, delta_position, delta)
        else:
            raise EvaluationError("unsupported body item %r" % (item,))

    def _solve_aggregate(self, agg, subst):
        """Group the aggregate subgoal's solutions and bind the result."""
        inner_body = _order_body_items(list(agg.body))
        groups: Dict[Tuple, List] = {}
        for inner in self._solve(inner_body, 0, dict(subst), None, None):
            key = tuple(substitute(g, inner) for g in agg.group_by)
            value = substitute(agg.value, inner)
            if not value.is_ground():
                raise EvaluationError(
                    "aggregate value %s not ground" % value
                )
            groups.setdefault(key, []).append(value)
        for key, values in sorted(
            groups.items(),
            key=lambda kv: tuple(term_sort_key(t) for t in kv[0]),
        ):
            result_value = _apply_aggregate(agg.func, values)
            new = dict(subst)
            ok = True
            for pattern, ground in zip(agg.group_by, key):
                unified = unify(pattern, ground, new)
                if unified is None:
                    ok = False
                    break
                new = unified
            if not ok:
                continue
            unified = unify(agg.result, Const(result_value), new)
            if unified is not None:
                yield unified


def _apply_aggregate(func, values):
    if func == "count":
        return len(set(values))
    numbers = []
    for v in values:
        if not isinstance(v, Const) or isinstance(v.value, str):
            raise EvaluationError(
                "aggregate %s over non-numeric value %s" % (func, v)
            )
        numbers.append(v.value)
    if not numbers:
        raise EvaluationError("aggregate %s over empty group" % func)
    if func == "sum":
        return sum(numbers)
    if func == "min":
        return min(numbers)
    if func == "max":
        return max(numbers)
    if func == "avg":
        return sum(numbers) / len(numbers)
    raise EvaluationError("unknown aggregate %r" % func)


def _order_body(rule):
    """Greedy evaluation order for a rule body (see module docstring)."""
    return _order_body_items(list(rule.body))


def _order_body_items(items):
    ordered = []
    bound: Set[Var] = set()
    remaining = list(items)
    while remaining:
        chosen = None
        # Priority 1: ready builtins / negation / aggregate (cheap filters).
        for item in remaining:
            if _is_ready_filter(item, bound):
                chosen = item
                break
        # Priority 2: the first positive literal (generator).
        if chosen is None:
            for item in remaining:
                if isinstance(item, Literal) and item.positive:
                    chosen = item
                    break
        # Priority 3: an '=' comparison with one groundable side, an
        # aggregate (they can self-bind), or anything left.
        if chosen is None:
            for item in remaining:
                if isinstance(item, (AggregateLiteral, Comparison, Assignment)):
                    chosen = item
                    break
        if chosen is None:
            chosen = remaining[0]
        remaining.remove(chosen)
        ordered.append(chosen)
        for v in chosen.variables():
            bound.add(v)
        if isinstance(chosen, AggregateLiteral):
            bound.update(chosen.inner_variables())
    return ordered


def _is_ready_filter(item, bound):
    """Is `item` a pure filter whose variables are already bound?"""
    if isinstance(item, Literal) and not item.positive:
        return all(v in bound or v.is_anonymous for v in item.variables())
    if isinstance(item, Comparison):
        if item.op == "=":
            left_ok = all(v in bound for v in item.left.variables())
            right_ok = all(v in bound for v in item.right.variables())
            return left_ok or right_ok
        return all(v in bound for v in item.variables())
    if isinstance(item, Assignment):
        return all(v in bound for v in item.expr.variables())
    return False
