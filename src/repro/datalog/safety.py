"""Safety (range restriction) analysis for rules.

A rule is *safe* when every variable it uses can be bound by the time it
is needed:

* head variables must be limited — bound by a positive body literal, an
  ``=`` chain to a constant/limited variable, an ``is`` assignment over
  limited variables, or an aggregate result/grouping variable;
* variables under negation must be limited by the positive part;
* non-``=`` comparisons and arithmetic need all their variables limited;
* inside an aggregate subgoal the value and grouping variables must be
  limited by the subgoal's own positive part (the subgoal is evaluated
  as its own little rule body).

The check runs before evaluation; unsafe rules raise
:class:`~repro.errors.SafetyError` with a message naming the offending
variables, which keeps mistakes in hand-written mediator rules easy to
diagnose.
"""

from __future__ import annotations

from typing import Iterable, Set

from ..errors import SafetyError
from .ast import AggregateLiteral, Assignment, Comparison, Literal, Rule
from .terms import Const, Struct, Term, Var


def _term_vars(term):
    return set(term.variables())


def _limited_variables(body):
    """Compute the limited-variable set of a body by fixpoint.

    Starts from variables of positive literals and aggregate outputs,
    then propagates through ``=`` comparisons and ``is`` assignments
    until stable.
    """
    limited: Set[Var] = set()
    for item in body:
        if isinstance(item, Literal) and item.positive:
            limited |= set(item.atom.variables())
        elif isinstance(item, AggregateLiteral):
            # Grouping variables are bound by the grouped solutions and
            # the result is bound by the aggregate itself.
            limited |= _term_vars(item.result)
            for g in item.group_by:
                limited |= _term_vars(g)
    changed = True
    while changed:
        changed = False
        for item in body:
            if isinstance(item, Comparison) and item.op == "=":
                left_vars = _term_vars(item.left)
                right_vars = _term_vars(item.right)
                if item.left.is_ground() or left_vars <= limited:
                    if not right_vars <= limited:
                        limited |= right_vars
                        changed = True
                if item.right.is_ground() or right_vars <= limited:
                    if not left_vars <= limited:
                        limited |= left_vars
                        changed = True
            elif isinstance(item, Assignment):
                if _term_vars(item.expr) <= limited:
                    target_vars = _term_vars(item.target)
                    if not target_vars <= limited:
                        limited |= target_vars
                        changed = True
    return limited


def check_rule_safety(rule):
    """Validate one rule; raises :class:`SafetyError` on violation."""
    limited = _limited_variables(rule.body)

    head_vars = set(rule.head.variables())
    unbound_head = head_vars - limited
    if unbound_head:
        raise SafetyError(
            "unsafe rule %s: head variables %s are not range-restricted"
            % (rule, _names(unbound_head))
        )

    for item in rule.body:
        if isinstance(item, Literal) and not item.positive:
            neg_vars = set(item.atom.variables())
            free = {v for v in neg_vars - limited if not v.is_anonymous}
            if free:
                raise SafetyError(
                    "unsafe rule %s: variables %s occur only under negation"
                    % (rule, _names(free))
                )
        elif isinstance(item, Comparison) and item.op != "=":
            cmp_vars = set(item.variables())
            free = cmp_vars - limited
            if free:
                raise SafetyError(
                    "unsafe rule %s: comparison %s uses unbound variables %s"
                    % (rule, item, _names(free))
                )
        elif isinstance(item, Assignment):
            free = _term_vars(item.expr) - limited
            if free:
                raise SafetyError(
                    "unsafe rule %s: arithmetic %s uses unbound variables %s"
                    % (rule, item, _names(free))
                )
        elif isinstance(item, AggregateLiteral):
            _check_aggregate_safety(rule, item)


def _check_aggregate_safety(rule, agg):
    inner_limited = _limited_variables(agg.body)
    value_vars = _term_vars(agg.value)
    free_value = value_vars - inner_limited
    if free_value:
        raise SafetyError(
            "unsafe rule %s: aggregate value variables %s not bound by "
            "the aggregate body" % (rule, _names(free_value))
        )
    for g in agg.group_by:
        free_group = _term_vars(g) - inner_limited
        if free_group:
            raise SafetyError(
                "unsafe rule %s: aggregate grouping variables %s not bound "
                "by the aggregate body" % (rule, _names(free_group))
            )
    if not isinstance(agg.result, Var):
        raise SafetyError(
            "unsafe rule %s: aggregate result %s must be a variable"
            % (rule, agg.result)
        )
    for item in agg.body:
        if isinstance(item, Literal) and not item.positive:
            raise SafetyError(
                "unsafe rule %s: negation inside aggregate subgoals is not "
                "supported" % rule
            )
        if isinstance(item, AggregateLiteral):
            raise SafetyError(
                "unsafe rule %s: nested aggregates are not supported" % rule
            )


def check_program_safety(program):
    """Validate every rule of a program."""
    for rule in program:
        check_rule_safety(rule)


def _names(variables):
    return ", ".join(sorted(v.name for v in variables))
