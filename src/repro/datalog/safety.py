"""Safety (range restriction) analysis for rules.

A rule is *safe* when every variable it uses can be bound by the time it
is needed:

* head variables must be limited — bound by a positive body literal, an
  ``=`` chain to a constant/limited variable, an ``is`` assignment over
  limited variables, or an aggregate result/grouping variable;
* variables under negation must be limited by the positive part;
* non-``=`` comparisons and arithmetic need all their variables limited;
* inside an aggregate subgoal the value and grouping variables must be
  limited by the subgoal's own positive part (the subgoal is evaluated
  as its own little rule body).

The check runs before evaluation; unsafe rules raise
:class:`~repro.errors.SafetyError` with a message naming the offending
variables, which keeps mistakes in hand-written mediator rules easy to
diagnose.  :func:`safety_violations` is the non-raising form used by
the static analyzer (:mod:`repro.analysis`): it collects *every*
violation of a rule as unraised :class:`SafetyError` objects, each
carrying the ``MBM001``–``MBM004`` code of the violated condition, so
one lint pass reports all problems instead of the first.
"""

from __future__ import annotations

from typing import Iterable, List, Set

from ..errors import SafetyError
from .ast import AggregateLiteral, Assignment, Comparison, Literal, Rule
from .terms import Const, Struct, Term, Var

#: diagnostic codes of the individual safety conditions
CODE_HEAD_UNRESTRICTED = "MBM001"
CODE_NEGATION_UNBOUND = "MBM002"
CODE_BUILTIN_UNBOUND = "MBM003"
CODE_AGGREGATE_UNSAFE = "MBM004"


def _term_vars(term):
    return set(term.variables())


def _limited_variables(body):
    """Compute the limited-variable set of a body by fixpoint.

    Starts from variables of positive literals and aggregate outputs,
    then propagates through ``=`` comparisons and ``is`` assignments
    until stable.
    """
    limited: Set[Var] = set()
    for item in body:
        if isinstance(item, Literal) and item.positive:
            limited |= set(item.atom.variables())
        elif isinstance(item, AggregateLiteral):
            # Grouping variables are bound by the grouped solutions and
            # the result is bound by the aggregate itself.
            limited |= _term_vars(item.result)
            for g in item.group_by:
                limited |= _term_vars(g)
    changed = True
    while changed:
        changed = False
        for item in body:
            if isinstance(item, Comparison) and item.op == "=":
                left_vars = _term_vars(item.left)
                right_vars = _term_vars(item.right)
                if item.left.is_ground() or left_vars <= limited:
                    if not right_vars <= limited:
                        limited |= right_vars
                        changed = True
                if item.right.is_ground() or right_vars <= limited:
                    if not left_vars <= limited:
                        limited |= left_vars
                        changed = True
            elif isinstance(item, Assignment):
                if _term_vars(item.expr) <= limited:
                    target_vars = _term_vars(item.target)
                    if not target_vars <= limited:
                        limited |= target_vars
                        changed = True
    return limited


def safety_violations(rule):
    """Every safety violation of `rule`, as unraised errors.

    Yields :class:`SafetyError` objects in source order (head first,
    then body items left to right), each with the specific diagnostic
    code of the violated condition.  An empty result means the rule is
    safe.
    """
    limited = _limited_variables(rule.body)

    head_vars = set(rule.head.variables())
    unbound_head = head_vars - limited
    if unbound_head:
        yield SafetyError(
            "unsafe rule %s: head variables %s are not range-restricted"
            % (rule, _names(unbound_head)),
            code=CODE_HEAD_UNRESTRICTED,
        )

    for item in rule.body:
        if isinstance(item, Literal) and not item.positive:
            neg_vars = set(item.atom.variables())
            free = {v for v in neg_vars - limited if not v.is_anonymous}
            if free:
                yield SafetyError(
                    "unsafe rule %s: variables %s occur only under negation"
                    % (rule, _names(free)),
                    code=CODE_NEGATION_UNBOUND,
                )
        elif isinstance(item, Comparison) and item.op != "=":
            cmp_vars = set(item.variables())
            free = cmp_vars - limited
            if free:
                yield SafetyError(
                    "unsafe rule %s: comparison %s uses unbound variables %s"
                    % (rule, item, _names(free)),
                    code=CODE_BUILTIN_UNBOUND,
                )
        elif isinstance(item, Assignment):
            free = _term_vars(item.expr) - limited
            if free:
                yield SafetyError(
                    "unsafe rule %s: arithmetic %s uses unbound variables %s"
                    % (rule, item, _names(free)),
                    code=CODE_BUILTIN_UNBOUND,
                )
        elif isinstance(item, AggregateLiteral):
            yield from _aggregate_violations(rule, item)


def _aggregate_violations(rule, agg):
    inner_limited = _limited_variables(agg.body)
    value_vars = _term_vars(agg.value)
    free_value = value_vars - inner_limited
    if free_value:
        yield SafetyError(
            "unsafe rule %s: aggregate value variables %s not bound by "
            "the aggregate body" % (rule, _names(free_value)),
            code=CODE_AGGREGATE_UNSAFE,
        )
    for g in agg.group_by:
        free_group = _term_vars(g) - inner_limited
        if free_group:
            yield SafetyError(
                "unsafe rule %s: aggregate grouping variables %s not bound "
                "by the aggregate body" % (rule, _names(free_group)),
                code=CODE_AGGREGATE_UNSAFE,
            )
    if not isinstance(agg.result, Var):
        yield SafetyError(
            "unsafe rule %s: aggregate result %s must be a variable"
            % (rule, agg.result),
            code=CODE_AGGREGATE_UNSAFE,
        )
    for item in agg.body:
        if isinstance(item, Literal) and not item.positive:
            yield SafetyError(
                "unsafe rule %s: negation inside aggregate subgoals is not "
                "supported" % rule,
                code=CODE_AGGREGATE_UNSAFE,
            )
        if isinstance(item, AggregateLiteral):
            yield SafetyError(
                "unsafe rule %s: nested aggregates are not supported" % rule,
                code=CODE_AGGREGATE_UNSAFE,
            )


def check_rule_safety(rule):
    """Validate one rule; raises :class:`SafetyError` on violation."""
    for violation in safety_violations(rule):
        raise violation


def check_program_safety(program):
    """Validate every rule of a program."""
    for rule in program:
        check_rule_safety(rule)


def _names(variables):
    return ", ".join(sorted(v.name for v in variables))
