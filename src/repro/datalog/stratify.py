"""Predicate dependency analysis and stratification.

Builds the dependency graph over relation signatures: an edge
``head -> body`` for every body reference, labelled *negative* when the
reference is under ``not`` and *aggregated* when it occurs inside an
aggregate subgoal (aggregation behaves like negation for stratification
purposes: the aggregated relation must be fully computed first).

A program is *stratifiable* when no negative/aggregated edge lies inside
a strongly connected component.  Stratified programs are split into an
ordered list of strata (each a set of signatures) evaluated bottom-up;
programs with negation through recursion fall back to the well-founded
evaluation, and aggregation through recursion is rejected outright.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, List, Set, Tuple

import networkx as nx

from ..errors import StratificationError
from .ast import AggregateLiteral, Literal, Program

Signature = Tuple[str, int]

#: diagnostic codes of the two recursion-through-special-edge defects
CODE_NEGATION_RECURSION = "MBM005"
CODE_AGGREGATE_RECURSION = "MBM006"


class DependencyInfo:
    """Result of dependency analysis over a program."""

    def __init__(self, graph, negative_edges, aggregate_edges):
        self.graph = graph
        self.negative_edges = negative_edges
        self.aggregate_edges = aggregate_edges

    def condensation(self):
        return nx.condensation(self.graph)


def build_dependency_graph(program):
    """Construct the signature-level dependency graph of `program`."""
    graph = nx.DiGraph()
    negative_edges: Set[Tuple[Signature, Signature]] = set()
    aggregate_edges: Set[Tuple[Signature, Signature]] = set()

    for rule in program:
        head_sig = rule.head.signature
        graph.add_node(head_sig)
        for item in rule.body:
            if isinstance(item, Literal):
                dep = item.atom.signature
                graph.add_edge(head_sig, dep)
                if not item.positive:
                    negative_edges.add((head_sig, dep))
            elif isinstance(item, AggregateLiteral):
                for inner in item.body:
                    if isinstance(inner, Literal):
                        dep = inner.atom.signature
                        graph.add_edge(head_sig, dep)
                        aggregate_edges.add((head_sig, dep))
    return DependencyInfo(graph, negative_edges, aggregate_edges)


class StratificationReport:
    """The full stratification picture of one program.

    ``negative_recursive`` / ``aggregate_recursive`` list the
    (head, dependency) signature pairs whose special edge lies inside a
    strongly connected component; ``strata`` holds the bottom-up strata
    when the program is stratifiable (None otherwise).
    """

    def __init__(self, info, negative_recursive, aggregate_recursive, strata):
        self.info = info
        self.negative_recursive = negative_recursive
        self.aggregate_recursive = aggregate_recursive
        self.strata = strata

    @property
    def stratifiable(self):
        return not self.negative_recursive and not self.aggregate_recursive

    @property
    def aggregate_stratified(self):
        return not self.aggregate_recursive


def analyze_stratification(program):
    """Dependency analysis without raising: a :class:`StratificationReport`.

    Both :func:`stratify` and the static analyzer are built on this, so
    the raised error and the lint diagnostic are guaranteed to agree.
    """
    info = build_dependency_graph(program)
    scc_of: Dict[Signature, int] = {}
    condensed = info.condensation()
    for scc_id, data in condensed.nodes(data=True):
        for sig in data["members"]:
            scc_of[sig] = scc_id

    negative_recursive = sorted(
        edge for edge in info.negative_edges if scc_of[edge[0]] == scc_of[edge[1]]
    )
    aggregate_recursive = sorted(
        edge for edge in info.aggregate_edges if scc_of[edge[0]] == scc_of[edge[1]]
    )
    strata = None
    if not negative_recursive and not aggregate_recursive:
        # Topological order of the condensation gives evaluation order
        # from the leaves up: dependencies come last in nx.condensation's
        # edge direction (head -> body), so reverse the topological sort.
        order = list(reversed(list(nx.topological_sort(condensed))))
        strata = _merge_independent_strata(
            [set(condensed.nodes[scc_id]["members"]) for scc_id in order], info
        )
    return StratificationReport(
        info, negative_recursive, aggregate_recursive, strata
    )


def negation_recursion_message(head_sig, dep_sig):
    return (
        "negation through recursion: %s/%d depends negatively on "
        "%s/%d inside a cycle" % (head_sig[0], head_sig[1], dep_sig[0], dep_sig[1])
    )


def aggregate_recursion_message(head_sig, dep_sig):
    return (
        "aggregation through recursion: %s/%d aggregates over "
        "%s/%d inside a cycle" % (head_sig[0], head_sig[1], dep_sig[0], dep_sig[1])
    )


def stratify(program):
    """Compute strata for `program`.

    Returns a list of sets of signatures, ordered bottom-up: stratum 0
    must be evaluated first.  Raises :class:`StratificationError` when a
    negative or aggregated dependency is recursive.  Callers that can
    handle recursive *negation* (via the well-founded semantics) should
    catch the error and inspect :func:`is_aggregate_stratified` first.
    """
    report = analyze_stratification(program)
    if report.negative_recursive:
        head_sig, dep_sig = report.negative_recursive[0]
        raise StratificationError(
            negation_recursion_message(head_sig, dep_sig),
            code=CODE_NEGATION_RECURSION,
        )
    if report.aggregate_recursive:
        head_sig, dep_sig = report.aggregate_recursive[0]
        raise StratificationError(
            aggregate_recursion_message(head_sig, dep_sig),
            code=CODE_AGGREGATE_RECURSION,
        )
    return report.strata


def _merge_independent_strata(strata, info):
    """Collapse consecutive strata with no cross negative/aggregate edges.

    Evaluating fewer, larger strata lets semi-naive iteration share work;
    correctness only requires that negative/aggregated dependencies point
    to strictly earlier strata.
    """
    special = info.negative_edges | info.aggregate_edges
    merged: List[Set[Signature]] = []
    for stratum in strata:
        if merged:
            candidate = merged[-1]
            conflict = any(
                (head, dep) in special
                for head in stratum
                for dep in candidate
            )
            if not conflict:
                candidate |= stratum
                continue
        merged.append(set(stratum))
    return merged


def is_aggregate_stratified(program):
    """True when no aggregate edge is recursive (negation may still be)."""
    return analyze_stratification(program).aggregate_stratified


def is_stratifiable(program):
    """True when the program has no negation/aggregation through recursion."""
    return analyze_stratification(program).stratifiable
