"""Builtin evaluation: comparisons and arithmetic expressions.

Builtins operate on ground :class:`Const` values.  ``=`` additionally
acts as unification when a side is unbound.  Arithmetic expression trees
are :class:`Struct` terms with functors ``+ - * / // mod abs min max``.
"""

from __future__ import annotations

import numbers

from ..errors import EvaluationError
from .ast import Assignment, Comparison
from .terms import Const, Struct, Term, Var, substitute, unify, walk

_ARITH_BINARY = {
    "+": lambda a, b: a + b,
    "-": lambda a, b: a - b,
    "*": lambda a, b: a * b,
    "/": lambda a, b: a / b,
    "//": lambda a, b: a // b,
    "mod": lambda a, b: a % b,
    "min": min,
    "max": max,
}

_ARITH_UNARY = {
    "-": lambda a: -a,
    "abs": abs,
}


def evaluate_expression(term, subst):
    """Evaluate an arithmetic expression term to a Python value.

    Raises :class:`EvaluationError` when a leaf is unbound or a functor
    is not arithmetic.
    """
    term = walk(term, subst)
    if isinstance(term, Const):
        return term.value
    if isinstance(term, Var):
        raise EvaluationError("unbound variable %s in arithmetic expression" % term)
    if isinstance(term, Struct):
        if len(term.args) == 2 and term.functor in _ARITH_BINARY:
            left = evaluate_expression(term.args[0], subst)
            right = evaluate_expression(term.args[1], subst)
            try:
                return _ARITH_BINARY[term.functor](left, right)
            except (TypeError, ZeroDivisionError) as exc:
                raise EvaluationError(
                    "arithmetic failure %s(%r, %r): %s"
                    % (term.functor, left, right, exc)
                ) from exc
        if len(term.args) == 1 and term.functor in _ARITH_UNARY:
            value = evaluate_expression(term.args[0], subst)
            try:
                return _ARITH_UNARY[term.functor](value)
            except TypeError as exc:
                raise EvaluationError(
                    "arithmetic failure %s(%r): %s" % (term.functor, value, exc)
                ) from exc
        raise EvaluationError("non-arithmetic functor %r in expression" % term.functor)
    raise EvaluationError("cannot evaluate %r" % (term,))


def _comparison_key(value):
    """Totally order mixed ground values so < never raises.

    Numbers order among themselves; otherwise values are grouped by type
    name and ordered by repr within a group.  This mirrors the behaviour
    of a database sort over a union-typed column.
    """
    if isinstance(value, bool):
        # bool is a numbers.Integral subclass; keep it with numbers so
        # 0/False comparisons behave arithmetically.
        return (0, float(value), "")
    if isinstance(value, numbers.Real):
        return (0, float(value), "")
    return (1, 0.0, (type(value).__name__, repr(value)))


def compare_values(op, left, right):
    """Apply a comparison operator to two ground Python values."""
    if op == "=":
        return left == right
    if op == "!=":
        return left != right
    lk, rk = _comparison_key(left), _comparison_key(right)
    if op == "<":
        return lk < rk
    if op == "<=":
        return lk <= rk
    if op == ">":
        return lk > rk
    if op == ">=":
        return lk >= rk
    raise EvaluationError("unknown comparison operator %r" % op)


def solve_comparison(item, subst):
    """Yield extended substitutions satisfying a comparison.

    ``=`` unifies (0 or 1 solutions, possibly binding variables); other
    operators test ground values and yield `subst` unchanged on success.
    """
    left = walk(item.left, subst)
    right = walk(item.right, subst)
    if item.op == "=":
        unified = unify(left, right, subst)
        if unified is not None:
            yield unified
        return
    left = substitute(left, subst)
    right = substitute(right, subst)
    if not left.is_ground() or not right.is_ground():
        raise EvaluationError(
            "comparison %s has unbound arguments (%s, %s)" % (item, left, right)
        )
    left_value = left.value if isinstance(left, Const) else left
    right_value = right.value if isinstance(right, Const) else right
    if compare_values(item.op, left_value, right_value):
        yield subst


def solve_assignment(item, subst):
    """Yield extended substitutions for ``Target is Expr``."""
    value = Const(evaluate_expression(item.expr, subst))
    unified = unify(item.target, value, subst)
    if unified is not None:
        yield unified
