"""Indexed ground-fact storage for bottom-up evaluation.

:class:`FactStore` maps relation signatures ``(pred, arity)`` to sets of
ground argument tuples, with lazily built hash indexes per argument
position.  The evaluator asks for facts matching a partially bound atom;
the store answers from the most selective available index.
"""

from __future__ import annotations

from collections import defaultdict
from typing import Dict, FrozenSet, Iterable, Iterator, Optional, Set, Tuple

from .ast import Atom
from .terms import Const, Struct, Term, Var, term_sort_key, walk

Signature = Tuple[str, int]
FactArgs = Tuple[Term, ...]


class FactStore:
    """A mutable set of ground facts with per-position indexes."""

    def __init__(self):
        self._facts: Dict[Signature, Set[FactArgs]] = defaultdict(set)
        # _indexes[sig][position][ground term] -> set of fact tuples
        self._indexes: Dict[Signature, Dict[int, Dict[Term, Set[FactArgs]]]] = {}

    def __len__(self):
        return sum(len(rows) for rows in self._facts.values())

    def count(self, pred, arity):
        return len(self._facts.get((pred, arity), ()))

    def signatures(self):
        return [sig for sig, rows in self._facts.items() if rows]

    def add(self, atom):
        """Insert a ground atom; returns True if it was new."""
        if not atom.is_ground():
            raise ValueError("cannot store non-ground fact: %s" % atom)
        return self.add_row(atom.signature, atom.args)

    def add_row(self, sig, args):
        """Insert a ground argument tuple under `sig`; True if new."""
        rows = self._facts[sig]
        if args in rows:
            return False
        rows.add(args)
        indexes = self._indexes.get(sig)
        if indexes:
            for position, index in indexes.items():
                index.setdefault(args[position], set()).add(args)
        return True

    def contains(self, atom):
        """Membership test for a ground atom."""
        return atom.args in self._facts.get(atom.signature, ())

    def contains_row(self, sig, args):
        return args in self._facts.get(sig, ())

    def rows(self, sig):
        """All argument tuples stored under `sig` (a live set: do not
        mutate while iterating)."""
        return self._facts.get(sig, frozenset())

    def _index_for(self, sig, position):
        indexes = self._indexes.setdefault(sig, {})
        index = indexes.get(position)
        if index is None:
            index = {}
            for args in self._facts.get(sig, ()):
                index.setdefault(args[position], set()).add(args)
            indexes[position] = index
        return index

    def candidates(self, atom, subst):
        """Rows possibly matching `atom` under `subst`.

        Uses the first argument position that is bound to a :class:`Const`
        or ground :class:`Struct` as an index key; falls back to a full
        scan of the relation when no position is bound.
        """
        sig = atom.signature
        rows = self._facts.get(sig)
        if not rows:
            return ()
        for position, arg in enumerate(atom.args):
            bound = walk(arg, subst)
            if bound.is_ground() and not isinstance(bound, Var):
                index = self._index_for(sig, position)
                return index.get(bound, ())
        return rows

    def iter_atoms(self, pred=None):
        """Iterate stored facts as :class:`Atom` objects.

        With `pred` given, restricts to relations with that predicate
        name (any arity).
        """
        for (name, _arity), rows in self._facts.items():
            if pred is not None and name != pred:
                continue
            for args in rows:
                yield Atom(name, args)

    def sorted_atoms(self, pred=None):
        """Deterministically ordered facts, for reporting and tests."""
        atoms = list(self.iter_atoms(pred))
        atoms.sort(key=lambda a: (a.pred, tuple(term_sort_key(t) for t in a.args)))
        return atoms

    def copy(self):
        clone = FactStore()
        for sig, rows in self._facts.items():
            if rows:
                clone._facts[sig] = set(rows)
        return clone

    def merge(self, other):
        """In-place union with another store; returns self."""
        for sig, rows in other._facts.items():
            for args in rows:
                self.add_row(sig, args)
        return self

    def difference_count(self, other):
        """Number of facts in self that are not in other."""
        missing = 0
        for sig, rows in self._facts.items():
            other_rows = other._facts.get(sig, ())
            missing += sum(1 for args in rows if args not in other_rows)
        return missing

    def same_facts(self, other):
        mine = {sig: rows for sig, rows in self._facts.items() if rows}
        theirs = {sig: rows for sig, rows in other._facts.items() if rows}
        return mine == theirs
