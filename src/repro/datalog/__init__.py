"""Datalog engine with well-founded negation and aggregates.

This package is the logical substrate of the reproduction: the paper's
generic conceptual model (GCM) requires "a declarative rule language
with an intuitive semantics that expresses precisely FO(LFP)", namely
*Datalog with well-founded negation* (Section 3).  Everything higher in
the stack — the F-logic front end, GCM constraints, domain-map edge
execution, integrated views — compiles to this dialect.

Quick use::

    from repro.datalog import parse_program, query, parse_atom

    program = parse_program('''
        edge(a, b).  edge(b, c).
        tc(X, Y) :- edge(X, Y).
        tc(X, Y) :- edge(X, Z), tc(Z, Y).
    ''')
    rows = query(program, parse_atom("tc(a, X)"))
    # [{'X': 'b'}, {'X': 'c'}]
"""

from .ast import (
    AGGREGATE_FUNCS,
    COMPARISON_OPS,
    AggregateLiteral,
    Assignment,
    Atom,
    Comparison,
    Literal,
    Program,
    Rule,
    fact,
    rename_apart,
)
from .engine import (
    DEFAULT_MAX_FACTS,
    EvaluationResult,
    evaluate,
    match_atom,
    query,
    well_founded_model,
)
from .magic import magic_query, magic_transform
from .provenance import Derivation, explain
from .parser import parse_atom, parse_program, parse_rule, parse_term
from .safety import check_program_safety, check_rule_safety
from .store import FactStore
from .stratify import (
    build_dependency_graph,
    is_aggregate_stratified,
    is_stratifiable,
    stratify,
)
from .terms import (
    Const,
    Struct,
    Term,
    Var,
    coerce_term,
    const,
    fresh_variable_factory,
    match,
    struct,
    substitute,
    term_sort_key,
    unify,
    var,
    walk,
)

__all__ = [
    "AGGREGATE_FUNCS",
    "COMPARISON_OPS",
    "AggregateLiteral",
    "Assignment",
    "Atom",
    "Comparison",
    "Const",
    "DEFAULT_MAX_FACTS",
    "Derivation",
    "EvaluationResult",
    "FactStore",
    "Literal",
    "Program",
    "Rule",
    "Struct",
    "Term",
    "Var",
    "build_dependency_graph",
    "check_program_safety",
    "check_rule_safety",
    "coerce_term",
    "const",
    "evaluate",
    "explain",
    "fact",
    "fresh_variable_factory",
    "is_aggregate_stratified",
    "is_stratifiable",
    "magic_query",
    "magic_transform",
    "match",
    "match_atom",
    "parse_atom",
    "parse_program",
    "parse_rule",
    "parse_term",
    "query",
    "rename_apart",
    "stratify",
    "struct",
    "substitute",
    "term_sort_key",
    "unify",
    "var",
    "walk",
    "well_founded_model",
]
