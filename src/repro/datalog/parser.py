"""Parser for the textual Datalog dialect.

Grammar (informal)::

    program     := (clause)*
    clause      := atom [ ':-' body ] '.'
    body        := item (',' item)*
    item        := 'not' atom
                 | VAR 'is' expr
                 | term OP term             OP in = != < <= > >=
                 | VAR '=' AGG '{' term ['[' term (',' term)* ']']
                                  ';' body '}'
                 | atom
    atom        := SYMBOL [ '(' term (',' term)* ')' ]
    term        := VAR | NUMBER | STRING | SYMBOL [ '(' term* ')' ]
    expr        := arithmetic over + - * / // mod with parentheses

Comments run from ``%`` to end of line.  Symbols are lowercase
identifiers or single-quoted strings; variables start with an uppercase
letter or underscore.  Double- and single-quoted literals both become
string constants.
"""

from __future__ import annotations

import re
from typing import List, Optional, Tuple

from ..errors import ParseError
from .ast import (
    AGGREGATE_FUNCS,
    AggregateLiteral,
    Assignment,
    Atom,
    Comparison,
    Literal,
    Program,
    Rule,
)
from .terms import Const, Struct, Var

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<dqstring>"(?:[^"\\]|\\.)*")
  | (?P<sqstring>'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>:-|!=|<=|>=|=|<|>|\(|\)|\{|\}|\[|\]|,|;|\.|\+|-|\*|//|/)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"not", "is", "mod"}


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self):
        return "_Token(%r, %r, %d)" % (self.kind, self.value, self.pos)


def _unescape(body):
    return body.replace("\\\\", "\\").replace("\\'", "'").replace('\\"', '"')


def tokenize(text):
    """Tokenize `text`; raises :class:`ParseError` on illegal input."""
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError(
                "unexpected character %r" % text[pos], text=text, position=pos
            )
        kind = m.lastgroup
        value = m.group()
        if kind == "ws" or kind == "comment":
            pos = m.end()
            continue
        if kind == "number":
            number = float(value) if "." in value else int(value)
            tokens.append(_Token("number", number, pos))
        elif kind == "dqstring" or kind == "sqstring":
            tokens.append(_Token("string", _unescape(value[1:-1]), pos))
        elif kind == "name":
            if value in _KEYWORDS:
                tokens.append(_Token(value, value, pos))
            elif value[0].isupper() or value[0] == "_":
                tokens.append(_Token("var", value, pos))
            else:
                tokens.append(_Token("symbol", value, pos))
        else:
            tokens.append(_Token(value, value, pos))
        pos = m.end()
    tokens.append(_Token("eof", None, pos))
    return tokens


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        self._anon_counter = 0

    # -- token helpers ------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind):
        token = self.next()
        if token.kind != kind:
            raise ParseError(
                "expected %r but found %r" % (kind, token.value),
                text=self.text,
                position=token.pos,
            )
        return token

    def error(self, message):
        token = self.peek()
        raise ParseError(message, text=self.text, position=token.pos)

    # -- grammar ------------------------------------------------------

    def parse_program(self):
        program = Program()
        while self.peek().kind != "eof":
            program.add(self.parse_clause())
        return program

    def parse_clause(self):
        head = self.parse_atom()
        body = ()
        if self.peek().kind == ":-":
            self.next()
            body = self.parse_body(stop_kinds=(".",))
        self.expect(".")
        return Rule(head, body)

    def parse_body(self, stop_kinds):
        items = [self.parse_body_item()]
        while self.peek().kind == ",":
            self.next()
            items.append(self.parse_body_item())
        if self.peek().kind not in stop_kinds:
            self.error("expected %s after rule body" % " or ".join(stop_kinds))
        return tuple(items)

    def parse_body_item(self):
        token = self.peek()
        if token.kind == "not":
            self.next()
            return Literal(self.parse_atom(), positive=False)
        if token.kind == "var":
            nxt = self.peek(1)
            if nxt.kind == "is":
                variable = Var(self.next().value)
                self.next()  # 'is'
                return Assignment(variable, self.parse_expression())
            if nxt.kind == "=" and self._peek_aggregate(2):
                variable = Var(self.next().value)
                self.next()  # '='
                return self.parse_aggregate(variable)
        # Either a comparison or a plain atom: parse a term first.
        start = self.index
        left = self.parse_term()
        op_token = self.peek()
        if op_token.kind in ("=", "!=", "<", "<=", ">", ">="):
            self.next()
            right = self.parse_term()
            return Comparison(op_token.kind, left, right)
        # Not a comparison: re-parse from `start` as an atom.
        self.index = start
        return Literal(self.parse_atom())

    def _peek_aggregate(self, offset):
        token = self.peek(offset)
        return (
            token.kind == "symbol"
            and token.value in AGGREGATE_FUNCS
            and self.peek(offset + 1).kind == "{"
        )

    def parse_aggregate(self, result_var):
        func = self.expect("symbol").value
        if func not in AGGREGATE_FUNCS:
            self.error("unknown aggregate function %r" % func)
        self.expect("{")
        value = self.parse_term()
        group_by = ()
        if self.peek().kind == "[":
            self.next()
            groups = [self.parse_term()]
            while self.peek().kind == ",":
                self.next()
                groups.append(self.parse_term())
            self.expect("]")
            group_by = tuple(groups)
        self.expect(";")
        body = self.parse_body(stop_kinds=("}",))
        self.expect("}")
        return AggregateLiteral(func, result_var, value, group_by, body)

    def parse_atom(self):
        token = self.next()
        if token.kind not in ("symbol", "string"):
            raise ParseError(
                "expected predicate name, found %r" % (token.value,),
                text=self.text,
                position=token.pos,
            )
        name = token.value
        args = ()
        if self.peek().kind == "(":
            self.next()
            parsed = [self.parse_term()]
            while self.peek().kind == ",":
                self.next()
                parsed.append(self.parse_term())
            self.expect(")")
            args = tuple(parsed)
        return Atom(name, args)

    def parse_term(self):
        token = self.next()
        if token.kind == "var":
            if token.value == "_":
                self._anon_counter += 1
                return Var("_anon%d" % self._anon_counter)
            return Var(token.value)
        if token.kind == "number":
            return Const(token.value)
        if token.kind == "string":
            return Const(token.value)
        if token.kind == "symbol":
            if self.peek().kind == "(":
                self.next()
                args = [self.parse_term()]
                while self.peek().kind == ",":
                    self.next()
                    args.append(self.parse_term())
                self.expect(")")
                return Struct(token.value, tuple(args))
            return Const(token.value)
        raise ParseError(
            "expected a term, found %r" % (token.value,),
            text=self.text,
            position=token.pos,
        )

    # -- arithmetic expressions ----------------------------------------

    def parse_expression(self):
        left = self.parse_expr_term()
        while self.peek().kind in ("+", "-"):
            op = self.next().kind
            right = self.parse_expr_term()
            left = Struct(op, (left, right))
        return left

    def parse_expr_term(self):
        left = self.parse_expr_factor()
        while self.peek().kind in ("*", "/", "//", "mod"):
            op = self.next().kind
            right = self.parse_expr_factor()
            left = Struct(op, (left, right))
        return left

    def parse_expr_factor(self):
        token = self.peek()
        if token.kind == "(":
            self.next()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.kind == "-":
            self.next()
            return Struct("-", (self.parse_expr_factor(),))
        return self.parse_term()


def parse_program(text):
    """Parse a full program; returns :class:`Program`."""
    return _Parser(text).parse_program()


def parse_rule(text):
    """Parse exactly one clause."""
    parser = _Parser(text)
    rule = parser.parse_clause()
    if parser.peek().kind != "eof":
        parser.error("trailing input after clause")
    return rule


def parse_atom(text):
    """Parse a single atom (used for goals/queries)."""
    parser = _Parser(text)
    atom = parser.parse_atom()
    if parser.peek().kind != "eof":
        parser.error("trailing input after atom")
    return atom


def parse_term(text):
    """Parse a single term."""
    parser = _Parser(text)
    term = parser.parse_term()
    if parser.peek().kind != "eof":
        parser.error("trailing input after term")
    return term
