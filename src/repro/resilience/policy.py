"""medguard policies: the per-source resilience configuration.

A :class:`ResiliencePolicy` bundles every knob of the resilience layer:

* **retries** — how many times a failed source call is re-attempted,
  with deterministic exponential backoff and (optionally) seeded
  jitter, so two runs with the same seed sleep the same delays;
* **timeouts** — a per-call timeout (an attempt that takes longer
  counts as failed) and a whole-plan *deadline budget* shared by every
  call a query plan makes;
* **circuit breaking** — consecutive-failure threshold and cooldown
  of the closed/open/half-open breaker kept per ``(source, class)``;
* **staleness** — whether a last-known-good answer may be served
  (marked as such) when a source stays down;
* **degradation** — whether retrieval failures degrade the answer
  (recorded, plan continues) instead of aborting the plan.

Time and sleeping are injectable (``clock`` / ``sleep``) so the fault
injection harness can drive the whole state machine on a virtual clock
and reproduce runs byte-for-byte.
"""

from __future__ import annotations

import time
from typing import Callable, Optional


class ResiliencePolicy:
    """Configuration of the medguard resilience layer.

    Args:
        max_retries: re-attempts after the first failed call (so a
            call makes at most ``1 + max_retries`` attempts).
        backoff_base: seconds slept before the first retry.
        backoff_multiplier: factor applied per further retry.
        backoff_cap: upper bound on a single backoff sleep.
        jitter: fraction of the delay randomized (0.0 = none); drawn
            from a generator seeded with `seed`, so jitter is
            deterministic per guard instance.
        seed: RNG seed for the jitter stream.
        call_timeout: seconds one attempt may take; an attempt
            measured longer (by `clock`) is treated as a
            :class:`~repro.errors.SourceTimeoutError` failure.
        plan_deadline: seconds of budget for all source calls of one
            query plan; once exhausted, no further retries or backoff
            sleeps are attempted (calls fail fast and degrade).
        breaker_threshold: consecutive failures of a ``(source,
            class)`` pair that open its circuit breaker (None
            disables breaking).
        breaker_cooldown: seconds an open breaker waits before letting
            one half-open probe through.
        serve_stale: serve the last known good rows of an identical
            call (marked ``served-stale``) when retries are exhausted
            or the breaker is open.
        degrade: record retrieval failures on the plan context (a
            degraded answer) instead of aborting the plan — the
            structured successor of ``skip_failed_sources``.
        clock: monotonic time source (injectable for determinism).
        sleep: sleeper for backoff delays (injectable; the chaos
            harness advances a virtual clock instead of blocking).
    """

    __slots__ = (
        "max_retries",
        "backoff_base",
        "backoff_multiplier",
        "backoff_cap",
        "jitter",
        "seed",
        "call_timeout",
        "plan_deadline",
        "breaker_threshold",
        "breaker_cooldown",
        "serve_stale",
        "degrade",
        "clock",
        "sleep",
    )

    def __init__(
        self,
        max_retries=2,
        backoff_base=0.05,
        backoff_multiplier=2.0,
        backoff_cap=2.0,
        jitter=0.0,
        seed=0,
        call_timeout=None,
        plan_deadline=None,
        breaker_threshold=5,
        breaker_cooldown=30.0,
        serve_stale=False,
        degrade=True,
        clock: Optional[Callable[[], float]] = None,
        sleep: Optional[Callable[[float], None]] = None,
    ):
        if max_retries < 0:
            raise ValueError("max_retries must be >= 0")
        if not 0.0 <= jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if breaker_threshold is not None and breaker_threshold < 1:
            raise ValueError("breaker_threshold must be >= 1 (or None)")
        self.max_retries = max_retries
        self.backoff_base = backoff_base
        self.backoff_multiplier = backoff_multiplier
        self.backoff_cap = backoff_cap
        self.jitter = jitter
        self.seed = seed
        self.call_timeout = call_timeout
        self.plan_deadline = plan_deadline
        self.breaker_threshold = breaker_threshold
        self.breaker_cooldown = breaker_cooldown
        self.serve_stale = serve_stale
        self.degrade = degrade
        self.clock = clock if clock is not None else time.monotonic
        self.sleep = sleep if sleep is not None else time.sleep

    @property
    def wall_clock(self):
        """Is this policy timed by the real monotonic clock?

        True only for the default ``time.monotonic`` clock.  The
        medpar executor enforces ``call_timeout`` as a true wall-clock
        bound (abandoning the hung attempt) only then: under an
        injected virtual clock — the chaos harness — time is
        simulation state, so the guard keeps its deterministic
        measured-elapsed check instead.
        """
        return self.clock is time.monotonic

    def backoff_delay(self, retry_number, rng=None):
        """The backoff before retry `retry_number` (1-based), jittered
        from `rng` when the policy asks for jitter."""
        delay = self.backoff_base * (
            self.backoff_multiplier ** (retry_number - 1)
        )
        delay = min(delay, self.backoff_cap)
        if self.jitter and rng is not None:
            # symmetric jitter: delay * (1 ± jitter), deterministic
            # given the rng's seed and draw position
            delay *= 1.0 + self.jitter * (2.0 * rng.random() - 1.0)
        return delay

    def as_dict(self):
        return {
            "max_retries": self.max_retries,
            "backoff_base": self.backoff_base,
            "backoff_multiplier": self.backoff_multiplier,
            "backoff_cap": self.backoff_cap,
            "jitter": self.jitter,
            "seed": self.seed,
            "call_timeout": self.call_timeout,
            "plan_deadline": self.plan_deadline,
            "breaker_threshold": self.breaker_threshold,
            "breaker_cooldown": self.breaker_cooldown,
            "serve_stale": self.serve_stale,
            "degrade": self.degrade,
        }

    def __repr__(self):
        return (
            "ResiliencePolicy(max_retries=%d, breaker_threshold=%r, "
            "serve_stale=%r, degrade=%r)"
            % (
                self.max_retries,
                self.breaker_threshold,
                self.serve_stale,
                self.degrade,
            )
        )
