"""medguard: the source-resilience layer of the mediator.

Real federated sources flake, hang, and return garbage; medguard makes
the mediator survive them deterministically and observably:

* :class:`ResiliencePolicy` — retries with deterministic exponential
  backoff (seeded jitter), per-call timeout, whole-plan deadline
  budget, circuit-breaker and staleness knobs;
* :class:`SourceGuard` — executes every
  :meth:`~repro.core.mediator.Mediator.source_query` under the policy,
  keeping a closed/open/half-open :class:`CircuitBreaker` per
  ``(source, class)`` and an optional last-known-good cache that
  serves stale answers marked as such;
* :class:`DegradedAnswer` — the structured degradation report carried
  by correlation results and ``EXPLAIN`` output (the degraded-answer
  contract);
* :class:`FaultInjectingWrapper` / :class:`FaultSchedule` — the
  deterministic fault-injection harness behind ``repro chaos``.

Attach a policy at construction time (``Mediator(dm,
resilience=ResiliencePolicy(...))``); without one the retrieval hot
path is untouched (a single ``is None`` check, same discipline as the
medtrace no-op default).  See ``docs/resilience.md``.
"""

from .breaker import BreakerRegistry, CircuitBreaker
from .faults import (
    FAULT_KINDS,
    Fault,
    FaultInjectingWrapper,
    FaultSchedule,
    VirtualClock,
)
from .guard import (
    CallOutcome,
    STATUS_BREAKER_OPEN,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    STATUS_STALE,
    SourceGuard,
)
from .policy import ResiliencePolicy
from .report import DegradedAnswer, SourceReport, build_degraded_answer

__all__ = [
    "BreakerRegistry",
    "CallOutcome",
    "CircuitBreaker",
    "DegradedAnswer",
    "FAULT_KINDS",
    "Fault",
    "FaultInjectingWrapper",
    "FaultSchedule",
    "ResiliencePolicy",
    "STATUS_BREAKER_OPEN",
    "STATUS_FAILED",
    "STATUS_OK",
    "STATUS_RETRIED",
    "STATUS_STALE",
    "SourceGuard",
    "SourceReport",
    "VirtualClock",
    "build_degraded_answer",
]
