"""The medguard source guard: retries, breakers, staleness, deadlines.

A :class:`SourceGuard` executes source calls on behalf of the mediator
under one :class:`~repro.resilience.policy.ResiliencePolicy`:

* failed attempts are retried with deterministic exponential backoff
  (seeded jitter optional);
* a per-``(source, class)`` circuit breaker sheds calls to sources
  that keep failing, and lets a half-open probe through after the
  cooldown;
* with ``serve_stale``, the last known good rows of an identical call
  are served — marked as stale — when the source stays down;
* a per-call timeout and a whole-plan deadline budget bound how long a
  plan waits for misbehaving sources.

Every call appends a :class:`CallOutcome` to the guard's log;
:meth:`SourceGuard.mark` / :meth:`outcomes_since` let a plan slice out
exactly its own calls for the degraded-answer report.  Retry, breaker,
and staleness activity also flows to medtrace (``resilience.*``
counters and events) when a tracer is installed.
"""

from __future__ import annotations

import random
import threading
from contextlib import contextmanager
from typing import Callable, Dict, List, Optional, Tuple

from .. import obs
from ..errors import (
    BreakerOpenError,
    SourceError,
    SourceTimeoutError,
    XMLTransportError,
)
from .breaker import BreakerRegistry
from .policy import ResiliencePolicy

#: outcome statuses, from healthiest to most degraded
STATUS_OK = "ok"
STATUS_RETRIED = "retried"
STATUS_STALE = "served-stale"
STATUS_FAILED = "failed"
STATUS_BREAKER_OPEN = "breaker-open"


class CallOutcome:
    """The resilience record of one guarded source call."""

    __slots__ = (
        "source",
        "class_name",
        "status",
        "attempts",
        "retries",
        "stale",
        "breaker_state",
        "error",
    )

    def __init__(
        self,
        source,
        class_name,
        status,
        attempts,
        breaker_state,
        error=None,
    ):
        self.source = source
        self.class_name = class_name
        self.status = status
        self.attempts = attempts
        self.retries = max(0, attempts - 1)
        self.stale = status == STATUS_STALE
        self.breaker_state = breaker_state
        #: "<ErrorClass>: <message>" of the last failure (None on ok)
        self.error = error

    def as_dict(self):
        return {
            "source": self.source,
            "class": self.class_name,
            "status": self.status,
            "attempts": self.attempts,
            "retries": self.retries,
            "stale": self.stale,
            "breaker_state": self.breaker_state,
            "error": self.error,
        }

    def __repr__(self):
        return "CallOutcome(%s.%s %s attempts=%d)" % (
            self.source,
            self.class_name,
            self.status,
            self.attempts,
        )


def _error_text(exc):
    return "%s: %s" % (type(exc).__name__, exc)


class SourceGuard:
    """Executes source calls under a :class:`ResiliencePolicy`."""

    def __init__(self, policy=None):
        self.policy = policy if policy is not None else ResiliencePolicy()
        self.breakers = BreakerRegistry(
            self.policy.breaker_threshold, self.policy.breaker_cooldown
        )
        self.outcomes: List[CallOutcome] = []
        #: per-``(source, class)`` jitter streams: a single shared RNG
        #: would make jitter draws depend on the *interleaving* of
        #: concurrent calls under medpar fan-out; independent streams
        #: (string-seeded, stable across runs and platforms) keep the
        #: backoff sequence of every pair deterministic regardless of
        #: scheduling
        self._rngs: Dict[Tuple[str, str], random.Random] = {}
        self._cache = {}
        self._lock = threading.Lock()
        #: optional :class:`~repro.parallel.ParallelExecutor` enforcing
        #: ``call_timeout`` as a true wall-clock bound (set by the
        #: mediator, or per call via the ``executor`` argument)
        self.executor = None
        self._scope_depth = 0
        self._deadline_at: Optional[float] = None

    def _jitter_rng(self, source, class_name):
        key = (source, class_name)
        with self._lock:
            rng = self._rngs.get(key)
            if rng is None:
                # str seeding hashes via sha512: deterministic across
                # runs, processes and platforms (same idiom as
                # FaultSchedule.from_seed)
                rng = random.Random(
                    "%s/%s/%s" % (self.policy.seed, source, class_name)
                )
                self._rngs[key] = rng
            return rng

    # -- plan deadline scope ----------------------------------------------

    @contextmanager
    def plan_scope(self):
        """Arms the plan deadline budget for the dynamic extent of one
        query plan (re-entrant: nested scopes share the outer budget)."""
        self._scope_depth += 1
        if self._scope_depth == 1 and self.policy.plan_deadline is not None:
            self._deadline_at = self.policy.clock() + self.policy.plan_deadline
        try:
            yield self
        finally:
            self._scope_depth -= 1
            if self._scope_depth == 0:
                self._deadline_at = None

    def deadline_remaining(self):
        """Seconds left in the plan budget (None = unbounded)."""
        if self._deadline_at is None:
            return None
        return self._deadline_at - self.policy.clock()

    # -- outcome log -------------------------------------------------------

    def mark(self):
        """A position in the outcome log (pair with outcomes_since)."""
        return len(self.outcomes)

    def outcomes_since(self, mark):
        return self.outcomes[mark:]

    def last_outcome(self):
        """The most recent :class:`CallOutcome` (None before any call).

        medcache consults this right after :meth:`call` to tell a
        fresh answer from a stale-served one: only fresh results are
        written into the answer cache, so a last-known-good fallback
        never outlives the failure it papered over.
        """
        return self.outcomes[-1] if self.outcomes else None

    def _record(self, outcome):
        self.outcomes.append(outcome)
        return outcome

    # -- the guarded call --------------------------------------------------

    def call(self, source, class_name, fn, cache_key=None, executor=None):
        """Run ``fn()`` (one source call) under the policy.

        Args:
            source: source name (breaker / outcome / metric key).
            class_name: exported class being called.
            fn: zero-argument callable performing the source call.
            cache_key: hashable identity of the call for the
                ``serve_stale`` last-known-good cache (None disables
                staleness for this call).
            executor: optional
                :class:`~repro.parallel.ParallelExecutor` overriding
                :attr:`self.executor` for this call.  When one is set,
                the policy has a ``call_timeout``, and the policy runs
                on the real wall clock, each attempt is run through
                :meth:`~repro.parallel.ParallelExecutor.call` so the
                timeout truly abandons a hung attempt instead of only
                measuring it after the fact.

        Returns `fn`'s result — possibly a cached stale one.  Raises
        the last failure (normalized by the caller's boundary) when
        retries are exhausted and no stale answer may be served, or a
        :class:`~repro.errors.BreakerOpenError` when the breaker
        rejects the call outright.
        """
        policy = self.policy
        if executor is None:
            executor = self.executor
        # wall-clock enforcement only under the real clock: a virtual
        # clock (chaos harness) keeps the deterministic measured-
        # elapsed check below
        enforce = (
            executor is not None
            and policy.call_timeout is not None
            and policy.wall_clock
        )
        breaker = self.breakers.get(source, class_name)
        now = policy.clock()
        if not breaker.allow(now):
            obs.count("resilience.breaker_open", source=source)
            obs.event(
                "resilience.breaker_open", source=source, class_name=class_name
            )
            stale = self._stale_lookup(source, class_name, cache_key, "open")
            if stale is not None:
                return stale
            self._record(
                CallOutcome(
                    source,
                    class_name,
                    STATUS_BREAKER_OPEN,
                    0,
                    "open",
                    error="breaker open",
                )
            )
            raise BreakerOpenError(
                "circuit breaker open for %s.%s" % (source, class_name),
                source=source,
                class_name=class_name,
            )

        attempts = 0
        last_exc = None
        while attempts <= policy.max_retries:
            attempts += 1
            started = policy.clock()
            try:
                if enforce:
                    result = executor.call(fn, timeout=policy.call_timeout)
                else:
                    result = fn()
            except (SourceError, XMLTransportError) as exc:
                last_exc = exc
                if isinstance(exc, SourceTimeoutError):
                    obs.count("resilience.timeout", source=source)
            else:
                elapsed = policy.clock() - started
                if (
                    policy.call_timeout is not None
                    and elapsed > policy.call_timeout
                ):
                    last_exc = SourceTimeoutError(
                        "call to %s.%s took %.3fs (timeout %.3fs)"
                        % (source, class_name, elapsed, policy.call_timeout)
                    )
                    obs.count("resilience.timeout", source=source)
                else:
                    breaker.record_success()
                    if policy.serve_stale and cache_key is not None:
                        with self._lock:
                            self._cache[
                                (source, class_name, cache_key)
                            ] = result
                    self._record(
                        CallOutcome(
                            source,
                            class_name,
                            STATUS_OK if attempts == 1 else STATUS_RETRIED,
                            attempts,
                            breaker.state(policy.clock()),
                        )
                    )
                    return result
            opened = breaker.record_failure(policy.clock())
            if opened:
                obs.count("resilience.breaker_opened", source=source)
                obs.event(
                    "resilience.breaker_opened",
                    source=source,
                    class_name=class_name,
                    failures=breaker.failures,
                )
            if attempts > policy.max_retries or not self._may_retry():
                break
            delay = policy.backoff_delay(
                attempts, self._jitter_rng(source, class_name)
            )
            remaining = self.deadline_remaining()
            if remaining is not None:
                delay = min(delay, max(0.0, remaining))
            obs.count("resilience.retry", source=source)
            obs.event(
                "resilience.retry",
                source=source,
                class_name=class_name,
                attempt=attempts,
                error=type(last_exc).__name__,
            )
            if delay > 0:
                policy.sleep(delay)

        stale = self._stale_lookup(
            source,
            class_name,
            cache_key,
            breaker.state(policy.clock()),
            attempts=attempts,
            error=_error_text(last_exc),
        )
        if stale is not None:
            return stale
        self._record(
            CallOutcome(
                source,
                class_name,
                STATUS_FAILED,
                attempts,
                breaker.state(policy.clock()),
                error=_error_text(last_exc),
            )
        )
        raise last_exc

    def _may_retry(self):
        remaining = self.deadline_remaining()
        if remaining is not None and remaining <= 0:
            obs.count("resilience.deadline_exhausted")
            return False
        return True

    def _stale_lookup(
        self, source, class_name, cache_key, breaker_state, attempts=0,
        error=None,
    ):
        if not self.policy.serve_stale or cache_key is None:
            return None
        with self._lock:
            cached = self._cache.get((source, class_name, cache_key))
        if cached is None:
            return None
        obs.count("resilience.stale_served", source=source)
        obs.event(
            "resilience.stale_served", source=source, class_name=class_name
        )
        self._record(
            CallOutcome(
                source,
                class_name,
                STATUS_STALE,
                attempts,
                breaker_state,
                error=error,
            )
        )
        return cached

    def __repr__(self):
        return "SourceGuard(%r, outcomes=%d)" % (self.policy, len(self.outcomes))
