"""The ``repro chaos`` harness: deterministic chaos runs + contract.

Two modes, both seeded and exactly reproducible:

* **scenario mode** (:func:`run_chaos_scenario`) — the shipped KIND
  scenario runs its Section 5 query over the XML dialogue while a
  seeded :class:`~repro.resilience.faults.FaultSchedule` injects a
  transient fault into the seed source and *kills* the retrieval
  source mid-plan.  The run must complete with a degraded (not
  raised) answer whose :class:`~repro.resilience.report.DegradedAnswer`
  names the dead source, its attempt counts, and its breaker state —
  the degraded-answer contract.  Identical seeds produce
  byte-identical reports (virtual clock, seeded jitter, seeded
  schedule).
* **script mode** (:func:`run_chaos_script`) — any deployment script
  runs with every registered wrapper transparently decorated by a
  :class:`~repro.resilience.faults.FaultInjectingWrapper` injecting
  *recoverable* faults, and every mediator given a default
  :class:`~repro.resilience.policy.ResiliencePolicy`.  The contract:
  the script still completes, and every raising fault is absorbed by
  the resilience layer (visible as retries/degradations in the guard
  logs — nothing slips past it).
"""

from __future__ import annotations

import contextlib
import io
import random
import runpy
from typing import Dict, List, Optional, Tuple

from .faults import (
    Fault,
    FaultInjectingWrapper,
    FaultSchedule,
    KIND_ERROR,
    KIND_LATENCY,
    KIND_MALFORMED,
    KIND_TRANSPORT,
    MALFORMED_VARIANTS,
    VirtualClock,
)
from .guard import STATUS_OK, STATUS_RETRIED, SourceGuard
from .policy import ResiliencePolicy

#: the retrieval source the Section 5 plan depends on (killed mid-plan)
SCENARIO_KILL_SOURCE = "NCMIR"
#: the seed source of the Section 5 plan (recovers via retries)
SCENARIO_SEED_SOURCE = "SENSELAB"


class ContractCheck:
    """One pass/fail assertion of the degraded-answer contract."""

    __slots__ = ("name", "passed", "detail")

    def __init__(self, name, passed, detail):
        self.name = name
        self.passed = bool(passed)
        self.detail = detail

    def as_dict(self):
        return {"name": self.name, "passed": self.passed, "detail": self.detail}

    def format_line(self):
        return "[%s] %s: %s" % (
            "PASS" if self.passed else "FAIL",
            self.name,
            self.detail,
        )


class ChaosReport:
    """The deterministic outcome of one seeded chaos run."""

    def __init__(
        self,
        mode,
        seed,
        schedule_lines,
        checks,
        degraded_answer=None,
        answers=(),
        injected=None,
        virtual_slept=None,
        target=None,
    ):
        self.mode = mode
        self.seed = seed
        self.schedule_lines = list(schedule_lines)
        self.checks: List[ContractCheck] = list(checks)
        self.degraded_answer = degraded_answer
        self.answers = list(answers)
        self.injected = dict(injected or {})
        self.virtual_slept = virtual_slept
        self.target = target

    @property
    def ok(self):
        return all(check.passed for check in self.checks)

    def as_dict(self):
        return {
            "mode": self.mode,
            "seed": self.seed,
            "target": self.target,
            "schedule": self.schedule_lines,
            "injected": self.injected,
            "degraded_answer": (
                self.degraded_answer.as_dict()
                if self.degraded_answer is not None
                else None
            ),
            "answers": self.answers,
            "virtual_slept_s": self.virtual_slept,
            "contract": [check.as_dict() for check in self.checks],
            "ok": self.ok,
        }

    def format(self):
        header = "repro chaos — seed=%s" % self.seed
        if self.target is not None:
            header += " target=%s" % self.target
        lines = [header]
        if self.schedule_lines:
            lines.append("fault schedule:")
            lines.extend("  %s" % line for line in self.schedule_lines)
        if self.injected:
            lines.append(
                "injected: "
                + ", ".join(
                    "%s=%d" % (kind, count)
                    for kind, count in sorted(self.injected.items())
                )
            )
        if self.degraded_answer is not None:
            lines.append(self.degraded_answer.format())
        if self.answers:
            lines.append("answers:")
            lines.extend(
                "  %-22s %8.3f" % (group, total)
                for group, total in self.answers
            )
        elif self.mode == "scenario":
            lines.append("answers: none (retrieval source lost)")
        if self.virtual_slept is not None:
            lines.append(
                "virtual time slept in backoff: %.4fs" % self.virtual_slept
            )
        lines.append("contract:")
        lines.extend("  %s" % check.format_line() for check in self.checks)
        lines.append("contract: %s" % ("OK" if self.ok else "VIOLATED"))
        return "\n".join(lines)

    def __repr__(self):
        return "ChaosReport(%s, seed=%s, ok=%r)" % (
            self.mode,
            self.seed,
            self.ok,
        )


# ---------------------------------------------------------------------------
# scenario mode
# ---------------------------------------------------------------------------


def _scenario_schedule(seed):
    """The Section 5 chaos schedule: one transient fault on the seed
    source, latency plus a mid-plan kill on the retrieval source."""
    rng = random.Random(seed)
    kind = (KIND_ERROR, KIND_TRANSPORT, KIND_MALFORMED)[rng.randrange(3)]
    variant = (
        MALFORMED_VARIANTS[rng.randrange(len(MALFORMED_VARIANTS))]
        if kind == KIND_MALFORMED
        else None
    )
    schedule = FaultSchedule()
    schedule.add(SCENARIO_SEED_SOURCE, 1, Fault(kind, variant=variant))
    schedule.add(
        SCENARIO_KILL_SOURCE, 1, Fault(KIND_LATENCY, latency=0.25)
    )
    # the kill lands *mid-plan*: the source answers its first retrieval
    # call, then dies for good
    schedule.kill(SCENARIO_KILL_SOURCE, after=1)
    return schedule


def run_chaos_scenario(seed, max_retries=2, parallel=False):
    """Run the Section 5 scenario under the seeded fault schedule and
    check the degraded-answer contract; returns a :class:`ChaosReport`.

    With `parallel`, the plan runs under a medpar executor
    (``Mediator(parallel=...)``).  The report must stay byte-identical
    to the sequential run of the same `seed`: the fault schedule is
    positional, jitter streams are per ``(source, class)``, the merge
    is source-ordered, and — since the policy runs on the virtual
    clock — the executor's wall-clock timeout stays out of play.
    """
    from ..neuro import build_scenario, section5_query

    clock = VirtualClock()
    policy = ResiliencePolicy(
        max_retries=max_retries,
        backoff_base=0.05,
        jitter=0.1,
        seed=seed,
        breaker_threshold=max_retries + 1,
        breaker_cooldown=120.0,
        degrade=True,
        clock=clock.now,
        sleep=clock.sleep,
    )
    schedule = _scenario_schedule(seed)

    scenario = build_scenario(
        eager=False, include_anatom_source=True, parallel=parallel or None
    )
    mediator = scenario.mediator
    mediator.dialogue_via_xml = True  # exercise the full XML wire path
    mediator.resilience = SourceGuard(policy)
    for name in mediator.source_names():
        record = mediator._sources[name]
        record.wrapper = FaultInjectingWrapper(
            record.wrapper, schedule, clock=clock, mode="xml"
        )

    checks = []
    result = None
    error = None
    try:
        result = mediator.correlate(section5_query())
    except Exception as exc:  # the contract forbids raising
        error = exc
    checks.append(
        ContractCheck(
            "completed",
            error is None,
            "correlate returned a degraded answer instead of raising"
            if error is None
            else "raised %s: %s" % (type(error).__name__, error),
        )
    )

    degraded_answer = None
    answers = []
    if result is not None:
        degraded_answer = result.degraded_answer()
        answers = [
            (group, distribution.total())
            for group, distribution in result.answers
        ]
        checks.append(
            ContractCheck(
                "degraded",
                result.degraded and degraded_answer.degraded,
                "the answer is marked degraded on the result itself",
            )
        )
        killed = degraded_answer.report_for(SCENARIO_KILL_SOURCE)
        checks.append(
            ContractCheck(
                "names-dead-source",
                killed is not None and killed.status == "skipped",
                "report names %s as skipped" % SCENARIO_KILL_SOURCE
                if killed is not None
                else "report lacks %s" % SCENARIO_KILL_SOURCE,
            )
        )
        if killed is not None:
            checks.append(
                ContractCheck(
                    "attempt-counts",
                    killed.attempts >= 1 + max_retries,
                    "%s attempts=%d retries=%d (budget 1+%d per call)"
                    % (
                        SCENARIO_KILL_SOURCE,
                        killed.attempts,
                        killed.retries,
                        max_retries,
                    ),
                )
            )
            checks.append(
                ContractCheck(
                    "breaker-state",
                    killed.breaker_state == "open",
                    "%s breaker is %s"
                    % (SCENARIO_KILL_SOURCE, killed.breaker_state),
                )
            )
        seeded = degraded_answer.report_for(SCENARIO_SEED_SOURCE)
        checks.append(
            ContractCheck(
                "transient-recovered",
                seeded is not None
                and seeded.status in (STATUS_OK, STATUS_RETRIED),
                "%s recovered via retries (status=%s)"
                % (
                    SCENARIO_SEED_SOURCE,
                    seeded.status if seeded is not None else "absent",
                ),
            )
        )

    injected: Dict[str, int] = {}
    for record in mediator._sources.values():
        for kind, count in record.wrapper.injected_counts().items():
            injected[kind] = injected.get(kind, 0) + count

    if mediator.parallel is not None:
        mediator.parallel.shutdown()

    return ChaosReport(
        "scenario",
        seed,
        schedule.describe(),
        checks,
        degraded_answer=degraded_answer,
        answers=answers,
        injected=injected,
        virtual_slept=clock.slept,
    )


# ---------------------------------------------------------------------------
# script mode
# ---------------------------------------------------------------------------


class ChaosHarness:
    """Patches :class:`~repro.core.mediator.Mediator` so that, for the
    duration of :meth:`activate`, every registered wrapper misbehaves
    on a seeded recoverable schedule and every mediator carries a
    default resilience policy."""

    def __init__(self, seed, rate=0.2, calls=60, max_retries=3):
        self.seed = seed
        self.rate = rate
        self.calls = calls
        self.max_retries = max_retries
        self.clock = VirtualClock()
        self.wrapped: List[FaultInjectingWrapper] = []
        self.mediators = []

    def make_policy(self):
        return ResiliencePolicy(
            max_retries=self.max_retries,
            backoff_base=0.02,
            seed=self.seed,
            breaker_threshold=2 * self.max_retries + 2,
            breaker_cooldown=60.0,
            degrade=True,
            clock=self.clock.now,
            sleep=self.clock.sleep,
        )

    def make_schedule(self, source):
        # recoverable by construction: at most max_retries - 1
        # consecutive faulted call indices per source
        schedule = FaultSchedule.from_seed(
            self.seed,
            [source],
            calls=self.calls,
            rate=self.rate,
            kinds=(KIND_ERROR, KIND_TRANSPORT, KIND_LATENCY),
            max_consecutive=max(1, self.max_retries - 1),
        )
        # the seeded draw may leave a short-lived source untouched;
        # always fault the first data-plane call so every script that
        # queries a source exercises the resilience layer (worst case
        # this lengthens a faulted run to max_retries consecutive
        # failures, still within the 1 + max_retries attempt budget)
        if not any(
            fault.kind != KIND_LATENCY
            for fault in schedule.faults_for(source, 1)
        ):
            schedule.add(source, 1, Fault(KIND_ERROR))
        return schedule

    @contextlib.contextmanager
    def activate(self):
        from ..core.mediator import Mediator

        harness = self
        original_init = Mediator.__init__
        original_register = Mediator.register

        def chaos_init(self, *args, **kwargs):
            original_init(self, *args, **kwargs)
            if self.resilience is None:
                self.resilience = SourceGuard(harness.make_policy())
            harness.mediators.append(self)

        def chaos_register(self, wrapper, *args, **kwargs):
            facade = FaultInjectingWrapper(
                wrapper,
                harness.make_schedule(wrapper.name),
                clock=harness.clock,
                mode="xml" if self.dialogue_via_xml else "direct",
            )
            harness.wrapped.append(facade)
            return original_register(self, facade, *args, **kwargs)

        Mediator.__init__ = chaos_init
        Mediator.register = chaos_register
        try:
            yield self
        finally:
            Mediator.__init__ = original_init
            Mediator.register = original_register

    # -- contract ----------------------------------------------------------

    def injected_counts(self):
        counts: Dict[str, int] = {}
        for facade in self.wrapped:
            for kind, count in facade.injected_counts().items():
                counts[kind] = counts.get(kind, 0) + count
        return dict(sorted(counts.items()))

    def raising_faults_injected(self):
        """Faults that make an attempt fail (latency alone does not)."""
        counts = self.injected_counts()
        return sum(
            counts.get(kind, 0)
            for kind in (KIND_ERROR, KIND_TRANSPORT, KIND_MALFORMED)
        )

    def failed_attempts_absorbed(self):
        """Failed attempts the guards saw (retried or degraded)."""
        total = 0
        for mediator in self.mediators:
            guard = mediator.resilience
            if guard is None:
                continue
            for outcome in guard.outcomes:
                successes = (
                    1 if outcome.status in (STATUS_OK, STATUS_RETRIED) else 0
                )
                total += outcome.attempts - successes
        return total

    def contract_checks(self, error):
        checks = [
            ContractCheck(
                "completed",
                error is None,
                "script completed under fault injection"
                if error is None
                else "raised %s: %s" % (type(error).__name__, error),
            )
        ]
        raising = self.raising_faults_injected()
        absorbed = self.failed_attempts_absorbed()
        checks.append(
            ContractCheck(
                "faults-absorbed",
                absorbed == raising,
                "%d raising faults injected, %d failed attempts absorbed "
                "by the resilience layer" % (raising, absorbed),
            )
        )
        return checks


def run_chaos_script(path, seed, rate=0.2, keep_output=False):
    """Run one deployment script under the chaos harness; returns a
    :class:`ChaosReport` (script mode)."""
    harness = ChaosHarness(seed, rate=rate)
    error: Optional[BaseException] = None
    with harness.activate():
        try:
            if keep_output:
                runpy.run_path(path, run_name="__main__")
            else:
                sink = io.StringIO()
                with contextlib.redirect_stdout(sink):
                    runpy.run_path(path, run_name="__main__")
        except Exception as exc:
            error = exc
    schedule_lines = [
        "%s: seeded recoverable faults (rate=%.2f)" % (facade.name, rate)
        for facade in harness.wrapped
    ]
    return ChaosReport(
        "script",
        seed,
        schedule_lines,
        harness.contract_checks(error),
        injected=harness.injected_counts(),
        virtual_slept=harness.clock.slept,
        target=path,
    )
