"""The medguard circuit breaker: closed / open / half-open per key.

One :class:`CircuitBreaker` guards one ``(source, class)`` pair (a
source may export several classes with very different health).  The
state machine is the classic one:

* **closed** — calls flow; `threshold` *consecutive* failures open it;
* **open** — calls are rejected without contacting the source until
  `cooldown` seconds (by the policy's clock) have passed;
* **half-open** — after the cooldown one probe call is let through:
  success closes the breaker, failure re-opens it (and restarts the
  cooldown).

All time comes from the caller (``now`` arguments), so the breaker is
fully deterministic under the fault harness's virtual clock.
"""

from __future__ import annotations

import threading
from typing import Dict, Optional, Tuple

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half-open"


class CircuitBreaker:
    """Consecutive-failure breaker for one ``(source, class)`` pair.

    State transitions are guarded by a lock: under medpar fan-out,
    concurrent calls to one source record successes and failures from
    several worker threads, and an unlocked failure streak could both
    lose counts and double-fire the "opened" edge.
    """

    __slots__ = (
        "threshold", "cooldown", "failures", "_state", "opened_at", "_lock",
    )

    def __init__(self, threshold, cooldown):
        self.threshold = threshold
        self.cooldown = cooldown
        self.failures = 0
        self._state = CLOSED
        self.opened_at: Optional[float] = None
        self._lock = threading.Lock()

    def state(self, now=None):
        """Current state; an open breaker past its cooldown reports
        half-open (the next call is the probe)."""
        with self._lock:
            if (
                self._state == OPEN
                and now is not None
                and self.opened_at is not None
                and now - self.opened_at >= self.cooldown
            ):
                return HALF_OPEN
            return self._state

    def allow(self, now):
        """May a call proceed now?  Transitions open -> half-open when
        the cooldown has elapsed."""
        with self._lock:
            if self._state == CLOSED:
                return True
            if self._state == OPEN:
                if now - self.opened_at >= self.cooldown:
                    self._state = HALF_OPEN
                    return True
                return False
            # half-open: the probe call is in flight; its outcome decides
            return True

    def record_success(self):
        with self._lock:
            self.failures = 0
            self._state = CLOSED
            self.opened_at = None

    def record_failure(self, now):
        """Count one failure; returns True when this failure opened
        (or re-opened) the breaker."""
        with self._lock:
            self.failures += 1
            if self._state == HALF_OPEN or (
                self.threshold is not None and self.failures >= self.threshold
            ):
                self._state = OPEN
                self.opened_at = now
                return True
            return False

    def __repr__(self):
        return "CircuitBreaker(%s, failures=%d)" % (self._state, self.failures)


class BreakerRegistry:
    """The breakers of one guard, keyed by ``(source, class)``."""

    __slots__ = ("threshold", "cooldown", "_breakers", "_lock")

    def __init__(self, threshold, cooldown):
        self.threshold = threshold
        self.cooldown = cooldown
        self._breakers: Dict[Tuple[str, str], CircuitBreaker] = {}
        self._lock = threading.Lock()

    def get(self, source, class_name):
        # locked get-or-create: two medpar workers racing the first
        # call of a pair must share one breaker, not shadow each other
        key = (source, class_name)
        with self._lock:
            breaker = self._breakers.get(key)
            if breaker is None:
                breaker = CircuitBreaker(self.threshold, self.cooldown)
                self._breakers[key] = breaker
            return breaker

    def states(self, now=None):
        """Deterministic ``(source, class) -> state`` snapshot."""
        return {
            key: self._breakers[key].state(now)
            for key in sorted(self._breakers)
        }

    def state_for_source(self, source, now=None):
        """The worst state among a source's breakers (open > half-open
        > closed); `closed` when the source has none."""
        order = {OPEN: 0, HALF_OPEN: 1, CLOSED: 2}
        states = [
            breaker.state(now)
            for (name, _cls), breaker in self._breakers.items()
            if name == source
        ]
        if not states:
            return CLOSED
        return min(states, key=order.__getitem__)

    def __repr__(self):
        return "BreakerRegistry(%d breakers)" % len(self._breakers)
