"""The degraded-answer contract: structured per-source degradation.

A federated answer is *degraded* when any selected source could not
contribute normally — it was skipped after exhausted retries, its
breaker was open, or a stale cached answer was substituted.  The
contract of the resilience layer is that such answers are never
silent: :class:`DegradedAnswer` names every source the plan touched,
what happened to it, and how hard the mediator tried.

Statuses (worst wins when aggregating a source's calls):

* ``breaker-open`` — at least one call was shed by an open breaker;
* ``skipped`` — the source failed for good and its contribution is
  missing from the answer;
* ``served-stale`` — a last-known-good answer was substituted;
* ``retried`` — transient failures, recovered by retrying;
* ``ok`` — every call succeeded first try.

Rendering (:meth:`DegradedAnswer.format`) is deterministic — no
timings, sorted sources — so identical fault schedules reproduce
identical reports byte-for-byte.
"""

from __future__ import annotations

from typing import Dict, List, Optional

from .guard import (
    STATUS_BREAKER_OPEN,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    STATUS_STALE,
)

#: aggregation priority: the worst status of a source's calls wins
_STATUS_RANK = {
    STATUS_BREAKER_OPEN: 0,
    "skipped": 1,
    STATUS_FAILED: 1,  # a failed call that degraded the plan == skipped
    STATUS_STALE: 2,
    STATUS_RETRIED: 3,
    STATUS_OK: 4,
}


class SourceReport:
    """Aggregated resilience record of one source across a plan."""

    __slots__ = (
        "source",
        "status",
        "calls",
        "attempts",
        "retries",
        "stale_calls",
        "breaker_state",
        "error",
    )

    def __init__(self, source):
        self.source = source
        self.status = STATUS_OK
        self.calls = 0
        self.attempts = 0
        self.retries = 0
        self.stale_calls = 0
        self.breaker_state = "closed"
        self.error: Optional[str] = None

    def absorb_status(self, status):
        if _STATUS_RANK[status] < _STATUS_RANK[self.status]:
            self.status = (
                "skipped" if status == STATUS_FAILED else status
            )

    def as_dict(self):
        return {
            "source": self.source,
            "status": self.status,
            "calls": self.calls,
            "attempts": self.attempts,
            "retries": self.retries,
            "stale_calls": self.stale_calls,
            "breaker_state": self.breaker_state,
            "error": self.error,
        }

    def format_line(self):
        parts = [
            "%-12s %-13s" % (self.source, self.status),
            "calls=%d attempts=%d retries=%d" % (
                self.calls, self.attempts, self.retries,
            ),
            "breaker=%s" % self.breaker_state,
        ]
        if self.stale_calls:
            parts.append("stale=%d" % self.stale_calls)
        if self.error:
            parts.append("error=%s" % self.error)
        return "  ".join(parts)

    def __repr__(self):
        return "SourceReport(%r, %s)" % (self.source, self.status)


class DegradedAnswer:
    """The per-source degradation report of one correlation answer."""

    def __init__(self, sources):
        #: :class:`SourceReport` records, sorted by source name
        self.sources: List[SourceReport] = sorted(
            sources, key=lambda r: r.source
        )

    @property
    def degraded(self):
        """True when any source's contribution is missing or stale."""
        return any(
            report.status in ("skipped", STATUS_STALE, STATUS_BREAKER_OPEN)
            for report in self.sources
        )

    @property
    def complete(self):
        return not self.degraded

    def report_for(self, source):
        for report in self.sources:
            if report.source == source:
                return report
        return None

    def as_dict(self):
        return {
            "degraded": self.degraded,
            "sources": [report.as_dict() for report in self.sources],
        }

    def format(self):
        """Deterministic human-readable report."""
        if not self.sources:
            return "answer complete: no guarded source calls"
        lines = [
            "answer %s (%d sources)"
            % ("DEGRADED" if self.degraded else "complete", len(self.sources))
        ]
        for report in self.sources:
            lines.append("  " + report.format_line())
        return "\n".join(lines)

    def __bool__(self):
        return self.degraded

    def __repr__(self):
        return "DegradedAnswer(degraded=%r, sources=%d)" % (
            self.degraded,
            len(self.sources),
        )


def build_degraded_answer(outcomes, skip_records, guard=None, now=None):
    """Assemble a :class:`DegradedAnswer` from a plan's guard-call
    outcomes and its ``skip_failed_sources``-style skip records.

    Works without a guard too (plain ``skip_failed_sources`` runs):
    skip records alone yield one ``skipped`` entry per source.
    """
    reports: Dict[str, SourceReport] = {}

    def report_of(source):
        report = reports.get(source)
        if report is None:
            report = SourceReport(source)
            reports[source] = report
        return report

    for outcome in outcomes:
        report = report_of(outcome.source)
        report.calls += 1
        report.attempts += outcome.attempts
        report.retries += outcome.retries
        if outcome.stale:
            report.stale_calls += 1
        report.absorb_status(outcome.status)
        if outcome.error is not None:
            report.error = outcome.error

    for source, exc in skip_records:
        report = report_of(source)
        report.absorb_status(STATUS_FAILED)
        report.error = "%s: %s" % (type(exc).__name__, exc)
        if report.calls == 0:
            # no guarded call ran (plain skip_failed_sources): the one
            # direct attempt is the skip itself
            report.calls = 1
            report.attempts = 1

    if guard is not None:
        if now is None:
            now = guard.policy.clock()
        for report in reports.values():
            report.breaker_state = guard.breakers.state_for_source(
                report.source, now
            )

    return DegradedAnswer(reports.values())
