"""Deterministic fault injection for wrapped sources.

:class:`FaultInjectingWrapper` decorates any
:class:`~repro.sources.Wrapper` and misbehaves on a *seeded schedule*
(:class:`FaultSchedule`): the same seed injects the same faults at the
same call indices, so chaos runs reproduce byte-for-byte.  Supported
fault kinds:

* ``error`` — raise :class:`~repro.errors.SourceError` (lost
  connection, backend down);
* ``transport`` — raise :class:`~repro.errors.XMLTransportError`;
* ``malformed`` — corrupt the XML answer payload (truncated document,
  wrong root element, or a lying ``count``), exercising the wire
  codec's hardening; on the direct (non-XML) dialogue this degenerates
  to a transport error;
* ``latency`` — stall the call (advances the harness's
  :class:`VirtualClock`, or really sleeps on a wall clock), driving
  per-call timeouts;
* ``truncate`` — silently drop trailing result rows (a misbehaving
  source returning partial data);
* killing (:meth:`FaultSchedule.kill`) — from a given call on, every
  call fails (a source dying mid-plan);
* flapping (:meth:`FaultSchedule.flap`) — fail within a call-index
  window, recover after.

Time during chaos runs is virtual: the shared :class:`VirtualClock`
only moves when someone sleeps on it or a latency fault advances it,
which makes timeout and breaker-cooldown behaviour exactly
reproducible.
"""

from __future__ import annotations

import random
import threading
from typing import Dict, List, Optional, Tuple

from .. import obs
from ..errors import SourceError, XMLTransportError

KIND_ERROR = "error"
KIND_TRANSPORT = "transport"
KIND_MALFORMED = "malformed"
KIND_LATENCY = "latency"
KIND_TRUNCATE = "truncate"

FAULT_KINDS = (
    KIND_ERROR,
    KIND_TRANSPORT,
    KIND_MALFORMED,
    KIND_LATENCY,
    KIND_TRUNCATE,
)

#: malformed-payload corruption variants
MALFORMED_VARIANTS = ("truncated-doc", "wrong-root", "bad-count")


class VirtualClock:
    """A deterministic clock: time only moves when told to.

    Mutations are locked: under medpar fan-out several workers may
    sleep on or advance the shared clock, and the float accumulations
    are read-modify-write.
    """

    __slots__ = ("_now", "slept", "_lock")

    def __init__(self, start=0.0):
        self._now = float(start)
        #: total seconds spent in :meth:`sleep` (backoff accounting)
        self.slept = 0.0
        self._lock = threading.Lock()

    def now(self):
        return self._now

    def sleep(self, seconds):
        with self._lock:
            self._now += seconds
            self.slept += seconds

    def advance(self, seconds):
        with self._lock:
            self._now += seconds

    def __repr__(self):
        return "VirtualClock(%.3f)" % self._now


class Fault:
    """One scheduled fault at one (source, call-index) slot."""

    __slots__ = ("kind", "latency", "drop", "variant")

    def __init__(self, kind, latency=0.0, drop=1, variant=None):
        if kind not in FAULT_KINDS:
            raise ValueError("unknown fault kind %r" % kind)
        self.kind = kind
        self.latency = latency
        self.drop = drop
        self.variant = variant

    def describe(self):
        if self.kind == KIND_LATENCY:
            return "latency+%.2fs" % self.latency
        if self.kind == KIND_TRUNCATE:
            return "truncate-%d" % self.drop
        if self.kind == KIND_MALFORMED:
            return "malformed(%s)" % (self.variant or MALFORMED_VARIANTS[0])
        return self.kind

    def as_dict(self):
        return {
            "kind": self.kind,
            "latency": self.latency,
            "drop": self.drop,
            "variant": self.variant,
        }

    def __repr__(self):
        return "Fault(%s)" % self.describe()


class FaultSchedule:
    """A deterministic per-source fault plan, indexed by call number
    (1-based: the n-th ``query``/``run_template`` call the wrapper
    receives, retries included)."""

    def __init__(self):
        self._slots: Dict[Tuple[str, int], List[Fault]] = {}
        self._kill_from: Dict[str, int] = {}
        self._flaps: Dict[str, List[Tuple[int, int]]] = {}

    # -- authoring ---------------------------------------------------------

    def add(self, source, call, fault):
        """Inject `fault` on `source`'s `call`-th call."""
        self._slots.setdefault((source, call), []).append(fault)
        return self

    def kill(self, source, after=0):
        """Permanently fail `source` for every call index > `after`
        (``after=0`` kills it outright)."""
        self._kill_from[source] = after + 1
        return self

    def flap(self, source, start, end):
        """Fail `source` for call indices in [start, end], then
        recover (flapping availability)."""
        self._flaps.setdefault(source, []).append((start, end))
        return self

    @classmethod
    def from_seed(
        cls,
        seed,
        sources,
        calls=30,
        rate=0.2,
        kinds=(KIND_ERROR, KIND_TRANSPORT, KIND_LATENCY),
        max_consecutive=2,
        latency=0.5,
    ):
        """A seeded random schedule of *recoverable* faults.

        At most `max_consecutive` successive call indices of one source
        are faulted, so a retry budget of ``max_retries >=
        max_consecutive`` always recovers.  The same (seed, sources,
        parameters) produce the identical schedule.
        """
        schedule = cls()
        for source in sorted(sources):
            rng = random.Random("%s/%s" % (seed, source))
            consecutive = 0
            for call in range(1, calls + 1):
                if consecutive >= max_consecutive:
                    consecutive = 0
                    continue
                if rng.random() < rate:
                    kind = kinds[rng.randrange(len(kinds))]
                    variant = (
                        MALFORMED_VARIANTS[
                            rng.randrange(len(MALFORMED_VARIANTS))
                        ]
                        if kind == KIND_MALFORMED
                        else None
                    )
                    schedule.add(
                        source,
                        call,
                        Fault(kind, latency=latency, variant=variant),
                    )
                    consecutive += 1
                else:
                    consecutive = 0
        return schedule

    # -- lookup ------------------------------------------------------------

    def faults_for(self, source, call):
        """The faults to apply to `source`'s `call`-th call."""
        faults = list(self._slots.get((source, call), ()))
        kill_from = self._kill_from.get(source)
        if kill_from is not None and call >= kill_from:
            faults.append(Fault(KIND_ERROR))
        for start, end in self._flaps.get(source, ()):
            if start <= call <= end:
                faults.append(Fault(KIND_ERROR))
        return faults

    def describe(self):
        """Deterministic text rendering of the schedule."""
        lines = []
        for source, call in sorted(self._slots):
            for fault in self._slots[(source, call)]:
                lines.append(
                    "%s call %d: %s" % (source, call, fault.describe())
                )
        for source in sorted(self._kill_from):
            lines.append(
                "%s: killed from call %d" % (source, self._kill_from[source])
            )
        for source in sorted(self._flaps):
            for start, end in self._flaps[source]:
                lines.append(
                    "%s: flapping over calls %d-%d" % (source, start, end)
                )
        return lines

    def __repr__(self):
        return "FaultSchedule(slots=%d, kills=%d)" % (
            len(self._slots),
            len(self._kill_from),
        )


class FaultInjectingWrapper:
    """A :class:`~repro.sources.Wrapper` decorator misbehaving on a
    deterministic :class:`FaultSchedule`.

    Only the *query endpoints* (``query`` / ``run_template``) inject
    faults — schema export, registration, and lifting delegate to the
    wrapped source untouched, mirroring a source whose data plane
    flakes while its control plane stays up.  With ``mode="xml"``,
    malformed faults corrupt the serialized XML answer (via the
    ``mangle_answer`` hook honoured by
    :func:`repro.xmlio.messages.handle_request`) instead of raising.
    """

    def __init__(self, inner, schedule, clock=None, mode="direct"):
        if mode not in ("direct", "xml"):
            raise ValueError("mode must be 'direct' or 'xml'")
        self.inner = inner
        self.schedule = schedule
        self.clock = clock
        self.mode = mode
        self.calls = 0
        #: (call index, fault) pairs actually injected, in order
        self.injected: List[Tuple[int, Fault]] = []
        self._mangle_next: Optional[Fault] = None
        # call-index assignment must be atomic: concurrent medpar
        # workers racing `calls += 1` would replay or skip schedule
        # slots
        self._lock = threading.Lock()

    # -- delegation --------------------------------------------------------

    @property
    def name(self):
        return self.inner.name

    @property
    def unwrapped(self):
        """The real wrapper underneath (for in-process shortcuts)."""
        return self.inner.unwrapped

    def __getattr__(self, attr):
        return getattr(self.inner, attr)

    # -- the faulted data plane --------------------------------------------

    def query(self, source_query):
        rows = self._faulted_call(lambda: self.inner.query(source_query))
        return rows

    def run_template(self, class_name, template_name, **arguments):
        return self._faulted_call(
            lambda: self.inner.run_template(
                class_name, template_name, **arguments
            )
        )

    def _faulted_call(self, fn):
        with self._lock:
            self.calls += 1
            call = self.calls
        truncate = None
        for fault in self.schedule.faults_for(self.name, call):
            self.injected.append((call, fault))
            obs.count("resilience.faults_injected", source=self.name)
            obs.event(
                "resilience.fault_injected",
                source=self.name,
                call=call,
                kind=fault.kind,
            )
            if fault.kind == KIND_LATENCY:
                if self.clock is not None:
                    self.clock.advance(fault.latency)
            elif fault.kind == KIND_ERROR:
                raise SourceError(
                    "injected outage at %s (call %d)" % (self.name, call)
                )
            elif fault.kind == KIND_TRANSPORT:
                raise XMLTransportError(
                    "injected transport fault at %s (call %d)"
                    % (self.name, call)
                )
            elif fault.kind == KIND_MALFORMED:
                if self.mode == "xml":
                    self._mangle_next = fault
                else:
                    raise XMLTransportError(
                        "injected malformed payload at %s (call %d)"
                        % (self.name, call)
                    )
            elif fault.kind == KIND_TRUNCATE:
                truncate = fault
        rows = fn()
        if truncate is not None and isinstance(rows, list) and rows:
            rows = rows[: max(0, len(rows) - truncate.drop)]
        return rows

    def mangle_answer(self, answer_xml):
        """Corrupt the XML answer when a malformed fault is pending
        (the :func:`~repro.xmlio.messages.handle_request` hook)."""
        fault = self._mangle_next
        if fault is None:
            return answer_xml
        self._mangle_next = None
        variant = fault.variant or MALFORMED_VARIANTS[0]
        if variant == "truncated-doc":
            return answer_xml[: max(1, len(answer_xml) // 2)]
        if variant == "wrong-root":
            return answer_xml.replace("<answer", "<wrong", 1).replace(
                "</answer>", "</wrong>"
            )
        # bad-count: the declared row count lies
        return answer_xml.replace('count="', 'count="9', 1)

    def injected_counts(self):
        """Deterministic ``fault kind -> count`` summary."""
        counts: Dict[str, int] = {}
        for _call, fault in self.injected:
            counts[fault.kind] = counts.get(fault.kind, 0) + 1
        return dict(sorted(counts.items()))

    def __repr__(self):
        return "FaultInjectingWrapper(%r, calls=%d, injected=%d)" % (
            self.name,
            self.calls,
            len(self.injected),
        )
