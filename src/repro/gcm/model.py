"""The generic conceptual model (GCM): schemas and instances.

Section 3 of the paper derives the GCM core from the common features of
conceptual models: classes with methods, a subclass partial order with
inheritance, and n-ary relations with named roles.  This module gives
those declarations a programmatic API and compiles them to the Datalog
relations of Table 1:

==================================  =========================================
GCM declaration                     compiled form
==================================  =========================================
``instance(X, C)``                  fact `instance(X, C)`
``subclass(C1, C2)``                fact `subclass(C1, C2)`
``method(C, M, CM)``                fact `method(C, M, CM)`
``methodinst(X, M, Y)``             fact `method_inst(X, M, Y)`
``relation(R, A1=C1, ..., An=Cn)``  facts `relation_sig(R, i, Ai, Ci)` and
                                    `method(R, Ai, Ci)` (the paper's
                                    ``R[A1 => C1; ...]`` rendering) plus
                                    bridge rules between the predicate
                                    ``R(X1, ..., Xn)`` and reified tuple
                                    objects ``t_R(X1, ..., Xn)``
==================================  =========================================

The tuple-object bridge implements Table 1's equivalence
``relationinst(R, A1=X1, ...) == r(X1,...,Xn) == :R[A1->X1; ...]``: a
relation instance is visible both as a flat predicate fact and as an
anonymous object of class R whose role methods hold the components.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..datalog.ast import Atom, Literal, Program, Rule
from ..datalog.terms import Const, Struct, Var, coerce_term
from ..flogic.engine import FLogicEngine
from ..flogic.parser import parse_fl_program

#: relation signature bookkeeping predicate: relation_sig(R, index, role, class)
PRED_RELATION_SIG = "relation_sig"


class MethodDef:
    """A method (attribute/slot) declaration ``C[M => CM]``.

    `multivalued` distinguishes ``=>>`` from ``=>``; scalar methods can
    additionally be enforced with
    :func:`repro.gcm.library.scalar_method_constraint`.
    """

    __slots__ = ("name", "result_class", "multivalued")

    def __init__(self, name, result_class, multivalued=False):
        self.name = name
        self.result_class = result_class
        self.multivalued = multivalued

    def __repr__(self):
        arrow = "=>>" if self.multivalued else "=>"
        return "MethodDef(%s %s %s)" % (self.name, arrow, self.result_class)


class ClassDef:
    """A class declaration with superclasses and method signatures."""

    def __init__(self, name, superclasses=(), methods=()):
        self.name = name
        self.superclasses = tuple(superclasses)
        self.methods: Dict[str, MethodDef] = {}
        for method in methods:
            self.add_method(method)

    def add_method(self, method):
        if method.name in self.methods:
            raise SchemaError(
                "duplicate method %r on class %r" % (method.name, self.name)
            )
        self.methods[method.name] = method
        return self

    def __repr__(self):
        return "ClassDef(%r, supers=%r, methods=%r)" % (
            self.name,
            self.superclasses,
            sorted(self.methods),
        )


class RelationDef:
    """An n-ary relation with ordered, named, typed roles."""

    def __init__(self, name, roles):
        self.name = name
        self.roles: Tuple[Tuple[str, str], ...] = tuple(roles)
        if not self.roles:
            raise SchemaError("relation %r needs at least one role" % name)
        names = [role for role, _cls in self.roles]
        if len(set(names)) != len(names):
            raise SchemaError("relation %r has duplicate role names" % name)

    @property
    def arity(self):
        return len(self.roles)

    @property
    def role_names(self):
        return tuple(role for role, _cls in self.roles)

    def role_index(self, role):
        for index, (name, _cls) in enumerate(self.roles):
            if name == role:
                return index
        raise SchemaError("relation %r has no role %r" % (self.name, role))

    def tuple_functor(self):
        """Functor of the reified tuple objects for this relation."""
        return "t_%s" % self.name

    def __repr__(self):
        return "RelationDef(%r, %r)" % (self.name, self.roles)


class ConceptualModel:
    """A conceptual model: schema + semantic rules + instance data.

    This is what a wrapper exports to the mediator ("CM(S)"): class
    schemas, relationship schemas, semantic rules, and instances.  The
    mediator merges registered CMs into one F-logic engine.
    """

    def __init__(self, name):
        self.name = name
        self.classes: Dict[str, ClassDef] = {}
        self.relations: Dict[str, RelationDef] = {}
        self.constraints: List = []
        self._instance_facts: List[Rule] = []
        self._value_facts: List[Rule] = []
        self._relation_facts: List[Rule] = []
        self._rules: List[Rule] = []

    # -- schema declarations --------------------------------------------

    def add_class(self, name, superclasses=(), methods=None):
        """Declare a class; `methods` maps name -> result class, or
        name -> (result class, multivalued)."""
        if name in self.classes:
            raise SchemaError("class %r already declared in %r" % (name, self.name))
        class_def = ClassDef(name, superclasses)
        for method_name, spec in (methods or {}).items():
            if isinstance(spec, tuple):
                result_class, multivalued = spec
            else:
                result_class, multivalued = spec, False
            class_def.add_method(MethodDef(method_name, result_class, multivalued))
        self.classes[name] = class_def
        return class_def

    def add_superclass(self, name, superclass):
        """Add a superclass to an already-declared class (used by CM
        plug-ins, which discover generalizations after classes)."""
        class_def = self.classes.get(name)
        if class_def is None:
            raise SchemaError("class %r not declared in %r" % (name, self.name))
        if superclass not in class_def.superclasses:
            class_def.superclasses = class_def.superclasses + (superclass,)
        return class_def

    def add_method(self, class_name, method_name, result_class, multivalued=False):
        """Add a method to an already-declared class."""
        class_def = self.classes.get(class_name)
        if class_def is None:
            raise SchemaError(
                "class %r not declared in %r" % (class_name, self.name)
            )
        class_def.add_method(MethodDef(method_name, result_class, multivalued))
        return class_def

    def add_relation(self, name, roles):
        """Declare an n-ary relation; `roles` is an ordered sequence of
        (role name, class name) pairs."""
        if name in self.relations:
            raise SchemaError(
                "relation %r already declared in %r" % (name, self.name)
            )
        relation = RelationDef(name, roles)
        self.relations[name] = relation
        return relation

    def add_constraint(self, constraint):
        """Attach an integrity constraint (see :mod:`repro.gcm.constraints`)."""
        self.constraints.append(constraint)
        return constraint

    # -- semantic rules ----------------------------------------------------

    def add_rule(self, fl_text):
        """Add semantic rules in F-logic syntax."""
        from ..flogic.translate import Translator

        translator = Translator()
        self._rules.extend(translator.translate_rules(parse_fl_program(fl_text)))
        return self

    def add_datalog(self, text_or_rules):
        """Add raw Datalog rules (text or Rule iterable)."""
        if isinstance(text_or_rules, str):
            from ..datalog.parser import parse_program

            self._rules.extend(parse_program(text_or_rules))
        else:
            self._rules.extend(text_or_rules)
        return self

    # -- instance data ------------------------------------------------------

    def add_instance(self, obj, class_name):
        """Assert ``obj : class_name``."""
        if class_name not in self.classes:
            raise SchemaError(
                "class %r not declared in CM %r" % (class_name, self.name)
            )
        self._instance_facts.append(
            Rule(Atom("instance", (coerce_term(obj), Const(class_name))))
        )
        return self

    def set_value(self, obj, method, value):
        """Assert ``obj[method -> value]``."""
        self._value_facts.append(
            Rule(
                Atom(
                    "method_inst",
                    (coerce_term(obj), Const(method), coerce_term(value)),
                )
            )
        )
        return self

    def add_relation_instance(self, relation_name, **role_values):
        """Assert a relation tuple by role name, e.g.
        ``cm.add_relation_instance("has", whole="n1", part="a1")``."""
        relation = self.relations.get(relation_name)
        if relation is None:
            raise SchemaError(
                "relation %r not declared in CM %r" % (relation_name, self.name)
            )
        missing = set(relation.role_names) - set(role_values)
        extra = set(role_values) - set(relation.role_names)
        if missing or extra:
            raise SchemaError(
                "relation %r instance roles mismatch (missing %s, extra %s)"
                % (relation_name, sorted(missing), sorted(extra))
            )
        args = tuple(
            coerce_term(role_values[role]) for role in relation.role_names
        )
        self._relation_facts.append(Rule(Atom(relation_name, args)))
        return self

    # -- compilation -----------------------------------------------------

    def schema_rules(self):
        """Datalog rules/facts for the schema declarations."""
        rules: List[Rule] = []
        for class_def in self.classes.values():
            rules.append(Rule(Atom("class", (Const(class_def.name),))))
            for sup in class_def.superclasses:
                rules.append(
                    Rule(Atom("subclass", (Const(class_def.name), Const(sup))))
                )
            for method in class_def.methods.values():
                rules.append(
                    Rule(
                        Atom(
                            "method",
                            (
                                Const(class_def.name),
                                Const(method.name),
                                Const(method.result_class),
                            ),
                        )
                    )
                )
        for relation in self.relations.values():
            rules.extend(_relation_schema_rules(relation))
        return rules

    def data_rules(self):
        """Datalog facts for the instance-level data."""
        return list(self._instance_facts) + list(self._value_facts) + list(
            self._relation_facts
        )

    def semantic_rules(self):
        """User-supplied semantic rules (already translated to Datalog)."""
        return list(self._rules)

    def constraint_rules(self):
        rules: List[Rule] = []
        for constraint in self.constraints:
            rules.extend(constraint.rules())
        return rules

    def all_rules(self, include_constraints=True):
        rules = self.schema_rules() + self.data_rules() + self.semantic_rules()
        if include_constraints:
            rules += self.constraint_rules()
        return rules

    def to_engine(self, include_constraints=False):
        """Build a fresh F-logic engine loaded with this CM.

        Constraint denials are excluded by default: integrity checking
        is a two-phase operation (see :func:`repro.gcm.check`) and
        loading denials into the live engine can create aggregate-
        through-recursion cycles with the relation bridge rules.
        """
        engine = FLogicEngine()
        engine.tell_rules(self.all_rules(include_constraints=include_constraints))
        return engine

    # -- introspection ------------------------------------------------------

    def class_names(self):
        return sorted(self.classes)

    def relation_names(self):
        return sorted(self.relations)

    def describe(self):
        """A human-readable schema summary."""
        lines = ["conceptual model %s" % self.name]
        for name in self.class_names():
            class_def = self.classes[name]
            supers = (
                " :: " + ", ".join(class_def.superclasses)
                if class_def.superclasses
                else ""
            )
            lines.append("  class %s%s" % (name, supers))
            for method in sorted(class_def.methods):
                method_def = class_def.methods[method]
                arrow = "=>>" if method_def.multivalued else "=>"
                lines.append(
                    "    %s %s %s" % (method, arrow, method_def.result_class)
                )
        for name in self.relation_names():
            relation = self.relations[name]
            roles = ", ".join("%s/%s" % role for role in relation.roles)
            lines.append("  relation %s(%s)" % (name, roles))
        return "\n".join(lines)


def _relation_schema_rules(relation):
    """Signature facts + tuple-object bridge for one relation."""
    rules: List[Rule] = []
    r_const = Const(relation.name)
    rules.append(Rule(Atom("class", (r_const,))))
    for index, (role, class_name) in enumerate(relation.roles):
        rules.append(
            Rule(
                Atom(
                    PRED_RELATION_SIG,
                    (r_const, Const(index), Const(role), Const(class_name)),
                )
            )
        )
        rules.append(Rule(Atom("method", (r_const, Const(role), Const(class_name)))))

    arg_vars = tuple(Var("X%d" % i) for i in range(relation.arity))
    tuple_term = Struct(relation.tuple_functor(), arg_vars)
    flat = Atom(relation.name, arg_vars)

    # predicate fact -> reified tuple object
    rules.append(Rule(Atom("instance", (tuple_term, r_const)), (Literal(flat),)))
    for index, (role, _cls) in enumerate(relation.roles):
        rules.append(
            Rule(
                Atom("method_inst", (tuple_term, Const(role), arg_vars[index])),
                (Literal(flat),),
            )
        )

    # any object of class R with all roles filled -> predicate fact
    t_var = Var("T")
    body = [Literal(Atom("instance", (t_var, r_const)))]
    for index, (role, _cls) in enumerate(relation.roles):
        body.append(
            Literal(Atom("method_val", (t_var, Const(role), arg_vars[index])))
        )
    rules.append(Rule(flat, tuple(body)))
    return rules
