"""Generic conceptual model (GCM): schemas, rules, integrity checking.

Section 3 of the paper specifies the GCM as the meta-model every source
CM is translated into: core expressions `instance` / `subclass` /
`method` / `methodinst` / `relation`, a rule-based extension mechanism
with well-founded semantics, and integrity constraints as denials that
insert failure witnesses into the distinguished class `ic`.

Quick use::

    from repro.gcm import ConceptualModel, check
    from repro.gcm.library import cardinality_constraint

    cm = ConceptualModel("demo")
    cm.add_class("neuron", methods={"location": "string"})
    cm.add_class("axon")
    cm.add_relation("has", [("whole", "neuron"), ("part", "axon")])
    cm.add_instance("n1", "neuron")
    cm.add_relation_instance("has", whole="n1", part="a1")
    report = check(
        cm.all_rules(),
        [cardinality_constraint("has", 2, counted_position=0, exact=1)],
    )
    report.ok
"""

from .constraints import (
    IC_CLASS,
    Constraint,
    ConstraintReport,
    Witness,
    check,
    constraint_from_text,
    witnesses_from_store,
)
from .library import (
    cardinality_constraint,
    existential_edge_constraint,
    functional_dependency,
    higher_order_bridge,
    key_constraint,
    partial_order_constraint,
    partial_order_constraint_ho,
    referential_constraint,
    scalar_method_constraint,
    universal_edge_constraint,
    value_range_constraint,
)
from .model import (
    PRED_RELATION_SIG,
    ClassDef,
    ConceptualModel,
    MethodDef,
    RelationDef,
)

__all__ = [
    "IC_CLASS",
    "PRED_RELATION_SIG",
    "ClassDef",
    "ConceptualModel",
    "Constraint",
    "ConstraintReport",
    "MethodDef",
    "RelationDef",
    "Witness",
    "cardinality_constraint",
    "check",
    "constraint_from_text",
    "existential_edge_constraint",
    "functional_dependency",
    "higher_order_bridge",
    "key_constraint",
    "partial_order_constraint",
    "partial_order_constraint_ho",
    "referential_constraint",
    "scalar_method_constraint",
    "universal_edge_constraint",
    "value_range_constraint",
    "witnesses_from_store",
]
