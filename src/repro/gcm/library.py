"""A library of reusable integrity-constraint generators.

Covers the constraints the paper calls out:

* :func:`partial_order_constraint` — Example 2: rules (1)-(3) testing
  reflexivity, transitivity and antisymmetry of a relation over a
  class, with `wrc`/`wtc`/`was` witnesses.
* :func:`cardinality_constraint` — Example 3: role-cardinality bounds
  via count aggregation, with `w_card_*` witnesses (the paper's
  ``w6=1``/``w>2``).
* :func:`scalar_method_constraint` — functionality of ``=>`` methods.
* :func:`key_constraint` — key attributes over a class.
* :func:`referential_constraint` — role fillers typed by their declared
  class (inclusion dependency).
* :func:`existential_edge_constraint` / :func:`universal_edge_constraint`
  — Section 4's executable readings of domain-map edges as integrity
  constraints (data completeness w.r.t. ``C -r-> D``).

All generators build rule ASTs directly (no text formatting), so names
with spaces — ubiquitous in the Neuroscience domain maps — are safe.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, Tuple

from ..errors import SchemaError
from ..datalog.ast import AggregateLiteral, Atom, Comparison, Literal, Rule
from ..datalog.terms import Const, Struct, Var
from .constraints import IC_CLASS, Constraint


def _ic_head(witness):
    return Atom("instance", (witness, Const(IC_CLASS)))


def _aux_name(prefix, *parts):
    digest = hashlib.sha1("|".join(str(p) for p in parts).encode("utf-8")).hexdigest()
    return "_%s_%s" % (prefix, digest[:10])


def partial_order_constraint(relation_pred, class_name):
    """Example 2: is `relation_pred` a partial order on `class_name`?

    Generates the paper's three denials::

        (1) wrc(C,R,X)     : ic :- X : C, not R(X,X).
        (2) wtc(C,R,X,Z,Y) : ic :- X,Y,Z : C, R(X,Z), R(Z,Y), not R(X,Y).
        (3) was(C,R,X,Y)   : ic :- X : C, R(X,Y), R(Y,X), X != Y.

    Assigning ``subclass`` and the metaclass ``class`` to R and C tests
    whether ``::`` is a partial order — schema-level reasoning.
    """
    c, r = Const(class_name), Const(relation_pred)
    x, y, z = Var("X"), Var("Y"), Var("Z")

    reflexivity = Rule(
        _ic_head(Struct("wrc", (c, r, x))),
        (
            Literal(Atom("instance", (x, c))),
            Literal(Atom(relation_pred, (x, x)), positive=False),
        ),
    )
    transitivity = Rule(
        _ic_head(Struct("wtc", (c, r, x, z, y))),
        (
            Literal(Atom("instance", (x, c))),
            Literal(Atom("instance", (y, c))),
            Literal(Atom("instance", (z, c))),
            Literal(Atom(relation_pred, (x, z))),
            Literal(Atom(relation_pred, (z, y))),
            Literal(Atom(relation_pred, (x, y)), positive=False),
        ),
    )
    antisymmetry = Rule(
        _ic_head(Struct("was", (c, r, x, y))),
        (
            Literal(Atom("instance", (x, c))),
            Literal(Atom(relation_pred, (x, y))),
            Literal(Atom(relation_pred, (y, x))),
            Comparison("!=", x, y),
        ),
    )
    return Constraint(
        "partial_order(%s on %s)" % (relation_pred, class_name),
        [reflexivity, transitivity, antisymmetry],
        "R is a partial order on C iff no wrc/wtc/was witness is derived",
    )


def higher_order_bridge(relation_preds):
    """Reify binary relations so rules can quantify over them.

    Example 2 uses R as a *relation variable* ("this example also shows
    the power of schema reasoning in FL").  Plain Datalog has no
    higher-order atoms, so the bridge materializes every listed binary
    relation into ``rel2(name, X, Y)`` facts; rules may then bind the
    relation name.
    """
    rules: List[Rule] = []
    x, y = Var("X"), Var("Y")
    for pred in relation_preds:
        rules.append(
            Rule(
                Atom("rel2", (Const(pred), x, y)),
                (Literal(Atom(pred, (x, y))),),
            )
        )
        rules.append(Rule(Atom("rel2_name", (Const(pred),))))
    return rules


def partial_order_constraint_ho(relation_preds, class_name):
    """Example 2 with R as a genuine variable over the bridged relations.

    One rule set checks *every* listed relation against `class_name`,
    quantifying over the relation name through ``rel2``; witnesses are
    identical in shape to :func:`partial_order_constraint`.
    """
    c = Const(class_name)
    r = Var("R")
    x, y, z = Var("X"), Var("Y"), Var("Z")

    reflexivity = Rule(
        _ic_head(Struct("wrc", (c, r, x))),
        (
            Literal(Atom("rel2_name", (r,))),
            Literal(Atom("instance", (x, c))),
            Literal(Atom("rel2", (r, x, x)), positive=False),
        ),
    )
    transitivity = Rule(
        _ic_head(Struct("wtc", (c, r, x, z, y))),
        (
            Literal(Atom("instance", (x, c))),
            Literal(Atom("instance", (y, c))),
            Literal(Atom("instance", (z, c))),
            Literal(Atom("rel2", (r, x, z))),
            Literal(Atom("rel2", (r, z, y))),
            Literal(Atom("rel2", (r, x, y)), positive=False),
        ),
    )
    antisymmetry = Rule(
        _ic_head(Struct("was", (c, r, x, y))),
        (
            Literal(Atom("instance", (x, c))),
            Literal(Atom("rel2", (r, x, y))),
            Literal(Atom("rel2", (r, y, x))),
            Comparison("!=", x, y),
        ),
    )
    rules = higher_order_bridge(relation_preds)
    rules += [reflexivity, transitivity, antisymmetry]
    return Constraint(
        "partial_order_ho(%s on %s)" % (", ".join(relation_preds), class_name),
        rules,
        "every bridged relation must be a partial order on C",
    )


def cardinality_constraint(
    relation_pred,
    arity,
    counted_position,
    exact=None,
    min_count=None,
    max_count=None,
    group_class=None,
):
    """Example 3: bound the count of one role per combination of the rest.

    For the paper's ``has(neuron, axon)`` with card_A(N)=(N=1) and
    card_B(N)=(N<=2)::

        cardinality_constraint("has", 2, counted_position=0, exact=1)
        cardinality_constraint("has", 2, counted_position=1, max_count=2)

    `min_count` additionally requires a `group_class`: minimums must be
    checked for every instance of the class playing the grouping role
    (an absent group would otherwise silently satisfy the bound).  The
    min form is only available for binary relations.
    """
    if sum(p is not None for p in (exact, min_count, max_count)) != 1:
        raise SchemaError(
            "specify exactly one of exact / min_count / max_count"
        )
    if not 0 <= counted_position < arity:
        raise SchemaError("counted_position out of range")
    r = Const(relation_pred)
    args = tuple(Var("V%d" % i) for i in range(arity))
    counted = args[counted_position]
    group = tuple(a for i, a in enumerate(args) if i != counted_position)
    n = Var("N")
    count_literal = AggregateLiteral(
        "count", n, counted, group, (Literal(Atom(relation_pred, args)),)
    )
    rules: List[Rule] = []
    if exact is not None:
        witness = Struct("w_card_neq", (r, Const(counted_position)) + group + (n,))
        rules.append(
            Rule(_ic_head(witness), (count_literal, Comparison("!=", n, Const(exact))))
        )
        description = "count of position %d per rest must equal %d" % (
            counted_position,
            exact,
        )
    elif max_count is not None:
        witness = Struct("w_card_gt", (r, Const(counted_position)) + group + (n,))
        rules.append(
            Rule(
                _ic_head(witness),
                (count_literal, Comparison(">", n, Const(max_count))),
            )
        )
        description = "count of position %d per rest must be <= %d" % (
            counted_position,
            max_count,
        )
    else:
        if group_class is None:
            raise SchemaError("min_count requires group_class")
        if arity != 2:
            raise SchemaError("min_count is only supported for binary relations")
        group_var = group[0]
        witness_low = Struct(
            "w_card_lt", (r, Const(counted_position), group_var, n)
        )
        rules.append(
            Rule(
                _ic_head(witness_low),
                (
                    Literal(Atom("instance", (group_var, Const(group_class)))),
                    count_literal,
                    Comparison("<", n, Const(min_count)),
                ),
            )
        )
        # Groups with zero tuples never form an aggregate group: report
        # them through an auxiliary "participates" predicate.
        aux = _aux_name("cardmin", relation_pred, counted_position)
        witness_zero = Struct(
            "w_card_lt", (r, Const(counted_position), group_var, Const(0))
        )
        rules.append(Rule(Atom(aux, (group_var,)), (Literal(Atom(relation_pred, args)),)))
        rules.append(
            Rule(
                _ic_head(witness_zero),
                (
                    Literal(Atom("instance", (group_var, Const(group_class)))),
                    Literal(Atom(aux, (group_var,)), positive=False),
                ),
            )
        )
        description = "count of position %d per %s must be >= %d" % (
            counted_position,
            group_class,
            min_count,
        )
    return Constraint(
        "cardinality(%s pos %d)" % (relation_pred, counted_position),
        rules,
        description,
    )


def scalar_method_constraint(class_name, method):
    """A ``=>`` (scalar) method may hold at most one value per object."""
    c, m = Const(class_name), Const(method)
    x, v, n = Var("X"), Var("V"), Var("N")
    count_literal = AggregateLiteral(
        "count",
        n,
        v,
        (x,),
        (Literal(Atom("method_val", (x, m, v))),),
    )
    rule = Rule(
        _ic_head(Struct("w_scalar", (c, m, x, n))),
        (
            Literal(Atom("instance", (x, c))),
            count_literal,
            Comparison(">", n, Const(1)),
        ),
    )
    return Constraint(
        "scalar(%s.%s)" % (class_name, method),
        [rule],
        "scalar method must be single-valued",
    )


def key_constraint(class_name, key_methods):
    """Distinct instances of `class_name` must differ on some key method."""
    if not key_methods:
        raise SchemaError("key constraint needs at least one method")
    c = Const(class_name)
    x, y = Var("X"), Var("Y")
    body = [
        Literal(Atom("instance", (x, c))),
        Literal(Atom("instance", (y, c))),
        Comparison("!=", x, y),
    ]
    for index, method in enumerate(key_methods):
        value = Var("K%d" % index)
        body.append(Literal(Atom("method_val", (x, Const(method), value))))
        body.append(Literal(Atom("method_val", (y, Const(method), value))))
    rule = Rule(
        _ic_head(Struct("w_key", (c, x, y))),
        tuple(body),
    )
    return Constraint(
        "key(%s: %s)" % (class_name, ", ".join(key_methods)),
        [rule],
        "key attributes must be unique per instance",
    )


def value_range_constraint(class_name, method, allowed=None, minimum=None, maximum=None):
    """A value constraint (Section 3's "cardinality constraints, value
    constraints, functional dependencies"): method values must lie in an
    enumerated set and/or a numeric interval."""
    if allowed is None and minimum is None and maximum is None:
        raise SchemaError("value constraint needs allowed/minimum/maximum")
    c, m = Const(class_name), Const(method)
    x, v = Var("X"), Var("V")
    base = (
        Literal(Atom("instance", (x, c))),
        Literal(Atom("method_val", (x, m, v))),
    )
    rules: List[Rule] = []
    if allowed is not None:
        allowed = sorted(allowed, key=repr)
        member_pred = _aux_name("allowed", class_name, method)
        for value in allowed:
            rules.append(Rule(Atom(member_pred, (Const(value),))))
        rules.append(
            Rule(
                _ic_head(Struct("w_value", (c, m, x, v))),
                base + (Literal(Atom(member_pred, (v,)), positive=False),),
            )
        )
    if minimum is not None:
        rules.append(
            Rule(
                _ic_head(Struct("w_value_low", (c, m, x, v))),
                base + (Comparison("<", v, Const(minimum)),),
            )
        )
    if maximum is not None:
        rules.append(
            Rule(
                _ic_head(Struct("w_value_high", (c, m, x, v))),
                base + (Comparison(">", v, Const(maximum)),),
            )
        )
    return Constraint(
        "value_range(%s.%s)" % (class_name, method),
        rules,
        "method values restricted to an enumeration / interval",
    )


def functional_dependency(class_name, determinants, dependent):
    """A functional dependency over a class: objects agreeing on all
    determinant methods must agree on the dependent method."""
    if not determinants:
        raise SchemaError("functional dependency needs determinants")
    c = Const(class_name)
    x, y = Var("X"), Var("Y")
    v1, v2 = Var("V1"), Var("V2")
    body = [
        Literal(Atom("instance", (x, c))),
        Literal(Atom("instance", (y, c))),
    ]
    for index, method in enumerate(determinants):
        shared = Var("D%d" % index)
        body.append(Literal(Atom("method_val", (x, Const(method), shared))))
        body.append(Literal(Atom("method_val", (y, Const(method), shared))))
    body.append(Literal(Atom("method_val", (x, Const(dependent), v1))))
    body.append(Literal(Atom("method_val", (y, Const(dependent), v2))))
    body.append(Comparison("!=", v1, v2))
    rule = Rule(
        _ic_head(Struct("w_fd", (c, Const(dependent), x, y))),
        tuple(body),
    )
    return Constraint(
        "fd(%s: %s -> %s)" % (class_name, ", ".join(determinants), dependent),
        [rule],
        "determinant methods functionally determine the dependent method",
    )


def referential_constraint(relation_pred, arity, position, class_name):
    """Fillers of a relation position must be instances of their class."""
    if not 0 <= position < arity:
        raise SchemaError("position out of range")
    args = tuple(Var("V%d" % i) for i in range(arity))
    rule = Rule(
        _ic_head(
            Struct(
                "w_ref",
                (Const(relation_pred), Const(position), args[position]),
            )
        ),
        (
            Literal(Atom(relation_pred, args)),
            Literal(
                Atom("instance", (args[position], Const(class_name))),
                positive=False,
            ),
        ),
    )
    return Constraint(
        "referential(%s pos %d : %s)" % (relation_pred, position, class_name),
        [rule],
        "relation position must be typed by its declared class",
    )


def existential_edge_constraint(source_class, role, target_class):
    """Section 4: the edge ``C -r-> D`` read as an integrity constraint.

    ``w_{C,r,D}(X) : ic :- X : C, not (Y : D, r(X,Y))`` — useful when
    the mediated object base must be *data-complete* w.r.t. the edge.
    """
    c, r, d = Const(source_class), Const(role), Const(target_class)
    x, y = Var("X"), Var("Y")
    aux = _aux_name("exwit", source_class, role, target_class)
    witness_rule = Rule(
        Atom(aux, (x,)),
        (
            Literal(Atom(role, (x, y))),
            Literal(Atom("instance", (y, d))),
        ),
    )
    denial = Rule(
        _ic_head(Struct("w_edge", (c, r, d, x))),
        (
            Literal(Atom("instance", (x, c))),
            Literal(Atom(aux, (x,)), positive=False),
        ),
    )
    return Constraint(
        "edge_complete(%s -%s-> %s)" % (source_class, role, target_class),
        [witness_rule, denial],
        "every C instance must have an r-successor in D",
    )


def universal_edge_constraint(source_class, role, target_class):
    """The (all) edge ``C -ALL:r-> D`` as an integrity constraint:
    every r-successor of a C instance must be in D."""
    c, r, d = Const(source_class), Const(role), Const(target_class)
    x, y = Var("X"), Var("Y")
    denial = Rule(
        _ic_head(Struct("w_all", (c, r, d, x, y))),
        (
            Literal(Atom("instance", (x, c))),
            Literal(Atom(role, (x, y))),
            Literal(Atom("instance", (y, d)), positive=False),
        ),
    )
    return Constraint(
        "edge_all(%s -ALL:%s-> %s)" % (source_class, role, target_class),
        [denial],
        "every r-successor of a C instance must be in D",
    )
