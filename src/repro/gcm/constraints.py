"""Integrity constraints as denials with `ic` failure witnesses.

The paper (Section 3, requirement IC): a logic integrity constraint
``phi`` is expressed as a denial; when a violation is derivable, a
*failure witness* object is inserted into the distinguished
inconsistency class ``ic``.  Witnesses are Skolem structs like
``wrc(class, subclass, x)`` that carry the violating context, so a
report can explain *what* failed and *why*.

:class:`Constraint` pairs a name/description with the denial rules;
:func:`check` evaluates a rule base and collects the witnesses;
:class:`ConstraintReport` presents them.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence

from ..errors import ConstraintViolation
from ..datalog.ast import Atom, Program, Rule
from ..datalog.engine import evaluate
from ..datalog.parser import parse_program
from ..datalog.terms import Const, Struct, term_sort_key
from ..flogic.axioms import core_axioms, signature_inheritance_axioms

#: the distinguished inconsistency class
IC_CLASS = "ic"


class Constraint:
    """A named integrity constraint backed by denial rules.

    The rules must derive ``instance(<witness>, ic)`` atoms, where the
    witness is typically a Skolem struct whose functor identifies the
    constraint kind and whose arguments identify the violation.
    """

    def __init__(self, name, rules, description=""):
        self.name = name
        self.description = description
        self._rules = list(rules)

    def rules(self):
        return list(self._rules)

    def __repr__(self):
        return "Constraint(%r)" % self.name


def constraint_from_text(name, datalog_text, description=""):
    """Build a constraint from Datalog source text."""
    return Constraint(name, parse_program(datalog_text), description)


class Witness:
    """One failure witness pulled out of the `ic` class."""

    __slots__ = ("term",)

    def __init__(self, term):
        self.term = term

    @property
    def kind(self):
        """The witness functor (e.g. ``wrc``, ``wtc``, ``was``)."""
        if isinstance(self.term, Struct):
            return self.term.functor
        if isinstance(self.term, Const):
            return str(self.term.value)
        return str(self.term)

    @property
    def context(self):
        """The witness arguments as plain Python values."""
        if isinstance(self.term, Struct):
            return tuple(
                arg.value if isinstance(arg, Const) else arg
                for arg in self.term.args
            )
        return ()

    def __eq__(self, other):
        return isinstance(other, Witness) and self.term == other.term

    def __hash__(self):
        return hash(("Witness", self.term))

    def __repr__(self):
        return "Witness(%s)" % self.term

    def __str__(self):
        return str(self.term)


class ConstraintReport:
    """The outcome of integrity checking: all `ic` witnesses found."""

    def __init__(self, witnesses):
        self.witnesses: List[Witness] = sorted(
            witnesses, key=lambda w: term_sort_key(w.term)
        )

    @property
    def ok(self):
        return not self.witnesses

    def by_kind(self):
        """Witnesses grouped by their functor."""
        grouped: Dict[str, List[Witness]] = {}
        for witness in self.witnesses:
            grouped.setdefault(witness.kind, []).append(witness)
        return grouped

    def kinds(self):
        return sorted(self.by_kind())

    def __len__(self):
        return len(self.witnesses)

    def __iter__(self):
        return iter(self.witnesses)

    def __str__(self):
        if self.ok:
            return "consistent (no ic witnesses)"
        lines = ["%d ic witness(es):" % len(self.witnesses)]
        for witness in self.witnesses:
            lines.append("  %s" % witness)
        return "\n".join(lines)


def witnesses_from_store(store):
    """Extract `ic` members from an evaluated fact store."""
    found = []
    for args in store.rows(("instance", 2)):
        if args[1] == Const(IC_CLASS):
            found.append(Witness(args[0]))
    return found


def check(rules, constraints=(), raise_on_violation=False, include_axioms=True):
    """Evaluate `rules` (+ constraint denials) and report `ic` witnesses.

    Checking runs in two phases, reflecting the *check* semantics of
    denials: first the rule base is evaluated to its model, then the
    constraint denials run over the materialized model as facts.  This
    keeps denials stratified even when they aggregate over relations
    that (positively) depend on `instance` — e.g. cardinality checks
    over reified relation tuples.

    Args:
        rules: an iterable of Datalog rules (e.g. ``cm.all_rules()``) or
            a :class:`Program`.
        constraints: extra :class:`Constraint` objects to include.
        raise_on_violation: raise :class:`ConstraintViolation` when any
            witness is derived.
        include_axioms: add the Table 1 axioms (needed when checking a
            bare CM's rules outside an engine).
    """
    if hasattr(rules, "all_rules"):  # a ConceptualModel
        cm = rules
        constraints = list(constraints) + list(cm.constraints)
        rules = cm.all_rules(include_constraints=False)
    base = Program()
    base.extend(rules)
    if include_axioms:
        base.extend(core_axioms())
        base.extend(signature_inheritance_axioms())
    model = evaluate(base)

    checking = Program()
    for atom in model.store.iter_atoms():
        checking.add(Rule(atom))
    for constraint in constraints:
        checking.extend(constraint.rules())
    result = evaluate(checking)
    report = ConstraintReport(witnesses_from_store(result.store))
    if raise_on_violation and not report.ok:
        raise ConstraintViolation(
            "integrity violation: %d ic witness(es)" % len(report),
            witnesses=report.witnesses,
        )
    return report
