"""repro — Model-Based Mediation with Domain Maps (ICDE 2001).

A from-scratch reproduction of the KIND model-based mediator of
Ludäscher, Gupta & Martone: sources export *conceptual models* rather
than raw XML trees, a *domain map* (a semantic net with description-
logic semantics) interrelates "multiple worlds", and integrated views
are F-logic programs executed over a Datalog engine with well-founded
negation.

Package layout (bottom-up):

* :mod:`repro.obs` — medtrace: span tracing + metrics (leaf package;
  the no-op default keeps it free when disabled).
* :mod:`repro.datalog` — Datalog with well-founded negation + aggregates.
* :mod:`repro.flogic` — F-logic front end (Table 1 fragment) compiling
  to Datalog.
* :mod:`repro.gcm` — generic conceptual model: schemas, rules, integrity
  constraints with `ic` failure witnesses.
* :mod:`repro.domainmap` — domain maps: DL edges, graph operations,
  registration, restricted reasoning.
* :mod:`repro.xmlio` — XML wire format and the CM plug-in mechanism.
* :mod:`repro.sources` — relational substrate, wrappers, query
  capabilities.
* :mod:`repro.core` — the mediator: registration, integrated views,
  query planning and execution.
* :mod:`repro.neuro` — the KIND Neuroscience scenario (ANATOM domain
  map, SYNAPSE / NCMIR / SENSELAB sources).
* :mod:`repro.parallel` — medpar: bounded, deterministic source
  fan-out for plan execution.

The names most deployments need — the mediator, the correlation query,
and the opt-in layer configurations — are re-exported here::

    from repro import Mediator, CorrelationQuery
    from repro import AnswerCache, ParallelExecutor, ResiliencePolicy
"""

__version__ = "1.1.0"

from .cache.answers import AnswerCache
from .core.mediator import Mediator
from .core.planner import CorrelationQuery
from .parallel.executor import ParallelExecutor
from .resilience.policy import ResiliencePolicy

__all__ = [
    "AnswerCache",
    "CorrelationQuery",
    "Mediator",
    "ParallelExecutor",
    "ResiliencePolicy",
    "__version__",
]
