"""medlint pass 3: capability feasibility and view liveness.

The planner pushes selections to sources at query time and fails deep
inside plan construction when no binding pattern covers them; these
checks surface the same defects at lint time, before any query runs:

* **unanswerable classes** — a capability that is not scannable and
  declares no binding pattern and no template can never be queried at
  all: neither browsing nor any pushed selection is possible;
* **malformed binding patterns** — flag strings whose length does not
  match the attribute list (each position must name an attribute);
* **dangling templates / view dependencies** — advertised templates
  with no registered implementation, and declared view dependencies
  that match no view, class, or concept;
* **dead views** — an integrated view whose body requires membership
  in a class that no registered source exports, no rule derives, and
  the domain map does not know: the view can never produce an answer;
* **distribution views** over a source class nobody exports, or whose
  group/value attributes the exporting capability does not carry.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.ast import Literal, Rule
from ..datalog.terms import Const
from ..errors import FLogicError, ParseError, Span
from .catalog import diagnostic


def analyze_capabilities(capabilities_by_source):
    """Diagnostics over ``{source: {class: ClassCapability}}``."""
    out = []
    for source in sorted(capabilities_by_source):
        for class_name in sorted(capabilities_by_source[source]):
            capability = capabilities_by_source[source][class_name]
            origin = "source %s" % source
            if (
                not capability.scannable
                and not capability.binding_patterns
                and not capability.templates
            ):
                out.append(
                    diagnostic(
                        "MBM031",
                        "class %r of source %s is not scannable and "
                        "declares no binding patterns and no templates; "
                        "no query can ever be answered from it"
                        % (class_name, source),
                        span=Span(origin, detail=class_name),
                    )
                )
            for pattern in capability.binding_patterns:
                foreign = [
                    attribute
                    for attribute in pattern.attributes
                    if attribute not in capability.attributes
                ]
                if foreign:
                    out.append(
                        diagnostic(
                            "MBM041",
                            "binding pattern %r of %s.%s is declared over "
                            "attributes %s that the class does not carry "
                            "(class attributes: %r)"
                            % (
                                pattern.pattern,
                                source,
                                class_name,
                                foreign,
                                list(capability.attributes),
                            ),
                            span=Span(origin, detail=class_name),
                        )
                    )
    return out


def template_diagnostics(source, capabilities, template_bodies):
    """MBM032 for templates a capability advertises but the wrapper
    never implemented (``add_template`` registers both; a capability
    record mutated directly can advertise a body-less template)."""
    out = []
    for class_name in sorted(capabilities):
        for template_name in sorted(capabilities[class_name].templates):
            if (class_name, template_name) not in template_bodies:
                out.append(
                    diagnostic(
                        "MBM032",
                        "template %r of %s.%s is advertised in the "
                        "capability record but has no implementation "
                        "registered at the wrapper"
                        % (template_name, source, class_name),
                        span=Span("source %s" % source, detail=template_name),
                    )
                )
    return out


def supplied_classes(mediator):
    """Every class name some part of the deployment can make instances
    of: wrapper-exported classes, CM-declared classes (and their
    superclasses, reachable through the subclass axiom), domain-map
    concepts, and classes derived by view/CM rules."""
    supplied: Set[str] = set(mediator.dm.concepts)
    for source in mediator.source_names():
        record_caps = mediator.capabilities(source)
        supplied.update(record_caps)
        cm = mediator._sources[source].registration.cm
        for class_def in cm.classes.values():
            supplied.add(class_def.name)
            supplied.update(class_def.superclasses)
    for rule in mediator.assembled_rules(include_data=False):
        supplied.update(_constant_instance_classes([rule.head]))
    return supplied


def _constant_instance_classes(atoms):
    for atom in atoms:
        if atom.pred == "instance" and len(atom.args) == 2:
            class_term = atom.args[1]
            if isinstance(class_term, Const) and isinstance(class_term.value, str):
                yield class_term.value


def _view_rules(view):
    """Translate an IntegratedView's F-logic text to Datalog rules."""
    # translate_rules already appends the auxiliary rules it synthesizes
    return view.datalog_rules()


def analyze_views(mediator):
    """Dead-view and distribution-view feasibility diagnostics."""
    from ..core.views import DistributionView, IntegratedView

    supplied = supplied_classes(mediator)
    out = []
    for name in mediator.view_names():
        view = mediator.view(name)
        origin = "view %s" % name
        if isinstance(view, IntegratedView):
            out.extend(_integrated_view_diagnostics(view, supplied, origin))
            out.extend(_anchorless_view_diagnostics(mediator, view, origin))
        elif isinstance(view, DistributionView):
            out.extend(
                _distribution_view_diagnostics(mediator, view, supplied, origin)
            )
        for dependency in getattr(view, "depends_on", ()):
            if dependency not in supplied and dependency not in mediator.view_names():
                out.append(
                    diagnostic(
                        "MBM032",
                        "view %r declares a dependency on %r, which is "
                        "neither a view, an exported class, nor a "
                        "domain-map concept" % (name, dependency),
                        span=Span(origin, detail=dependency),
                    )
                )
    return out


def _anchorless_view_diagnostics(mediator, view, origin):
    """MBM034: the view's classes are anchored at no domain-map
    concept, so medcache cannot scope a materialization's dependencies
    — any deployment change would have to drop it (full flush)."""
    from ..cache.views import view_anchor_concepts

    try:
        concepts = view_anchor_concepts(mediator, view)
    except (FLogicError, ParseError):
        return []  # unparseable views are reported by MBM030 already
    if concepts:
        return []
    return [
        diagnostic(
            "MBM034",
            "view %r has no invalidation anchor: none of its classes "
            "are anchored in the domain map, so a materialization "
            "(Mediator.materialize) could only be invalidated by a "
            "full cache flush" % view.name,
            span=Span(origin),
        )
    ]


def _integrated_view_diagnostics(view, supplied, origin):
    try:
        rules = _view_rules(view)
    except (FLogicError, ParseError) as exc:
        exc.span = Span(origin)
        return [exc.to_diagnostic()]
    out = []
    heads = set(_constant_instance_classes([rule.head for rule in rules]))
    for rule in rules:
        body_atoms = [
            item.atom
            for item in rule.body
            if isinstance(item, Literal) and item.positive
        ]
        for class_name in _constant_instance_classes(body_atoms):
            if class_name in supplied or class_name in heads:
                continue
            out.append(
                diagnostic(
                    "MBM030",
                    "view %r requires instances of %r, but no registered "
                    "source exports that class, no rule derives it, and "
                    "the domain map does not declare it — the view can "
                    "never have answers" % (view.name, class_name),
                    span=Span(origin, detail=str(rule)),
                )
            )
    return out


def _distribution_view_diagnostics(mediator, view, supplied, origin):
    out = []
    exporters = [
        source
        for source in mediator.source_names()
        if view.source_class in mediator.capabilities(source)
    ]
    if not exporters:
        if view.source_class not in supplied:
            out.append(
                diagnostic(
                    "MBM033",
                    "distribution view %r aggregates over class %r, "
                    "which no registered source exports"
                    % (view.name, view.source_class),
                    span=Span(origin, detail=view.source_class),
                )
            )
    else:
        for source in exporters:
            capability = mediator.capabilities(source)[view.source_class]
            for attr_kind, attr in (
                ("group", view.group_attr),
                ("value", view.value_attr),
            ):
                if attr not in capability.attributes:
                    out.append(
                        diagnostic(
                            "MBM033",
                            "distribution view %r uses %s attribute %r, "
                            "which %s.%s does not carry"
                            % (view.name, attr_kind, attr, source, view.source_class),
                            span=Span(origin, detail=attr),
                        )
                    )
    if view.role not in mediator.dm.roles:
        out.append(
            diagnostic(
                "MBM025",
                "distribution view %r traverses role %r, which the "
                "domain map does not declare" % (view.name, view.role),
                span=Span(origin, detail=view.role),
            )
        )
    return out
