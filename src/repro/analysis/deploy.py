"""medlint entry points: whole-deployment analysis and dispatch.

:func:`analyze` is the public API.  It accepts a
:class:`~repro.core.mediator.Mediator` (the interesting case: all three
passes run over the deployment), or a standalone
:class:`~repro.domainmap.model.DomainMap`, wrapper, rule text,
:class:`~repro.datalog.ast.Program`, or iterable of rules, and returns
a :class:`~repro.analysis.report.Report`.

Nothing in this module evaluates a program: the rule pass works on the
engine's *assembled* program (:meth:`FLogicEngine.program`), never on
its fixpoint.
"""

from __future__ import annotations

import contextlib
import io
import runpy
from typing import Dict, Iterable, List, Optional, Set, Tuple

from ..datalog.ast import Program, Rule
from ..errors import Span
from .caps import analyze_capabilities, analyze_views, template_diagnostics
from .catalog import diagnostic
from .dm import analyze_domain_map
from .report import Report
from .rules import analyze_program

#: result sorts the wrappers' schema lifting produces; always legal as a
#: method result class even though no CM declares them as classes.
BUILTIN_SORTS = frozenset(
    {"string", "integer", "float", "boolean", "number", "any", "object"}
)


def analyze(target, **kwargs):
    """Statically analyze `target`; returns a :class:`Report`.

    Dispatches on the target's type:

    * ``Mediator`` — full three-pass deployment lint (rule program,
      domain map, capability/view feasibility);
    * ``DomainMap`` — the domain-map pass only;
    * ``Wrapper`` — the exported CM(S), capabilities, and rules;
    * rule text / ``Program`` / iterable of ``Rule`` — the rule pass
      only (keyword arguments are passed to
      :func:`~repro.analysis.rules.analyze_program`).
    """
    from ..core.mediator import Mediator
    from ..domainmap.model import DomainMap
    from ..sources.wrapper import Wrapper

    if isinstance(target, Mediator):
        return analyze_mediator(target, **kwargs)
    if isinstance(getattr(target, "mediator", None), Mediator):
        # scenario-style holders (e.g. neuro.KindScenario)
        return analyze_mediator(target.mediator, **kwargs)
    if isinstance(target, DomainMap):
        return Report(
            analyze_domain_map(target, **kwargs),
            subject="domain map %s" % target.name,
        )
    if isinstance(target, Wrapper):
        return analyze_wrapper(target, **kwargs)
    if isinstance(target, (str, Program)) or _is_rule_iterable(target):
        origin = kwargs.pop("origin", "program")
        return Report(
            analyze_program(target, origin=origin, **kwargs),
            subject=origin,
        )
    raise TypeError(
        "cannot analyze %r: expected a Mediator, DomainMap, Wrapper, "
        "rule text, Program, or iterable of rules" % (target,)
    )


def _is_rule_iterable(target):
    try:
        items = list(target)
    except TypeError:
        return False
    return all(isinstance(item, Rule) for item in items)


def analyze_mediator(mediator):
    """All three medlint passes over a mediator's deployment."""
    subject = "mediator %s" % mediator.name
    report = Report(subject=subject)

    # -- pass 1: the assembled rule program (axioms included) -----------
    from ..flogic.engine import FLogicEngine

    engine = FLogicEngine()
    engine.tell_rules(mediator.assembled_rules(include_data=False))
    data_predicates = {
        rule.head.pred
        for rule in mediator.assembled_rules(include_data=True)
        if rule.is_fact
    }
    report.extend(
        analyze_program(
            engine.program(),
            origin=subject,
            known_predicates=data_predicates,
            entry_points=mediator.view_names(),
        )
    )

    # -- pass 2: the domain map -----------------------------------------
    anchors = registered_anchors(mediator)
    report.extend(
        analyze_domain_map(
            mediator.dm,
            anchors=anchors,
            edge_assertions=mediator.edge_assertions,
        )
    )

    # -- pass 3: capabilities and views ---------------------------------
    capabilities = {
        source: mediator.capabilities(source)
        for source in mediator.source_names()
    }
    report.extend(analyze_capabilities(capabilities))
    report.extend(analyze_views(mediator))
    for source in mediator.source_names():
        record = mediator._sources[source]
        report.extend(
            schema_sort_diagnostics(
                record.registration.cm, dm=mediator.dm, origin="source %s" % source
            )
        )
        if record.wrapper is not None:
            report.extend(
                template_diagnostics(
                    source,
                    capabilities[source],
                    getattr(record.wrapper, "_template_bodies", {}),
                )
            )
    return report


def registered_anchors(mediator):
    """(source, class_name, concept) anchor triples of a deployment."""
    anchors: List[Tuple[str, str, str]] = []
    for source in mediator.source_names():
        registration = mediator._sources[source].registration
        for class_name, concept, _context in registration.anchors:
            if concept is not None:
                anchors.append((source, class_name, concept))
    return anchors


def analyze_wrapper(wrapper):
    """Lint a standalone wrapper: its CM(S), capabilities, and rules."""
    subject = "source %s" % wrapper.name
    report = Report(subject=subject)
    cm = wrapper.schema_cm()
    capabilities = wrapper.capabilities()
    report.extend(schema_sort_diagnostics(cm, origin=subject))
    report.extend(analyze_capabilities({wrapper.name: capabilities}))
    report.extend(
        template_diagnostics(
            wrapper.name, capabilities, getattr(wrapper, "_template_bodies", {})
        )
    )
    report.extend(
        analyze_program(
            cm.all_rules(include_constraints=False),
            origin=subject,
            known_predicates={"instance", "method_val"},
        )
    )
    return report


def schema_sort_diagnostics(cm, dm=None, origin=None):
    """MBM010: method result sorts that nothing declares.

    A result class must be a built-in sort, a class of the CM itself,
    or (when a domain map is given) a concept of the map; anything else
    is a typo the engine would silently treat as an empty class.
    """
    origin = origin or "cm %s" % cm.name
    known: Set[str] = set(BUILTIN_SORTS)
    known.update(cm.classes)
    if dm is not None:
        known.update(dm.concepts)
    out = []
    for class_name in sorted(cm.classes):
        class_def = cm.classes[class_name]
        for method_name in sorted(class_def.methods):
            method = class_def.methods[method_name]
            if method.result_class not in known:
                out.append(
                    diagnostic(
                        "MBM010",
                        "method %s.%s declares result sort %r, which is "
                        "neither a built-in sort, a class of %s, nor a "
                        "domain-map concept"
                        % (class_name, method_name, method.result_class, cm.name),
                        span=Span(origin, detail="%s.%s" % (class_name, method_name)),
                    )
                )
    return out


# -- strict-mode hooks (Mediator(strict=True)) --------------------------


def registration_diagnostics(mediator, registration):
    """Lint a parsed registration *before* the mediator applies it.

    The DM refinement is applied to a copy of the mediator's domain
    map, so a rejected registration leaves no trace.  Used by
    ``Mediator(strict=True).register``.
    """
    import copy

    from ..domainmap.registry import register_concepts
    from ..errors import ReproError

    origin = "source %s" % registration.source
    out: List = []
    dm_copy = copy.deepcopy(mediator.dm)
    if registration.refinement:
        try:
            register_concepts(
                dm_copy, registration.refinement, allow_new_roles=True
            )
        except ReproError as exc:
            if exc.span is None:
                exc.span = Span(origin, detail="dm refinement")
            out.append(exc.to_diagnostic())
            return out
    out.extend(
        analyze_capabilities({registration.source: registration.capabilities})
    )
    for class_name, concept, _context in registration.anchors:
        if concept is not None and concept not in dm_copy.concepts:
            out.append(
                diagnostic(
                    "MBM024",
                    "anchor of %s.%s references concept %r which is "
                    "missing from the domain map (even after the "
                    "registration's refinement)"
                    % (registration.source, class_name, concept),
                    span=Span(origin, detail=class_name),
                )
            )
    out.extend(
        schema_sort_diagnostics(registration.cm, dm=dm_copy, origin=origin)
    )
    from .rules import safety_diagnostics

    out.extend(
        safety_diagnostics(
            registration.cm.all_rules(include_constraints=False), origin
        )
    )
    return out


def view_diagnostics(mediator, view):
    """Lint a view definition *before* the mediator accepts it.

    Used by ``Mediator(strict=True).add_view``; the same checks run
    deployment-wide in :func:`~repro.analysis.caps.analyze_views`.
    """
    from ..core.views import DistributionView, IntegratedView
    from ..errors import FLogicError, ParseError
    from .caps import (
        _distribution_view_diagnostics,
        _integrated_view_diagnostics,
        _view_rules,
        supplied_classes,
    )
    from .rules import safety_diagnostics

    origin = "view %s" % view.name
    supplied = supplied_classes(mediator)
    out: List = []
    if isinstance(view, IntegratedView):
        try:
            rules = _view_rules(view)
        except (FLogicError, ParseError) as exc:
            exc.span = Span(origin)
            return [exc.to_diagnostic()]
        out.extend(safety_diagnostics(rules, origin))
        out.extend(_integrated_view_diagnostics(view, supplied, origin))
    elif isinstance(view, DistributionView):
        out.extend(
            _distribution_view_diagnostics(mediator, view, supplied, origin)
        )
    return out


# -- linting deployment scripts -----------------------------------------


@contextlib.contextmanager
def capture_mediators():
    """Record every Mediator constructed inside the ``with`` block.

    Used by ``repro lint <file.py>`` to lint deployments that example
    scripts build in their ``main()``.
    """
    with capture_deployments() as (mediators, _domain_maps):
        yield mediators


@contextlib.contextmanager
def capture_deployments():
    """Record every Mediator and DomainMap constructed in the block.

    Yields ``(mediators, domain_maps)``; domain maps owned by a
    captured mediator appear in both lists (lint the mediators, then
    the maps no mediator owns).
    """
    from ..core.mediator import Mediator
    from ..domainmap.model import DomainMap

    mediators: List = []
    domain_maps: List = []
    original_mediator_init = Mediator.__init__
    original_dm_init = DomainMap.__init__

    def mediator_init(self, *args, **kwargs):
        original_mediator_init(self, *args, **kwargs)
        mediators.append(self)

    def dm_init(self, *args, **kwargs):
        original_dm_init(self, *args, **kwargs)
        domain_maps.append(self)

    Mediator.__init__ = mediator_init
    DomainMap.__init__ = dm_init
    try:
        yield mediators, domain_maps
    finally:
        Mediator.__init__ = original_mediator_init
        DomainMap.__init__ = original_dm_init


def lint_path(path, quiet=True):
    """Run a Python deployment script and lint every mediator it builds.

    The script is executed as ``__main__`` (so ``if __name__ ==
    "__main__"`` blocks run and actually construct the deployment) with
    stdout suppressed unless ``quiet=False``.  Returns a
    :class:`Report` whose subject is the path.
    """
    report = Report(subject=str(path))
    with capture_deployments() as (mediators, domain_maps), contextlib.ExitStack() as stack:
        if quiet:
            stack.enter_context(contextlib.redirect_stdout(io.StringIO()))
        try:
            runpy.run_path(str(path), run_name="__main__")
        except Exception as exc:  # scripts can fail arbitrarily
            report.add(
                diagnostic(
                    "MBM000",
                    "script %s could not be linted: %s: %s"
                    % (path, type(exc).__name__, exc),
                    span=Span(str(path)),
                )
            )
            return report
    owned = {id(mediator.dm) for mediator in mediators}
    standalone = [dm for dm in domain_maps if id(dm) not in owned]
    if not mediators and not standalone:
        report.add(
            diagnostic(
                "MBM000",
                "script %s constructed no Mediator and no DomainMap; "
                "nothing to lint" % path,
                span=Span(str(path)),
                severity="warning",
            )
        )
        return report
    for mediator in mediators:
        report.extend(analyze_mediator(mediator))
    for dm in standalone:
        report.extend(analyze_domain_map(dm))
    return report
