"""medlint pass 1: static analysis of Datalog rule programs.

Everything here works on :class:`~repro.datalog.ast.Rule` objects
without evaluating them:

* **safety** — range restriction, negation and aggregate safety, with
  precise variable blame (reusing
  :func:`repro.datalog.safety.safety_violations`, so lint findings and
  the engine's runtime errors can never disagree);
* **stratification** — negation through recursion is a warning (the
  engine falls back to the well-founded semantics), aggregation through
  recursion an error (reusing
  :func:`repro.datalog.stratify.analyze_stratification`);
* **references** — undefined predicates (used but never derivable),
  unused predicates (derived but never read and not an entry point),
  and predicates used with several arities (a likely typo: signatures
  are (name, arity) pairs, so ``p/2`` and ``p/3`` never join).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..datalog.ast import AggregateLiteral, Literal, Program, Rule
from ..datalog.parser import parse_program
from ..datalog.safety import safety_violations
from ..datalog.stratify import (
    aggregate_recursion_message,
    analyze_stratification,
    negation_recursion_message,
)
from ..errors import Span
from .catalog import diagnostic

#: predicates populated by source lifting, registration, or the engine's
#: axioms — legitimately referenced even when no rule in the analyzed
#: program derives them, and legitimately derived without a reader.
INTERFACE_PREDICATES = frozenset(
    {
        "instance",
        "method_inst",
        "method_val",
        "method",
        "default_val",
        "class",
        "subclass",
        "concept",
        "isa",
        "role_edge",
        "all_edge",
        "role_fact",
        "role_asserted",
        "role_inst",
        "relation_sig",
        "anchor",
        "dist_row",
        "tc",
        "dc",
        "has_a_star",
        "inherits",
        "shadowed",
        "ic",
    }
)


def safety_diagnostics(rules, origin="program"):
    """MBM001–MBM004: every safety violation of every rule."""
    out = []
    for rule in rules:
        for violation in safety_violations(rule):
            out.append(
                diagnostic(
                    violation.code,
                    str(violation),
                    span=Span(origin, detail=str(rule)),
                )
            )
    return out


def stratification_diagnostics(program, origin="program"):
    """MBM005 (warning) and MBM006 (error) for recursive special edges."""
    report = analyze_stratification(program)
    out = []
    for head_sig, dep_sig in report.negative_recursive:
        out.append(
            diagnostic(
                "MBM005",
                negation_recursion_message(head_sig, dep_sig),
                span=Span(origin),
            )
        )
    for head_sig, dep_sig in report.aggregate_recursive:
        out.append(
            diagnostic(
                "MBM006",
                aggregate_recursion_message(head_sig, dep_sig),
                span=Span(origin),
            )
        )
    return out


def _body_literals(rule):
    """Every relational literal a rule reads, aggregate bodies included."""
    for item in rule.body:
        if isinstance(item, Literal):
            yield item
        elif isinstance(item, AggregateLiteral):
            for inner in item.body:
                if isinstance(inner, Literal):
                    yield inner


def reference_diagnostics(
    program,
    origin="program",
    known_predicates=(),
    entry_points=(),
):
    """MBM007/MBM008/MBM009: the predicate cross-reference checks.

    Args:
        known_predicates: predicate *names* defined outside the analyzed
            rules (runtime-lifted data, engine axioms); suppresses both
            undefined and unused findings for them.
        entry_points: predicate names queried from outside (exported
            views, interface relations); suppresses unused findings.
    """
    known = set(known_predicates) | set(INTERFACE_PREDICATES)
    exported = set(entry_points) | known

    defined: Set[Tuple[str, int]] = set()
    used: Dict[Tuple[str, int], Rule] = {}
    for rule in program:
        defined.add(rule.head.signature)
        for literal in _body_literals(rule):
            used.setdefault(literal.atom.signature, rule)

    out = []
    for sig in sorted(used):
        pred, arity = sig
        if sig in defined or pred in known or pred.startswith("_"):
            continue
        out.append(
            diagnostic(
                "MBM007",
                "predicate %s/%d is used but never defined by any rule, "
                "fact, or registered source" % (pred, arity),
                span=Span(origin, detail=str(used[sig])),
            )
        )

    idb = {rule.head.signature for rule in program if not rule.is_fact}
    read = set(used)
    for pred, arity in sorted(idb - read):
        if pred in exported or pred.startswith("_"):
            continue
        out.append(
            diagnostic(
                "MBM008",
                "predicate %s/%d is defined but never used by any rule "
                "body or exported view" % (pred, arity),
                span=Span(origin),
            )
        )

    arities: Dict[str, Set[int]] = {}
    for pred, arity in defined | read:
        arities.setdefault(pred, set()).add(arity)
    for pred in sorted(arities):
        if len(arities[pred]) > 1 and not pred.startswith("_"):
            out.append(
                diagnostic(
                    "MBM009",
                    "predicate %r is used with several arities (%s); "
                    "signatures with different arities never join"
                    % (pred, ", ".join(str(a) for a in sorted(arities[pred]))),
                    span=Span(origin),
                )
            )
    return out


def analyze_program(
    rules,
    origin="program",
    known_predicates=(),
    entry_points=(),
):
    """All rule-program diagnostics for `rules` (text, Program, or
    iterable of Rules); returns a plain diagnostic list."""
    if isinstance(rules, str):
        rules = parse_program(rules)
    program = rules if isinstance(rules, Program) else Program(rules)
    out = safety_diagnostics(program, origin)
    out.extend(stratification_diagnostics(program, origin))
    out.extend(
        reference_diagnostics(
            program,
            origin,
            known_predicates=known_predicates,
            entry_points=entry_points,
        )
    )
    return out
