"""medlint: whole-deployment static analysis (``repro lint``).

Three passes over a model-based mediation deployment, none of which
evaluates anything:

1. rule programs — safety/range restriction, stratification,
   predicate cross-reference (:mod:`repro.analysis.rules`);
2. domain maps — dangling vocabulary, isa cycles, circular eqv
   definitions, isolated concepts, anchors (:mod:`repro.analysis.dm`);
3. capabilities and views — unanswerable classes, dead views,
   distribution-view feasibility (:mod:`repro.analysis.caps`).

Diagnostics carry stable ``MBM0xx`` codes (:mod:`repro.analysis.
catalog`); :func:`analyze` dispatches on what you hand it.
"""

from .caps import (
    analyze_capabilities,
    analyze_views,
    supplied_classes,
    template_diagnostics,
)
from .catalog import CATALOG, diagnostic, severity_for, title_for
from .deploy import (
    analyze,
    analyze_mediator,
    analyze_wrapper,
    capture_deployments,
    capture_mediators,
    lint_path,
    registered_anchors,
    registration_diagnostics,
    schema_sort_diagnostics,
    view_diagnostics,
)
from .dm import analyze_domain_map
from .report import Report
from .rules import (
    INTERFACE_PREDICATES,
    analyze_program,
    reference_diagnostics,
    safety_diagnostics,
    stratification_diagnostics,
)

__all__ = [
    "CATALOG",
    "INTERFACE_PREDICATES",
    "Report",
    "analyze",
    "analyze_capabilities",
    "analyze_domain_map",
    "analyze_mediator",
    "analyze_program",
    "analyze_views",
    "analyze_wrapper",
    "capture_deployments",
    "capture_mediators",
    "diagnostic",
    "lint_path",
    "reference_diagnostics",
    "registered_anchors",
    "registration_diagnostics",
    "safety_diagnostics",
    "view_diagnostics",
    "schema_sort_diagnostics",
    "severity_for",
    "stratification_diagnostics",
    "supplied_classes",
    "template_diagnostics",
    "title_for",
]
