"""The medlint diagnostic catalog: every ``MBM0xx`` code in one place.

Codes are stable API: tools and CI configurations may filter on them,
so a code is never renumbered or reused.  The catalog maps each code to
its default severity and a one-line title; :func:`diagnostic` is the
analyzer-side constructor that fills the severity in from here so the
passes only name the code.

Code blocks:

* ``MBM00x``  rule-program safety and stratification,
* ``MBM01x``  schema/sort consistency across GCM + translated rules,
* ``MBM02x``  domain-map structure,
* ``MBM03x``  views and capability feasibility,
* ``MBM04x``  capability/planning/registration runtime families,
* ``MBM09x``  parse/evaluation runtime families.
"""

from __future__ import annotations

from ..errors import (
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)

#: code -> (default severity, title)
CATALOG = {
    "MBM000": (SEVERITY_ERROR, "unclassified library error"),
    # -- rule programs ---------------------------------------------------
    "MBM001": (SEVERITY_ERROR, "head variables not range-restricted"),
    "MBM002": (SEVERITY_ERROR, "variables occur only under negation"),
    "MBM003": (SEVERITY_ERROR, "comparison/arithmetic over unbound variables"),
    "MBM004": (SEVERITY_ERROR, "unsafe aggregate subgoal"),
    "MBM005": (SEVERITY_WARNING, "negation through recursion (well-founded fallback)"),
    "MBM006": (SEVERITY_ERROR, "aggregation through recursion"),
    "MBM007": (SEVERITY_WARNING, "undefined predicate"),
    "MBM008": (SEVERITY_INFO, "unused predicate"),
    "MBM009": (SEVERITY_WARNING, "predicate used with multiple arities"),
    # -- schemas / sorts -------------------------------------------------
    "MBM010": (SEVERITY_WARNING, "method result sort is not declared"),
    "MBM011": (SEVERITY_ERROR, "malformed CM schema declaration"),
    # -- domain maps -----------------------------------------------------
    "MBM020": (SEVERITY_ERROR, "reference to an undeclared concept"),
    "MBM021": (SEVERITY_ERROR, "isa cycle in the domain map"),
    "MBM022": (SEVERITY_INFO, "isolated concept (participates in no axiom)"),
    "MBM023": (SEVERITY_ERROR, "circular concept definition through eqv/and edges"),
    "MBM024": (SEVERITY_ERROR, "anchor references a missing concept"),
    "MBM025": (SEVERITY_ERROR, "reference to an undeclared role"),
    # -- views / capabilities -------------------------------------------
    "MBM030": (SEVERITY_ERROR, "dead view: references a class no source exports and no rule defines"),
    "MBM031": (SEVERITY_ERROR, "unanswerable class capability (not scannable, no binding patterns)"),
    "MBM032": (SEVERITY_WARNING, "dangling declared dependency or template parameter"),
    "MBM033": (SEVERITY_ERROR, "distribution view over a missing class or attribute"),
    "MBM034": (SEVERITY_WARNING, "view has no invalidation anchor: a materialization can only be invalidated by full flush"),
    # -- runtime families ------------------------------------------------
    "MBM040": (SEVERITY_ERROR, "capability violation"),
    "MBM041": (SEVERITY_ERROR, "invalid binding pattern declaration"),
    "MBM042": (SEVERITY_ERROR, "planning failure"),
    "MBM043": (SEVERITY_ERROR, "registration rejected"),
    "MBM045": (SEVERITY_ERROR, "source call timed out"),
    "MBM046": (SEVERITY_ERROR, "circuit breaker open (source shed)"),
    "MBM090": (SEVERITY_ERROR, "parse error"),
    "MBM091": (SEVERITY_ERROR, "evaluation error"),
}


def severity_for(code):
    """Default severity of a code (errors for unknown codes)."""
    return CATALOG.get(code, (SEVERITY_ERROR, ""))[0]


def title_for(code):
    """One-line title of a code ("" for unknown codes)."""
    return CATALOG.get(code, (SEVERITY_ERROR, ""))[1]


def diagnostic(code, message, span=None, severity=None):
    """Build a :class:`Diagnostic` with the catalog's default severity."""
    return Diagnostic(
        code,
        message,
        severity=severity if severity is not None else severity_for(code),
        span=span,
    )
