"""medlint pass 2: static analysis of domain maps.

Checks the semantic-net structure of a :class:`~repro.domainmap.model.
DomainMap` without compiling or evaluating it:

* **dangling references** — edge endpoints, roles, and concept
  constants in attached logic rules that name undeclared vocabulary;
* **isa cycles** — a cycle of isa edges collapses the concepts it
  passes through into one, which is nearly always an authoring error
  (an intentional equivalence should use ``eqv``);
* **circular definitions** — ``eqv`` definitions whose right-hand
  sides lead back to the defined concept (directly or through AND/OR
  decompositions), which the restricted reasoner cannot unfold;
* **isolated concepts** — declared but participating in no axiom and
  no anchor: unreachable from every query;
* **anchor points** — source anchors referencing concepts missing from
  the map, and edge-assertion selections naming edges the map does not
  have.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..datalog.ast import Literal
from ..datalog.parser import parse_program
from ..domainmap.dl import Eqv, Named
from ..domainmap.model import EQV, ISA, _is_synthetic
from ..errors import ParseError, Span
from .catalog import diagnostic

#: rule predicates whose constant arguments name DM vocabulary:
#: predicate -> (role argument positions, concept argument positions)
_VOCABULARY_PREDICATES = {
    "concept": ((), (0,)),
    "isa": ((), (0, 1)),
    "role_edge": ((0,), (1, 2)),
    "all_edge": ((0,), (1, 2)),
}


def analyze_domain_map(dm, anchors=(), edge_assertions=None, origin=None):
    """All domain-map diagnostics; returns a plain diagnostic list.

    Args:
        dm: the :class:`DomainMap` to inspect.
        anchors: (source, class_name, concept) triples to validate
            against the map (a mediator's registered anchor points).
        edge_assertions: the mediator's ``edge_assertions`` selection
            (``None``, ``"all"``, or (C, role, D) triples).
        origin: span unit label; defaults to ``domain map <name>``.
    """
    origin = origin or "domain map %s" % dm.name
    out: List = []
    edges = dm.edges()

    # -- dangling vocabulary in the drawn edges -------------------------
    for edge in edges:
        for node in (edge.src, edge.dst):
            if not _is_synthetic(node) and node not in dm.concepts:
                out.append(
                    diagnostic(
                        "MBM020",
                        "edge %s references concept %r which is not "
                        "declared in the domain map" % (edge, node),
                        span=Span(origin, detail=str(edge)),
                    )
                )
        if edge.role is not None and edge.role not in dm.roles:
            out.append(
                diagnostic(
                    "MBM025",
                    "edge %s references role %r which is not declared "
                    "in the domain map" % (edge, edge.role),
                    span=Span(origin, detail=str(edge)),
                )
            )

    # -- dangling vocabulary in attached logic rules --------------------
    for text in dm.rules_text:
        out.extend(_rule_text_diagnostics(dm, text, origin))

    # -- isa cycles ------------------------------------------------------
    isa_graph = nx.DiGraph()
    for edge in edges:
        if edge.kind == ISA and not _is_synthetic(edge.src) and not _is_synthetic(edge.dst):
            isa_graph.add_edge(edge.src, edge.dst)
    for cycle in _cycles(isa_graph):
        out.append(
            diagnostic(
                "MBM021",
                "isa cycle: %s; the concepts collapse into one class "
                "(declare an eqv edge if that is intended)"
                % " -> ".join(cycle + cycle[:1]),
                span=Span(origin, detail=", ".join(cycle)),
            )
        )

    # -- circular eqv definitions ---------------------------------------
    def_graph = nx.DiGraph()
    for axiom in dm.axioms:
        if isinstance(axiom, Eqv) and isinstance(axiom.lhs, Named):
            for name in axiom.rhs.named_concepts():
                def_graph.add_edge(axiom.lhs.name, name)
    for cycle in _cycles(def_graph):
        out.append(
            diagnostic(
                "MBM023",
                "circular definition: %s are defined in terms of each "
                "other through eqv/and edges; the definitions cannot "
                "be unfolded" % ", ".join(cycle),
                span=Span(origin, detail=", ".join(cycle)),
            )
        )

    # -- isolated concepts -----------------------------------------------
    touched: Set[str] = set()
    for edge in edges:
        touched.add(edge.src)
        touched.add(edge.dst)
    anchored = {concept for _src, _cls, concept in anchors}
    for concept in sorted(dm.concepts - touched - anchored):
        out.append(
            diagnostic(
                "MBM022",
                "concept %r participates in no axiom and no anchor; "
                "no query can reach it" % concept,
                span=Span(origin, detail=concept),
            )
        )

    # -- anchor points ----------------------------------------------------
    for source, class_name, concept in anchors:
        if concept not in dm.concepts:
            out.append(
                diagnostic(
                    "MBM024",
                    "anchor of %s.%s references concept %r which is "
                    "missing from the domain map"
                    % (source, class_name, concept),
                    span=Span("source %s" % source, detail=class_name),
                )
            )

    # -- edge-assertion selections ----------------------------------------
    if edge_assertions not in (None, "all"):
        triples = dm.role_triples()
        for src, role, dst in edge_assertions:
            if (src, role, dst) not in triples:
                out.append(
                    diagnostic(
                        "MBM020",
                        "edge assertion (%s, %s, %s) matches no (ex) "
                        "edge of the domain map" % (src, role, dst),
                        span=Span(origin, detail="%s -[%s]-> %s" % (src, role, dst)),
                    )
                )
    return out


def _rule_text_diagnostics(dm, text, origin):
    out = []
    try:
        rules = list(parse_program(text))
    except ParseError as exc:
        exc.span = Span(origin, detail=text.strip()[:60])
        return [exc.to_diagnostic()]
    for rule in rules:
        atoms = [rule.head]
        for item in rule.body:
            if isinstance(item, Literal):
                atoms.append(item.atom)
        for atom in atoms:
            spec = _VOCABULARY_PREDICATES.get(atom.pred)
            if spec is None:
                continue
            role_positions, concept_positions = spec
            for index, arg in enumerate(atom.args):
                value = getattr(arg, "value", None)
                if not isinstance(value, str):
                    continue
                if index in concept_positions and value not in dm.concepts:
                    out.append(
                        diagnostic(
                            "MBM020",
                            "rule %s references concept %r which is not "
                            "declared in the domain map" % (rule, value),
                            span=Span(origin, detail=str(rule)),
                        )
                    )
                elif index in role_positions and value not in dm.roles:
                    out.append(
                        diagnostic(
                            "MBM025",
                            "rule %s references role %r which is not "
                            "declared in the domain map" % (rule, value),
                            span=Span(origin, detail=str(rule)),
                        )
                    )
    return out


def _cycles(graph):
    """Non-trivial SCCs (plus self-loops) as sorted member lists."""
    cycles = []
    for component in nx.strongly_connected_components(graph):
        members = sorted(component)
        if len(members) > 1 or graph.has_edge(members[0], members[0]):
            cycles.append(members)
    cycles.sort()
    return cycles
