"""Lint reports: ordered diagnostic collections with renderers."""

from __future__ import annotations

from typing import Iterable, List

from ..errors import (
    Diagnostic,
    SEVERITY_ERROR,
    SEVERITY_INFO,
    SEVERITY_WARNING,
)
from .catalog import title_for


class Report:
    """The outcome of one analysis run.

    Diagnostics keep insertion order internally; renderers sort by
    severity, then code, then span so output is deterministic.
    """

    def __init__(self, diagnostics=(), subject=None):
        self.subject = subject
        self.diagnostics: List[Diagnostic] = list(diagnostics)

    # -- collection -------------------------------------------------------

    def add(self, diagnostic):
        self.diagnostics.append(diagnostic)
        return diagnostic

    def extend(self, diagnostics):
        self.diagnostics.extend(diagnostics)
        return self

    def merged_with(self, other):
        merged = Report(subject=self.subject or other.subject)
        merged.extend(self.diagnostics)
        merged.extend(other.diagnostics)
        return merged

    # -- slicing ----------------------------------------------------------

    def by_severity(self, severity):
        return [d for d in self.diagnostics if d.severity == severity]

    @property
    def errors(self):
        return self.by_severity(SEVERITY_ERROR)

    @property
    def warnings(self):
        return self.by_severity(SEVERITY_WARNING)

    @property
    def infos(self):
        return self.by_severity(SEVERITY_INFO)

    @property
    def has_errors(self):
        return bool(self.errors)

    def codes(self):
        """The distinct diagnostic codes present, sorted."""
        return sorted({d.code for d in self.diagnostics})

    def sorted_diagnostics(self):
        return sorted(self.diagnostics, key=lambda d: d.sort_key())

    # -- rendering --------------------------------------------------------

    def summary_line(self):
        subject = "%s: " % self.subject if self.subject else ""
        if not self.diagnostics:
            return "%sclean (no diagnostics)" % subject
        return "%s%d error(s), %d warning(s), %d info" % (
            subject,
            len(self.errors),
            len(self.warnings),
            len(self.infos),
        )

    def format_text(self, include_info=True, explain=False):
        """Human-readable multi-line rendering.

        With ``explain=True`` each line is followed by the catalog
        title of its code (useful the first time a code appears).
        """
        lines = []
        for diag in self.sorted_diagnostics():
            if not include_info and diag.severity == SEVERITY_INFO:
                continue
            lines.append(str(diag))
            if explain:
                title = title_for(diag.code)
                if title:
                    lines.append("    = %s" % title)
        lines.append(self.summary_line())
        return "\n".join(lines)

    def as_dict(self, include_info=True):
        """JSON-ready structure (``repro lint --json``)."""
        diagnostics = [
            d.as_dict()
            for d in self.sorted_diagnostics()
            if include_info or d.severity != SEVERITY_INFO
        ]
        return {
            "subject": self.subject,
            "diagnostics": diagnostics,
            "summary": {
                "errors": len(self.errors),
                "warnings": len(self.warnings),
                "infos": len(self.infos),
            },
        }

    def __len__(self):
        return len(self.diagnostics)

    def __iter__(self):
        return iter(self.diagnostics)

    def __repr__(self):
        return "Report(%r, errors=%d, warnings=%d, infos=%d)" % (
            self.subject,
            len(self.errors),
            len(self.warnings),
            len(self.infos),
        )
