"""An in-memory relational store: the "raw data" behind wrappers.

The paper's sources are lab databases (relational/object systems).  The
reproduction substitutes this small relational engine: typed columns,
primary keys, equality-indexed selection with projection, and callable
row predicates.  Wrappers sit on top and lift the rows to conceptual
models.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Tuple

from ..errors import RelStoreError

#: permitted dtype tags (None means untyped)
DTYPES = ("str", "int", "float", "bool")


class Column:
    """A named, optionally typed column."""

    __slots__ = ("name", "dtype")

    def __init__(self, name, dtype=None):
        if dtype is not None and dtype not in DTYPES:
            raise RelStoreError("unknown dtype %r for column %r" % (dtype, name))
        self.name = name
        self.dtype = dtype

    def check(self, value):
        if value is None or self.dtype is None:
            return value
        expected = {"str": str, "int": int, "float": (int, float), "bool": bool}[
            self.dtype
        ]
        if self.dtype == "int" and isinstance(value, bool):
            raise RelStoreError(
                "column %r expects int, got bool %r" % (self.name, value)
            )
        if not isinstance(value, expected):
            raise RelStoreError(
                "column %r expects %s, got %r" % (self.name, self.dtype, value)
            )
        if self.dtype == "float":
            return float(value)
        return value

    def __repr__(self):
        return "Column(%r, %r)" % (self.name, self.dtype)


class Table:
    """A table with ordered columns, optional primary key, and lazy
    per-column hash indexes."""

    def __init__(self, name, columns, key=None):
        self.name = name
        self.columns: List[Column] = [
            column if isinstance(column, Column) else Column(column)
            for column in columns
        ]
        names = [c.name for c in self.columns]
        if len(set(names)) != len(names):
            raise RelStoreError("table %r has duplicate column names" % name)
        self._position = {c.name: i for i, c in enumerate(self.columns)}
        if key is not None and key not in self._position:
            raise RelStoreError(
                "key column %r not in table %r" % (key, name)
            )
        self.key = key
        self._rows: List[Tuple] = []
        self._key_index: Dict[object, int] = {}
        self._indexes: Dict[str, Dict[object, List[int]]] = {}

    @property
    def column_names(self):
        return [c.name for c in self.columns]

    def __len__(self):
        return len(self._rows)

    def _column(self, name):
        position = self._position.get(name)
        if position is None:
            raise RelStoreError(
                "table %r has no column %r" % (self.name, name)
            )
        return position

    def insert(self, row):
        """Insert a row (dict keyed by column name, or a sequence)."""
        if isinstance(row, dict):
            unknown = set(row) - set(self._position)
            if unknown:
                raise RelStoreError(
                    "table %r has no column(s) %s" % (self.name, sorted(unknown))
                )
            values = tuple(
                column.check(row.get(column.name)) for column in self.columns
            )
        else:
            values = tuple(row)
            if len(values) != len(self.columns):
                raise RelStoreError(
                    "table %r expects %d values, got %d"
                    % (self.name, len(self.columns), len(values))
                )
            values = tuple(
                column.check(value) for column, value in zip(self.columns, values)
            )
        if self.key is not None:
            key_value = values[self._position[self.key]]
            if key_value in self._key_index:
                raise RelStoreError(
                    "duplicate key %r in table %r" % (key_value, self.name)
                )
            self._key_index[key_value] = len(self._rows)
        row_id = len(self._rows)
        self._rows.append(values)
        for column_name, index in self._indexes.items():
            index.setdefault(values[self._position[column_name]], []).append(row_id)
        return row_id

    def insert_many(self, rows):
        for row in rows:
            self.insert(row)
        return self

    def get(self, key_value):
        """Fetch one row dict by primary key (None if absent)."""
        if self.key is None:
            raise RelStoreError("table %r has no primary key" % self.name)
        row_id = self._key_index.get(key_value)
        if row_id is None:
            return None
        return self._row_dict(self._rows[row_id])

    def _index_for(self, column_name):
        index = self._indexes.get(column_name)
        if index is None:
            position = self._column(column_name)
            index = {}
            for row_id, values in enumerate(self._rows):
                index.setdefault(values[position], []).append(row_id)
            self._indexes[column_name] = index
        return index

    def select(self, where=None, columns=None, predicate=None):
        """Select rows as dicts.

        Args:
            where: equality filter {column: value}.
            columns: projection (list of column names); None = all.
            predicate: optional callable(row_dict) -> bool, applied after
                the equality filter.
        """
        where = dict(where or {})
        for column_name in where:
            self._column(column_name)
        if columns is not None:
            for column_name in columns:
                self._column(column_name)

        if where:
            # use the most selective index
            best_column = min(
                where,
                key=lambda column_name: len(
                    self._index_for(column_name).get(where[column_name], ())
                ),
            )
            candidate_ids = self._index_for(best_column).get(where[best_column], [])
        else:
            candidate_ids = range(len(self._rows))

        results = []
        for row_id in candidate_ids:
            values = self._rows[row_id]
            if all(
                values[self._position[column_name]] == expected
                for column_name, expected in where.items()
            ):
                row = self._row_dict(values)
                if predicate is None or predicate(row):
                    if columns is not None:
                        row = {name: row[name] for name in columns}
                    results.append(row)
        return results

    def distinct(self, column_name):
        """Sorted distinct values of one column."""
        position = self._column(column_name)
        return sorted({values[position] for values in self._rows}, key=repr)

    def _row_dict(self, values):
        return {column.name: value for column, value in zip(self.columns, values)}

    def rows(self):
        """All rows as dicts (insertion order)."""
        return [self._row_dict(values) for values in self._rows]

    def __repr__(self):
        return "Table(%r, %d rows)" % (self.name, len(self._rows))


def _convert_csv_value(text, dtype):
    if text == "":
        return None
    if dtype == "int":
        return int(text)
    if dtype == "float":
        return float(text)
    if dtype == "bool":
        lowered = text.strip().lower()
        if lowered in ("true", "1", "yes"):
            return True
        if lowered in ("false", "0", "no"):
            return False
        raise RelStoreError("cannot read %r as bool" % text)
    return text


def table_from_csv(name, path_or_file, dtypes=None, key=None):
    """Build a :class:`Table` from a CSV file (header row required).

    Args:
        name: table name.
        path_or_file: a path or an open text file.
        dtypes: column -> dtype tag ("str"/"int"/"float"/"bool");
            unlisted columns are untyped strings.  Empty cells become
            NULLs.
        key: optional primary-key column.
    """
    import csv

    dtypes = dict(dtypes or {})
    own_handle = isinstance(path_or_file, (str, bytes))
    handle = open(path_or_file, newline="") if own_handle else path_or_file
    try:
        reader = csv.reader(handle)
        try:
            header = next(reader)
        except StopIteration:
            raise RelStoreError("CSV for table %r has no header row" % name)
        unknown = set(dtypes) - set(header)
        if unknown:
            raise RelStoreError(
                "dtypes name columns missing from the CSV header: %s"
                % sorted(unknown)
            )
        columns = [Column(column, dtypes.get(column)) for column in header]
        table = Table(name, columns, key=key)
        for line_number, cells in enumerate(reader, start=2):
            if len(cells) != len(header):
                raise RelStoreError(
                    "CSV line %d of table %r has %d cells, expected %d"
                    % (line_number, name, len(cells), len(header))
                )
            table.insert(
                tuple(
                    _convert_csv_value(cell, dtypes.get(column))
                    for column, cell in zip(header, cells)
                )
            )
        return table
    finally:
        if own_handle:
            handle.close()


class RelStore:
    """A named collection of tables."""

    def __init__(self, name="store"):
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(self, name, columns, key=None):
        if name in self._tables:
            raise RelStoreError("table %r already exists" % name)
        table = Table(name, columns, key=key)
        self._tables[name] = table
        return table

    def load_csv(self, name, path_or_file, dtypes=None, key=None):
        """Create a table from a CSV file (see :func:`table_from_csv`)."""
        if name in self._tables:
            raise RelStoreError("table %r already exists" % name)
        table = table_from_csv(name, path_or_file, dtypes=dtypes, key=key)
        self._tables[name] = table
        return table

    def table(self, name):
        table = self._tables.get(name)
        if table is None:
            raise RelStoreError("no table %r in store %r" % (name, self.name))
        return table

    def has_table(self, name):
        return name in self._tables

    def table_names(self):
        return sorted(self._tables)

    def insert(self, table_name, row):
        return self.table(table_name).insert(row)

    def select(self, table_name, where=None, columns=None, predicate=None):
        return self.table(table_name).select(where, columns, predicate)

    def __len__(self):
        return len(self._tables)

    def __repr__(self):
        return "RelStore(%r, tables=%r)" % (self.name, self.table_names())
