"""Wrappers: lifting raw source data to conceptual models.

In model-based mediation, "structural integration and lifting of data
to the conceptual level is pushed down from the mediator to wrappers
which ... export classes, associations, constraints, and query
capabilities of a source" (abstract).  A :class:`Wrapper` sits on a
:class:`~repro.sources.relstore.RelStore` and declares, per exported
class:

* which table and key column back it,
* how columns map to methods (attributes) and their result types,
* the **anchor attribute**: which DM concept each object is an instance
  of — statically, or per row via a column with an optional
  value-to-concept mapping (the paper's ``location`` attribute holding
  values like ``"Purkinje Cell"``),
* **role links** tying objects into the domain map (``role_fact``
  triples) or to other exported objects (foreign keys),
* query capabilities: binding patterns and query templates.

The wrapper answers :class:`SourceQuery` objects — validated against
the declared capabilities, mirroring real pushed-down selections — and
*lifts* result rows into GCM facts for the mediator's engine.
"""

from __future__ import annotations

from typing import Callable, Dict, Iterable, List, Optional, Sequence, Set, Tuple

from .. import obs
from ..errors import CapabilityError, SchemaError, SourceError
from ..datalog.ast import Atom, Rule
from ..datalog.terms import Const
from ..gcm.model import ConceptualModel
from .capabilities import BindingPattern, ClassCapability, QueryTemplate
from .relstore import RelStore


class SourceQuery:
    """A selection/projection request against one exported class."""

    __slots__ = ("class_name", "selections", "projection")

    def __init__(self, class_name, selections=None, projection=None):
        self.class_name = class_name
        self.selections = dict(selections or {})
        self.projection = list(projection) if projection is not None else None

    def __repr__(self):
        return "SourceQuery(%r, selections=%r)" % (self.class_name, self.selections)


class AnchorSpec:
    """How objects of a class anchor into the domain map.

    Either a static `concept`, or a per-row `column` whose value names
    the concept — optionally via a value-to-concept `mapping` (source
    vocabularies rarely match DM concept names exactly).
    """

    __slots__ = ("concept", "column", "mapping")

    def __init__(self, concept=None, column=None, mapping=None):
        if (concept is None) == (column is None):
            raise SchemaError("AnchorSpec needs exactly one of concept/column")
        self.concept = concept
        self.column = column
        self.mapping = dict(mapping or {})

    def concept_for(self, row):
        """The DM concept this row's object is anchored at (or None)."""
        if self.concept is not None:
            return self.concept
        value = row.get(self.column)
        if value is None:
            return None
        return self.mapping.get(value, value)

    def possible_concepts(self, table):
        """All concepts rows of `table` may anchor at (for the schema-
        level semantic index)."""
        if self.concept is not None:
            return {self.concept}
        return {
            self.mapping.get(value, value)
            for value in table.distinct(self.column)
            if value is not None
        }


class RoleLink:
    """A per-row role fact emitted during lifting.

    Targets either a DM concept taken from a column (``role_fact(role,
    obj, concept)``) or another exported object via foreign key
    (``role_fact(role, obj, other_object_id)``).
    """

    __slots__ = ("role", "column", "mapping", "target_class", "static_target")

    def __init__(self, role, column=None, mapping=None, target_class=None,
                 static_target=None):
        self.role = role
        self.column = column
        self.mapping = dict(mapping or {})
        self.target_class = target_class
        self.static_target = static_target
        if column is None and static_target is None:
            raise SchemaError("RoleLink needs a column or a static target")

    def target_for(self, row, wrapper):
        if self.static_target is not None:
            return self.static_target
        value = row.get(self.column)
        if value is None:
            return None
        if self.target_class is not None:
            return wrapper.object_id(self.target_class, value)
        return self.mapping.get(value, value)


class ExportedClass:
    """One class a wrapper exports, with its table binding."""

    def __init__(
        self,
        class_name,
        table_name,
        key_column,
        methods,
        superclasses=(),
        anchor=None,
        role_links=(),
    ):
        self.class_name = class_name
        self.table_name = table_name
        self.key_column = key_column
        self.methods = dict(methods)  # method name -> column name
        self.superclasses = tuple(superclasses)
        self.anchor = anchor
        self.role_links = list(role_links)


class Wrapper:
    """A wrapped source: relational store + conceptual export."""

    def __init__(self, name, store=None):
        self.name = name
        self.store = store if store is not None else RelStore(name)
        self.exports: Dict[str, ExportedClass] = {}
        self._rules: List[str] = []
        self._rule_objects: List = []
        self._template_bodies: Dict[Tuple[str, str], Callable] = {}
        self._capabilities: Dict[str, ClassCapability] = {}

    @property
    def unwrapped(self):
        """The wrapper itself; decorators (fault injectors) override
        this to expose the real wrapper underneath."""
        return self

    # -- declaration -------------------------------------------------------

    def export_class(
        self,
        class_name,
        table_name,
        key_column,
        methods,
        superclasses=(),
        anchor=None,
        role_links=(),
        selectable=(),
        scannable=True,
    ):
        """Export a class backed by a table.

        Args:
            methods: method name -> column name mapping.
            anchor: an :class:`AnchorSpec` (or None).
            role_links: :class:`RoleLink` objects.
            selectable: attribute names the source accepts bound
                (becomes a binding pattern); the key is always
                selectable.
            scannable: whether the mediator may browse all instances.
        """
        if class_name in self.exports:
            raise SchemaError(
                "class %r already exported by %r" % (class_name, self.name)
            )
        table = self.store.table(table_name)
        for column in [key_column] + list(methods.values()):
            if column not in table.column_names:
                raise SchemaError(
                    "table %r has no column %r" % (table_name, column)
                )
        export = ExportedClass(
            class_name,
            table_name,
            key_column,
            methods,
            superclasses,
            anchor,
            role_links,
        )
        self.exports[class_name] = export

        attributes = sorted(methods)
        capability = ClassCapability(
            class_name, attributes, key=key_column, scannable=scannable
        )
        key_methods = [m for m, c in methods.items() if c == key_column]
        always = set(key_methods)
        if always:
            capability.allow_selection_on(always)
        if selectable:
            capability.allow_selection_on(set(selectable) | always)
        self._capabilities[class_name] = capability
        return export

    def add_rule(self, fl_text):
        """Attach semantic rules (exported with the CM)."""
        self._rules.append(fl_text)
        return self

    def add_rule_objects(self, rules):
        """Attach already-translated Datalog rules/facts (exported with
        the CM; used by CM-backed wrappers to carry relation tuples)."""
        self._rule_objects.extend(rules)
        return self

    def add_template(self, class_name, template, body):
        """Register a query template with its implementation."""
        capability = self._capability(class_name)
        capability.add_template(template)
        self._template_bodies[(class_name, template.name)] = body
        return self

    # -- exported views ----------------------------------------------------

    def schema_cm(self):
        """The conceptual model CM(S) this wrapper exports (schema +
        semantic rules, no instance data)."""
        cm = ConceptualModel(self.name)
        declared = set()
        for export in self.exports.values():
            table = self.store.table(export.table_name)
            dtype_of = {c.name: c.dtype for c in table.columns}
            methods = {}
            for method, column in sorted(export.methods.items()):
                methods[method] = _result_class(dtype_of.get(column))
            cm.add_class(export.class_name, superclasses=export.superclasses, methods=methods)
            declared.add(export.class_name)
        for export in self.exports.values():
            for sup in export.superclasses:
                if sup not in declared and sup not in cm.classes:
                    cm.add_class(sup)
                    declared.add(sup)
        for fl_text in self._rules:
            cm.add_rule(fl_text)
        if self._rule_objects:
            cm.add_datalog(list(self._rule_objects))
        return cm

    def capabilities(self):
        """Per-class capability records (sent to the mediator)."""
        return dict(self._capabilities)

    def anchors(self):
        """Schema-level anchor declarations: (class, concept, context)."""
        out = []
        for export in self.exports.values():
            if export.anchor is None:
                continue
            table = self.store.table(export.table_name)
            for concept in sorted(export.anchor.possible_concepts(table)):
                out.append((export.class_name, concept, export.anchor.column))
        return out

    # -- querying -----------------------------------------------------------

    def _capability(self, class_name):
        capability = self._capabilities.get(class_name)
        if capability is None:
            raise SourceError(
                "source %r does not export class %r" % (self.name, class_name)
            )
        return capability

    def _export(self, class_name):
        export = self.exports.get(class_name)
        if export is None:
            raise SourceError(
                "source %r does not export class %r" % (self.name, class_name)
            )
        return export

    def query(self, source_query):
        """Answer a :class:`SourceQuery`; returns row dicts (methods as
        keys, plus ``_object`` holding the lifted object id)."""
        with obs.span(
            "source.query",
            source=self.name,
            class_name=source_query.class_name,
            selections=len(source_query.selections),
        ) as span:
            export = self._export(source_query.class_name)
            capability = self._capability(source_query.class_name)
            capability.require_answerable(source_query.selections)
            where = {
                export.methods[attribute]: value
                for attribute, value in source_query.selections.items()
            }
            raw_rows = self.store.select(export.table_name, where=where)
            rows = [
                self._present(export, row, source_query.projection)
                for row in raw_rows
            ]
            if span.enabled:
                span.set(rows=len(rows))
                obs.count("source.queries", source=self.name)
                obs.count("source.rows_retrieved", len(rows), source=self.name)
            return rows

    def run_template(self, class_name, template_name, **arguments):
        """Execute a declared query template."""
        capability = self._capability(class_name)
        template = capability.templates.get(template_name)
        if template is None:
            raise CapabilityError(
                "source %r has no template %r for class %r"
                % (self.name, template_name, class_name)
            )
        template.check_arguments(arguments)
        body = self._template_bodies[(class_name, template_name)]
        export = self._export(class_name)
        with obs.span(
            "source.template",
            source=self.name,
            class_name=class_name,
            template=template_name,
        ) as span:
            raw_rows = body(self.store, **arguments)
            rows = [self._present(export, row, None) for row in raw_rows]
            if span.enabled:
                span.set(rows=len(rows))
                obs.count("source.rows_retrieved", len(rows), source=self.name)
            return rows

    def _present(self, export, raw_row, projection):
        row = {
            method: raw_row.get(column)
            for method, column in export.methods.items()
        }
        row["_object"] = self.object_id(
            export.class_name, raw_row[export.key_column]
        )
        row["_raw"] = raw_row
        if projection is not None:
            projected = {name: row[name] for name in projection}
            projected["_object"] = row["_object"]
            projected["_raw"] = raw_row
            return projected
        return row

    def selection_values_for_concept(self, class_name, attribute, concept):
        """The source-vocabulary values of `attribute` that anchor at a
        DM `concept` (inverse of the anchor mapping).

        Used by the mediator to push concept-level selections: the DM
        talks about ``Purkinje_Dendrite`` while the source's location
        column holds ``"Purkinje Cell dendrite"``.
        """
        export = self._export(class_name)
        anchor = export.anchor
        if anchor is None or anchor.column is None:
            return []
        if export.methods.get(attribute) != anchor.column:
            return []
        table = self.store.table(export.table_name)
        values = []
        for value in table.distinct(anchor.column):
            if value is None:
                continue
            if anchor.mapping.get(value, value) == concept:
                values.append(value)
        return values

    # -- lifting ------------------------------------------------------------

    def object_id(self, class_name, key_value):
        """The mediator-visible object identifier of one source object."""
        return "%s.%s.%s" % (self.name, class_name, key_value)

    def lift_rows(self, class_name, rows):
        """Lift queried rows into GCM facts for the mediator's engine.

        Emits ``instance(obj, class)``, ``method_inst`` values, the
        anchor tagging ``instance(obj, concept)``, and ``role_fact``
        triples for declared role links.
        """
        export = self._export(class_name)
        facts: List[Rule] = []
        for row in rows:
            obj = row["_object"]
            raw = row["_raw"]
            facts.append(
                Rule(Atom("instance", (Const(obj), Const(class_name))))
            )
            for method in export.methods:
                value = raw.get(export.methods[method])
                if value is not None:
                    facts.append(
                        Rule(
                            Atom(
                                "method_inst",
                                (Const(obj), Const(method), Const(value)),
                            )
                        )
                    )
            if export.anchor is not None:
                concept = export.anchor.concept_for(raw)
                if concept is not None:
                    facts.append(
                        Rule(Atom("instance", (Const(obj), Const(concept))))
                    )
                    # the stated anchor (never closed under subclass):
                    # distribution aggregation counts each object once,
                    # at its semantic coordinates
                    facts.append(
                        Rule(Atom("anchor", (Const(obj), Const(concept))))
                    )
            for link in export.role_links:
                target = link.target_for(raw, self)
                if target is not None:
                    facts.append(
                        Rule(
                            Atom(
                                "role_fact",
                                (Const(link.role), Const(obj), Const(target)),
                            )
                        )
                    )
        return facts

    def export_all_facts(self):
        """Eagerly lift every exported class (small-source registration)."""
        facts: List[Rule] = []
        for class_name in sorted(self.exports):
            rows = self.query(SourceQuery(class_name))
            facts.extend(self.lift_rows(class_name, rows))
        return facts

    def __repr__(self):
        return "Wrapper(%r, exports=%r)" % (self.name, sorted(self.exports))


def _result_class(dtype):
    return {
        None: "string",
        "str": "string",
        "int": "integer",
        "float": "float",
        "bool": "boolean",
    }[dtype]
