"""Source substrate: relational stores, wrappers, query capabilities.

The paper's wrapped sources (SYNAPSE, NCMIR, SENSELAB, ANATOM) are lab
databases; this package provides the substitute substrate — an
in-memory relational store — plus the wrapper machinery that lifts rows
to conceptual models, declares anchor/context attributes, and
advertises query capabilities (binding patterns, query templates).
"""

from .capabilities import BindingPattern, ClassCapability, QueryTemplate
from .cm_source import CMWrapper, wrapper_from_cm
from .relstore import Column, DTYPES, RelStore, Table, table_from_csv
from .wrapper import (
    AnchorSpec,
    ExportedClass,
    RoleLink,
    SourceQuery,
    Wrapper,
)

__all__ = [
    "AnchorSpec",
    "BindingPattern",
    "CMWrapper",
    "ClassCapability",
    "Column",
    "DTYPES",
    "ExportedClass",
    "QueryTemplate",
    "RelStore",
    "RoleLink",
    "SourceQuery",
    "Table",
    "Wrapper",
    "table_from_csv",
    "wrapper_from_cm",
]
