"""Wrapping an already-lifted conceptual model as a source.

CM plug-ins (:mod:`repro.xmlio.plugins`) turn foreign XML documents
into :class:`~repro.gcm.ConceptualModel` objects carrying schema *and*
data.  :func:`wrapper_from_cm` adapts such a CM to the standard
:class:`~repro.sources.Wrapper` interface — materializing its instance
data into a relational store, one table per class — so a plug-in
translated source registers with the mediator exactly like a native
relational one (capabilities included: every exported attribute is
selectable, since the data is local anyway).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Tuple

from ..datalog.terms import Const
from ..errors import SchemaError
from ..gcm.model import ConceptualModel
from .relstore import Column, RelStore
from .wrapper import AnchorSpec, Wrapper

_KEY_COLUMN = "_id"


class CMWrapper(Wrapper):
    """A wrapper backed by a lifted CM: object identities are the CM's
    own object names (so relation tuples referencing them still join)."""

    def object_id(self, class_name, key_value):
        return str(key_value)


def _dtype_of(values):
    kinds = {type(v) for v in values if v is not None}
    if kinds == {int}:
        return "int"
    if kinds <= {int, float} and kinds:
        return "float"
    if kinds == {bool}:
        return "bool"
    if kinds == {str}:
        return "str"
    return None


def wrapper_from_cm(cm, anchors=(), source_name=None):
    """Adapt a data-carrying conceptual model to the Wrapper interface.

    Args:
        cm: the conceptual model (e.g. ``plugin_result.cm``).
        anchors: (class_name, concept, context_method) triples — pass
            ``plugin_result.anchors``.  A context method means the
            anchor concept is per-object (the value of that method);
            otherwise the concept is static for the class.
        source_name: wrapper name (defaults to the CM name).

    Returns a ready-to-register :class:`Wrapper`.
    """
    name = source_name or cm.name
    store = RelStore(name)

    # collect instance data per class
    objects_by_class: Dict[str, List] = {}
    values: Dict[Tuple, Dict[str, object]] = {}
    for rule in cm.data_rules():
        atom = rule.head
        if atom.pred == "instance":
            obj, class_name = atom.args[0].value, atom.args[1].value
            objects_by_class.setdefault(class_name, []).append(obj)
        elif atom.pred == "method_inst":
            obj, method, value = (a.value for a in atom.args)
            values.setdefault(obj, {})[method] = value

    anchor_by_class: Dict[str, Tuple[str, Optional[str]]] = {
        class_name: (concept, context) for class_name, concept, context in anchors
    }

    def effective_methods(class_name):
        """Own + inherited method names (structural inheritance)."""
        out = set()
        stack, seen = [class_name], set()
        while stack:
            current = stack.pop()
            if current in seen:
                continue
            seen.add(current)
            class_def = cm.classes.get(current)
            if class_def is None:
                continue
            out.update(class_def.methods)
            stack.extend(class_def.superclasses)
        return sorted(out)

    wrapper = CMWrapper(name, store)
    for class_name in sorted(cm.classes):
        class_def = cm.classes[class_name]
        methods = effective_methods(class_name)
        objects = objects_by_class.get(class_name, [])
        columns = [Column(_KEY_COLUMN, "str")]
        for method in methods:
            method_values = [values.get(obj, {}).get(method) for obj in objects]
            columns.append(Column(method, _dtype_of(method_values)))
        anchor_spec = None
        anchor = anchor_by_class.get(class_name)
        if anchor is not None:
            # plug-in anchors declare a static concept per class; the
            # context (if any) names the attribute carrying the semantic
            # coordinates, which the index records but anchoring here
            # stays class-level
            concept, _context = anchor
            anchor_spec = AnchorSpec(concept=concept)

        table = store.create_table(
            "t_%s" % class_name, columns, key=_KEY_COLUMN
        )
        for obj in objects:
            row = {_KEY_COLUMN: str(obj)}
            for method in methods:
                row[method] = values.get(obj, {}).get(method)
            table.insert(row)

        wrapper.export_class(
            class_name,
            "t_%s" % class_name,
            _KEY_COLUMN,
            methods={method: method for method in methods},
            superclasses=class_def.superclasses,
            anchor=anchor_spec,
            selectable=set(methods),
        )
    # relation tuples: keep them as semantic rules (flat facts) so the
    # engine still sees them after registration
    relation_facts = [
        rule
        for rule in cm.data_rules()
        if rule.head.pred in cm.relations
    ]
    if relation_facts:
        wrapper.add_rule_objects(relation_facts)
    for text_rule in cm.semantic_rules():
        wrapper.add_rule_objects([text_rule])
    return wrapper
