"""Query capability descriptions: the "logical API" of a wrapped source.

Section 2: a source "transmits a description of its query capabilities
to M, which is a (usually very limited) CM query language ... The query
capability descriptions minimally specify means (e.g., primary keys)
for browsing through all instances of exported classes and relations,
and optionally declare further capabilities as *binding patterns* or
*query templates* which allow the mediator to optimize query evaluation
by pushing down subqueries."

* :class:`BindingPattern` — which attribute combinations may arrive
  bound (``b``) vs. free (``f``) in a pushed-down selection.
* :class:`QueryTemplate` — a named, parameterized canned query.
* :class:`ClassCapability` — the per-class bundle: key attributes for
  browsing, binding patterns, templates.
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import CapabilityError


class BindingPattern:
    """A supported bound/free pattern over a class's ordered attributes.

    ``pattern`` is a string over {'b', 'f'}; position i refers to
    ``attributes[i]``.  A pushed selection is answerable by the pattern
    when every selected attribute is 'b' in the pattern (a source that
    accepts attribute X bound also accepts it free — the mediator can
    always filter locally — so matching is "selected <= bound set").
    """

    __slots__ = ("attributes", "pattern")

    def __init__(self, attributes, pattern):
        self.attributes = tuple(attributes)
        self.pattern = pattern
        if len(self.attributes) != len(pattern):
            raise CapabilityError(
                "binding pattern %r has %d flags but covers %d attributes "
                "%r (one 'b'/'f' flag per attribute, in order)"
                % (
                    pattern,
                    len(pattern),
                    len(self.attributes),
                    list(self.attributes),
                ),
                code="MBM041",
            )
        for position, flag in enumerate(pattern):
            if flag not in ("b", "f"):
                raise CapabilityError(
                    "binding pattern %r has invalid flag %r at position %d "
                    "(attribute %r); only 'b' (bound) and 'f' (free) are "
                    "allowed"
                    % (pattern, flag, position, self.attributes[position]),
                    code="MBM041",
                )

    @property
    def bound_attributes(self):
        return {
            attribute
            for attribute, flag in zip(self.attributes, self.pattern)
            if flag == "b"
        }

    def accepts(self, selected_attributes):
        return set(selected_attributes) <= self.bound_attributes

    def __repr__(self):
        return "BindingPattern(%r, %r)" % (self.attributes, self.pattern)


class QueryTemplate:
    """A named canned query with declared parameters.

    The wrapper implements the template body; the capability record only
    advertises its existence and signature to the mediator.
    """

    __slots__ = ("name", "parameters", "description")

    def __init__(self, name, parameters, description=""):
        self.name = name
        self.parameters = tuple(parameters)
        self.description = description

    def check_arguments(self, arguments):
        missing = set(self.parameters) - set(arguments)
        extra = set(arguments) - set(self.parameters)
        if missing or extra:
            raise CapabilityError(
                "template %r expects parameters %s (missing %s, extra %s)"
                % (
                    self.name,
                    list(self.parameters),
                    sorted(missing),
                    sorted(extra),
                )
            )
        return True

    def __repr__(self):
        return "QueryTemplate(%r, %r)" % (self.name, self.parameters)


class ClassCapability:
    """The capability bundle for one exported class."""

    def __init__(
        self,
        class_name,
        attributes,
        key=None,
        scannable=True,
        binding_patterns=(),
        templates=(),
    ):
        self.class_name = class_name
        self.attributes = tuple(attributes)
        self.key = key
        self.scannable = scannable
        self.binding_patterns: List[BindingPattern] = list(binding_patterns)
        self.templates: Dict[str, QueryTemplate] = {
            template.name: template for template in templates
        }

    def allow_selection_on(self, attributes):
        """Declare a binding pattern allowing these attributes bound."""
        attributes = set(attributes)
        pattern = "".join(
            "b" if attribute in attributes else "f"
            for attribute in self.attributes
        )
        self.binding_patterns.append(BindingPattern(self.attributes, pattern))
        return self

    def add_template(self, template):
        self.templates[template.name] = template
        return self

    def answerable(self, selections):
        """Can a selection dict be pushed to the source?

        An empty selection needs a scannable class; otherwise some
        binding pattern must cover the selected attributes.
        """
        unknown = set(selections) - set(self.attributes)
        if unknown:
            raise CapabilityError(
                "class %r has no attribute(s) %s"
                % (self.class_name, sorted(unknown))
            )
        if not selections:
            return self.scannable
        return any(
            pattern.accepts(selections) for pattern in self.binding_patterns
        )

    def partition_selections(self, selections, always_bound=()):
        """Split `selections` into ``(pushable, local)``.

        An attribute is *pushable* when the source can answer it bound
        together with the ``always_bound`` attributes (e.g. the anchor
        attribute a retrieval step always binds); everything else must
        be filtered *locally* by the mediator.  The single split point
        for the planner, so push-down decisions and capability checks
        cannot drift apart.
        """
        base = {attribute: None for attribute in always_bound}
        pushable = {}
        local = {}
        for attribute, value in selections.items():
            probe = dict(base)
            probe[attribute] = None
            if self.answerable(probe):
                pushable[attribute] = value
            else:
                local[attribute] = value
        return pushable, local

    def require_answerable(self, selections):
        if not self.answerable(selections):
            raise CapabilityError(
                "source cannot answer selection on %s for class %r "
                "(declared patterns: %s)"
                % (
                    sorted(selections),
                    self.class_name,
                    [bp.pattern for bp in self.binding_patterns],
                )
            )
        return True

    def __repr__(self):
        return "ClassCapability(%r, key=%r, patterns=%d, templates=%d)" % (
            self.class_name,
            self.key,
            len(self.binding_patterns),
            len(self.templates),
        )
