"""Translation of F-logic to the Datalog core (Table 1).

GCM expression            F-logic syntax        Datalog relation
------------------------  --------------------  -----------------------
instance(X, C)            X : C                 instance(X, C)
subclass(C1, C2)          C1 :: C2              subclass(C1, C2)
method(C, M, CM)          C[M => CM]            method(C, M, CM)
methodinst(X, M, Y)       X[M -> Y]             method_inst(X, M, Y)
(inheritable default)     C[M *-> V]            default_val(C, M, V)

Reading and writing are asymmetric, mirroring F-logic systems: a data
frame in a rule *head* asserts `method_inst`, while the same frame in a
*body* reads the derived `method_val` relation, which is `method_inst`
plus nonmonotonically inherited defaults (see :mod:`.axioms`).

Negated conjunctions ``not (A, B)`` — used by the paper's assertion
rules — have no direct Datalog form; the translator introduces an
auxiliary predicate capturing the conjunction, named by a content hash
so repeated translation of the same text stays idempotent.
"""

from __future__ import annotations

import hashlib
from typing import List, Sequence, Tuple

from ..errors import FLogicTranslationError
from ..datalog.ast import (
    AggregateLiteral,
    Assignment,
    Atom,
    Comparison,
    Literal,
    Rule,
)
from ..datalog.terms import Term, Var
from .ast import (
    ARROW_DEFAULT,
    ARROW_MULTI,
    ARROW_SCALAR,
    ARROW_SIG_MULTI,
    ARROW_SIG_SCALAR,
    FLAggregate,
    FLAssignment,
    FLComparison,
    FLNegation,
    FLPredicate,
    FLRule,
    Molecule,
)

#: relation names of the GCM core (reserved; plain FL predicates may not
#: shadow them with the wrong arity, but using them directly is allowed
#: and equivalent to the frame syntax).
PRED_INSTANCE = "instance"
PRED_SUBCLASS = "subclass"
PRED_METHOD = "method"
PRED_METHOD_INST = "method_inst"
PRED_METHOD_VAL = "method_val"
PRED_DEFAULT_VAL = "default_val"
PRED_CLASS = "class"


def molecule_atoms(molecule, mode):
    """Flatten a molecule into GCM atoms.

    `mode` is ``"head"`` (assert `method_inst`) or ``"body"`` (read
    `method_val`).
    """
    atoms = []
    subject = molecule.subject
    if molecule.tag_kind == ":":
        atoms.append(Atom(PRED_INSTANCE, (subject, molecule.tag)))
    elif molecule.tag_kind == "::":
        atoms.append(Atom(PRED_SUBCLASS, (subject, molecule.tag)))
    for spec in molecule.specs:
        if spec.arrow in (ARROW_SCALAR, ARROW_MULTI):
            pred = PRED_METHOD_INST if mode == "head" else PRED_METHOD_VAL
            for value in spec.values:
                atoms.append(Atom(pred, (subject, spec.method, value)))
        elif spec.arrow in (ARROW_SIG_SCALAR, ARROW_SIG_MULTI):
            for value in spec.values:
                atoms.append(Atom(PRED_METHOD, (subject, spec.method, value)))
        elif spec.arrow == ARROW_DEFAULT:
            for value in spec.values:
                atoms.append(Atom(PRED_DEFAULT_VAL, (subject, spec.method, value)))
        else:  # pragma: no cover - constructor already validates
            raise FLogicTranslationError("unknown arrow %r" % spec.arrow)
    if not atoms:
        raise FLogicTranslationError(
            "molecule %s has neither tag nor frame" % molecule
        )
    return atoms


class Translator:
    """Stateful FL→Datalog translator (collects auxiliary rules)."""

    def __init__(self):
        self.aux_rules: List[Rule] = []

    # -- public API -----------------------------------------------------

    def translate_rules(self, fl_rules):
        """Translate F-logic rules into a list of Datalog rules.

        One Datalog rule is produced per atom of each conjunctive head;
        auxiliary rules for negated conjunctions are appended at the end.
        """
        self.aux_rules = []
        out: List[Rule] = []
        for fl_rule in fl_rules:
            out.extend(self._translate_rule(fl_rule))
        out.extend(self.aux_rules)
        return out

    def translate_body(self, fl_items):
        """Translate a query conjunction; returns (body_items, aux_rules)."""
        self.aux_rules = []
        body = self._translate_body_items(fl_items, _sibling_variables(fl_items, ()))
        return body, list(self.aux_rules)

    # -- internals --------------------------------------------------------

    def _translate_rule(self, fl_rule):
        head_atoms: List[Atom] = []
        for head in fl_rule.heads:
            if isinstance(head, Molecule):
                head_atoms.extend(molecule_atoms(head, mode="head"))
            elif isinstance(head, FLPredicate):
                head_atoms.append(Atom(head.name, head.args))
            else:
                raise FLogicTranslationError(
                    "illegal head item %s" % (head,)
                )
        body = self._translate_body_items(
            fl_rule.body, _sibling_variables(fl_rule.body, fl_rule.heads)
        )
        return [Rule(atom, tuple(body)) for atom in head_atoms]

    def _translate_body_items(self, fl_items, sibling_vars):
        """Translate items; `sibling_vars[i]` is the variable set of every
        item except item i (plus any heads), used to scope negation."""
        body = []
        for item, outer in zip(fl_items, sibling_vars):
            body.extend(self._translate_body_item(item, outer))
        return body

    def _translate_body_item(self, item, rule_vars):
        if isinstance(item, Molecule):
            return [
                Literal(atom) for atom in molecule_atoms(item, mode="body")
            ]
        if isinstance(item, FLPredicate):
            return [Literal(Atom(item.name, item.args))]
        if isinstance(item, FLComparison):
            return [Comparison(item.op, item.left, item.right)]
        if isinstance(item, FLAssignment):
            return [Assignment(item.target, item.expr)]
        if isinstance(item, FLAggregate):
            inner = self._translate_body_items(
                item.body, _sibling_variables(item.body, ())
            )
            return [
                AggregateLiteral(
                    item.func, item.result, item.value, item.group_by, tuple(inner)
                )
            ]
        if isinstance(item, FLNegation):
            return [self._translate_negation(item, rule_vars)]
        raise FLogicTranslationError("unsupported body item %r" % (item,))

    def _translate_negation(self, negation, rule_vars):
        inner_siblings = [
            siblings | rule_vars
            for siblings in _sibling_variables(negation.items, ())
        ]
        inner = self._translate_body_items(negation.items, inner_siblings)
        if len(inner) == 1 and isinstance(inner[0], Literal) and inner[0].positive:
            return inner[0].negate()
        # Auxiliary predicate over the variables shared with the rest of
        # the rule; named by content hash for idempotent re-translation.
        inner_vars = set()
        for lit in inner:
            inner_vars |= set(lit.variables())
        outer_vars = {
            v for v in inner_vars
            if v in rule_vars and not v.name.startswith("_fl")
        }
        shared = sorted(outer_vars, key=lambda v: v.name)
        digest = hashlib.sha1(
            ("|".join(str(i) for i in inner) + "#" + ",".join(v.name for v in shared))
            .encode("utf-8")
        ).hexdigest()[:12]
        aux_pred = "_not_%s" % digest
        aux_head = Atom(aux_pred, tuple(shared))
        self.aux_rules.append(Rule(aux_head, tuple(inner)))
        return Literal(aux_head, positive=False)


def _sibling_variables(items, heads):
    """For each body item, the variables of every *other* item and of the
    heads.  A negated conjunction's auxiliary predicate must expose
    exactly the variables it shares with this sibling set."""
    item_vars = [_item_variables(item) for item in items]
    head_vars = set()
    for head in heads:
        head_vars |= _item_variables(head)
    siblings = []
    for index in range(len(items)):
        outer = set(head_vars)
        for other, variables in enumerate(item_vars):
            if other != index:
                outer |= variables
        siblings.append(outer)
    return siblings


def _item_variables(item):
    variables = set()
    if isinstance(item, Molecule):
        variables |= set(item.subject.variables())
        if item.tag is not None:
            variables |= set(item.tag.variables())
        for spec in item.specs:
            variables |= set(spec.method.variables())
            for value in spec.values:
                variables |= set(value.variables())
    elif isinstance(item, FLPredicate):
        for arg in item.args:
            variables |= set(arg.variables())
    elif isinstance(item, FLComparison):
        variables |= set(item.left.variables())
        variables |= set(item.right.variables())
    elif isinstance(item, FLAssignment):
        variables |= set(item.target.variables())
        variables |= set(item.expr.variables())
    elif isinstance(item, FLAggregate):
        variables |= set(item.result.variables())
        for g in item.group_by:
            variables |= set(g.variables())
        variables |= set(item.value.variables())
        for sub in item.body:
            variables |= _item_variables(sub)
    elif isinstance(item, FLNegation):
        for sub in item.items:
            variables |= _item_variables(sub)
    return variables
