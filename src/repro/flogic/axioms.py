"""The F-logic axioms of Table 1, as Datalog rules.

Three groups:

* :func:`core_axioms` — the paper's minimal axiom set: reflexivity of
  ``::`` over the metaclass `class`, transitivity of ``::``, upward
  propagation of ``:`` along ``::``, plus the bookkeeping rules deriving
  `class` membership from usage and the `method_val` bridge that makes
  stated values visible to body frames.
* :func:`signature_inheritance_axioms` — structural inheritance:
  signatures propagate down the class hierarchy (subclasses inherit
  their superclass's slot structure; Section 3).
* :func:`value_inheritance_axioms` — nonmonotonic value inheritance of
  ``*->`` defaults: an instance inherits a default from class C unless a
  strictly more specific class redefines it or the instance has a
  locally stated value.  When user rules derive stated values *from*
  inherited ones this becomes negation through recursion, and the engine
  evaluates it under the well-founded semantics — exactly the treatment
  the paper prescribes ("nonmonotonic inheritance, e.g., using FL with
  well-founded semantics can be employed", Section 4).
"""

from __future__ import annotations

from ..datalog.parser import parse_program

_CORE = """
% Table 1: '::' is reflexive on classes and transitive; ':' propagates up.
subclass(C, C) :- class(C).
subclass(C1, C2) :- subclass(C1, C3), subclass(C3, C2).
instance(X, C2) :- instance(X, C1), subclass(C1, C2).

% The metaclass 'class' is populated from usage.
class(C) :- subclass(C, _).
class(C) :- subclass(_, C).
class(C) :- instance(_, C).
class(C) :- method(C, _, _).
class(C) :- method(_, _, C).
class(C) :- default_val(C, _, _).

% The metaclass: every class is an instance of 'class' (enables the
% paper's schema-level reasoning, e.g. Example 2 with C = class).
instance(C, class) :- class(C).

% Body frames read method_val: stated values are always visible.
method_val(X, M, V) :- method_inst(X, M, V).
"""

_SIGNATURE_INHERITANCE = """
% Structural inheritance: subclasses inherit signatures.
method(C1, M, CM) :- subclass(C1, C2), method(C2, M, CM).
"""

_VALUE_INHERITANCE = """
% Nonmonotonic value inheritance of '*->' defaults.
method_val(X, M, V) :- inherits(X, M, V).
inherits(X, M, V) :- instance(X, C), default_val(C, M, V),
                     not shadowed(X, M, C).
% Shadowed by a locally stated value ...
shadowed(X, M, C) :- instance(X, C), default_val(C, M, _),
                     method_inst(X, M, _).
% ... or by a default on a strictly more specific class.
shadowed(X, M, C) :- instance(X, C), default_val(C, M, _),
                     instance(X, C1), subclass(C1, C), C1 != C,
                     default_val(C1, M, _).
"""


def core_axioms():
    """The mandatory Table 1 axiom rules."""
    return list(parse_program(_CORE))


def signature_inheritance_axioms():
    """Downward propagation of method signatures."""
    return list(parse_program(_SIGNATURE_INHERITANCE))


def value_inheritance_axioms():
    """Nonmonotonic default-value inheritance rules."""
    return list(parse_program(_VALUE_INHERITANCE))


def all_axioms(include_value_inheritance=True):
    """Convenience bundle of every axiom group."""
    rules = core_axioms() + signature_inheritance_axioms()
    if include_value_inheritance:
        rules += value_inheritance_axioms()
    return rules
