"""The F-logic engine facade.

:class:`FLogicEngine` is the deductive engine of the reproduction —
the stand-in for FLORA/FLORID in the paper's prototype.  It accepts
knowledge in F-logic syntax (or raw Datalog), maintains the translated
rule base together with the Table 1 axioms, and answers queries.

Value-inheritance axioms are only linked in when some ``*->`` default
exists in the knowledge base: they are the one axiom group that can make
programs non-stratifiable (intentionally — the paper resolves such
programs with the well-founded semantics), so keeping them out of
default-free programs preserves cheap stratified evaluation.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence

from .. import obs
from ..datalog.ast import Atom, Program, Rule
from ..datalog.engine import EvaluationResult, evaluate
from ..datalog.parser import parse_program as parse_datalog
from ..datalog.terms import Const, Term, Var, substitute, term_sort_key
from .ast import FLRule
from .axioms import core_axioms, signature_inheritance_axioms, value_inheritance_axioms
from .parser import parse_fl_body, parse_fl_program
from .translate import PRED_DEFAULT_VAL, Translator


class FLogicEngine:
    """An incremental F-logic knowledge base over the Datalog engine."""

    def __init__(self, signature_inheritance=True):
        self._rules: List[Rule] = []
        self._signature_inheritance = signature_inheritance
        self._result: Optional[EvaluationResult] = None
        self._translator = Translator()

    # -- loading knowledge ------------------------------------------------

    def tell(self, fl_text):
        """Parse and add F-logic source text."""
        with obs.span("flogic.parse", chars=len(fl_text)) as span:
            fl_rules = parse_fl_program(fl_text)
            span.set(fl_rules=len(fl_rules))
        self.tell_fl_rules(fl_rules)
        return self

    def tell_fl_rules(self, fl_rules):
        """Add already-parsed F-logic rules."""
        fl_rules = list(fl_rules)
        with obs.span("flogic.translate", fl_rules=len(fl_rules)) as span:
            rules = self._translator.translate_rules(fl_rules)
            span.set(datalog_rules=len(rules))
        self._add_rules(rules)
        return self

    def tell_datalog(self, text_or_program):
        """Add raw Datalog clauses (text or a Program/rule iterable)."""
        if isinstance(text_or_program, str):
            rules = list(parse_datalog(text_or_program))
        else:
            rules = list(text_or_program)
        self._add_rules(rules)
        return self

    def tell_rules(self, rules):
        """Add Datalog :class:`Rule` objects directly."""
        self._add_rules(list(rules))
        return self

    def add_fact(self, pred, *args):
        """Add one ground Datalog fact."""
        self._add_rules([Rule(Atom(pred, args))])
        return self

    def _add_rules(self, rules):
        if rules:
            self._rules.extend(rules)
            self._result = None

    # -- evaluation ---------------------------------------------------------

    @property
    def rules(self):
        return tuple(self._rules)

    def _uses_defaults(self):
        return any(
            rule.head.pred == PRED_DEFAULT_VAL for rule in self._rules
        )

    def _assemble(self, extra_rules=()):
        program = Program()
        program.extend(self._rules)
        program.extend(core_axioms())
        if self._signature_inheritance:
            program.extend(signature_inheritance_axioms())
        if self._uses_defaults():
            program.extend(value_inheritance_axioms())
        program.extend(extra_rules)
        return program

    def program(self, extra_rules=()):
        """The fully assembled Datalog program the engine would run —
        told rules plus core/inheritance axioms — without evaluating
        anything.  Static analysis (``repro lint``) works on this."""
        return self._assemble(extra_rules=extra_rules)

    def evaluate(self, check_safety=True):
        """Evaluate the knowledge base; results are cached until the
        next `tell`.

        ``check_safety=False`` skips the per-rule range-restriction
        check — only for callers that already verified the same rules
        (e.g. the mediator re-evaluating its static program against
        lazily fetched facts).
        """
        if self._result is None:
            with obs.span("flogic.evaluate", rules=len(self._rules)) as span:
                self._result = evaluate(
                    self._assemble(), check_safety=check_safety
                )
                span.set(facts=len(self._result.store))
        return self._result

    @property
    def store(self):
        return self.evaluate().store

    # -- queries ----------------------------------------------------------

    def ask(self, query_text):
        """Answer an F-logic query conjunction.

        Returns a deterministically ordered list of bindings (dicts from
        variable name to Python value / term), one per answer.  Example::

            engine.ask("X : neuron[has -> C]")
        """
        with obs.span("flogic.ask", query=query_text) as ask_span:
            fl_items = parse_fl_body(query_text)
            body, aux_rules = self._translator.translate_body(fl_items)
            answer_vars = sorted(
                {
                    v
                    for item in body
                    for v in item.variables()
                    if not v.is_anonymous and not v.name.startswith("_fl")
                },
                key=lambda v: v.name,
            )
            goal = Atom("_query", tuple(answer_vars))
            query_rule = Rule(goal, tuple(body))
            program = self._assemble(extra_rules=list(aux_rules) + [query_rule])
            result = evaluate(program)
            ask_span.set(answers=len(list(result.store.rows(goal.signature))))
        bindings = []
        for args in result.store.rows(goal.signature):
            binding = {}
            for variable, value in zip(answer_vars, args):
                binding[variable.name] = (
                    value.value if isinstance(value, Const) else value
                )
            bindings.append(binding)
        bindings.sort(
            key=lambda b: [
                (name, _sort_key(value)) for name, value in sorted(b.items())
            ]
        )
        return bindings

    def holds(self, query_text):
        """True when the query has at least one answer."""
        return bool(self.ask(query_text))

    def explain(self, query_text):
        """A derivation tree for one ground F-logic fact, or None.

        The query must translate to a single ground atom, e.g.
        ``"p1 : neuron"`` or ``"p1[age -> 12]"``.
        """
        from ..datalog.ast import Literal
        from ..datalog.provenance import explain as datalog_explain

        fl_items = parse_fl_body(query_text)
        body, aux_rules = self._translator.translate_body(fl_items)
        if aux_rules or len(body) != 1 or not isinstance(body[0], Literal):
            raise ValueError(
                "explain() takes a single positive ground fact, got %r"
                % query_text
            )
        atom = body[0].atom
        if not atom.is_ground():
            raise ValueError("explain() needs a ground fact, got %s" % atom)
        return datalog_explain(self._assemble(), atom, result=self.evaluate())

    # -- introspection ------------------------------------------------------

    def classes(self):
        """All known classes (members of the metaclass)."""
        return sorted(
            {
                args[0].value
                for args in self.store.rows(("class", 1))
                if isinstance(args[0], Const)
            },
            key=str,
        )

    def instances_of(self, class_name):
        """All direct-or-inherited instances of a class."""
        rows = self.ask("X : '%s'" % class_name)
        return [row["X"] for row in rows]

    def subclasses_of(self, class_name):
        """All subclasses (reflexive-transitive) of a class."""
        rows = self.ask("X :: '%s'" % class_name)
        return [row["X"] for row in rows]


def _sort_key(value):
    if isinstance(value, Term):
        return term_sort_key(value)
    return (0, type(value).__name__, repr(value))
