"""Parser for the F-logic fragment.

Grammar (informal)::

    program  := (rule)*
    rule     := heads [ ':-' body ] '.'
    heads    := item (',' item)*            -- molecules/predicates only
    body     := bitem (',' bitem)*
    bitem    := 'not' (bitem | '(' body ')')
              | VAR 'is' expr
              | VAR '=' AGG '{' term [groups] ';' body '}'
              | molecule-or-comparison
    molecule := [subject] tag? frame?
    subject  := term
    tag      := (':' | '::') term
    frame    := '[' spec (';' spec)* ']'
    spec     := term ARROW (term | '{' term (',' term)* '}')
    ARROW    := -> | ->> | => | =>> | *->

A molecule with no subject (``: R[A -> X]``) denotes an anonymous
instance; the parser substitutes a fresh variable.  Plain predicates
``p(X, Y)`` are the degenerate molecule whose subject happens to be a
compound term in *predicate position*; the parser distinguishes them by
the absence of tags and frames.
"""

from __future__ import annotations

import re
from typing import List

from ..errors import FLogicParseError
from ..datalog.ast import AGGREGATE_FUNCS
from ..datalog.terms import Const, Struct, Var
from .ast import (
    FLAggregate,
    FLAssignment,
    FLComparison,
    FLNegation,
    FLPredicate,
    FLRule,
    MethodSpec,
    Molecule,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<dqstring>"(?:[^"\\]|\\.)*")
  | (?P<sqstring>'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct>:-|::|:|\*->|->>|->|=>>|=>|!=|<=|>=|=|<|>|\(|\)|\{|\}|\[|\]|,|;|\.|\+|-|\*|//|/)
    """,
    re.VERBOSE,
)

_KEYWORDS = {"not", "is", "mod"}

_COMPARISON_OPS = ("=", "!=", "<", "<=", ">", ">=")


class _Token:
    __slots__ = ("kind", "value", "pos")

    def __init__(self, kind, value, pos):
        self.kind = kind
        self.value = value
        self.pos = pos

    def __repr__(self):
        return "_Token(%r, %r, %d)" % (self.kind, self.value, self.pos)


def _unescape(body):
    return body.replace("\\\\", "\\").replace("\\'", "'").replace('\\"', '"')


def tokenize(text):
    tokens: List[_Token] = []
    pos = 0
    while pos < len(text):
        m = _TOKEN_RE.match(text, pos)
        if m is None:
            raise FLogicParseError(
                "unexpected character %r" % text[pos], text=text, position=pos
            )
        kind = m.lastgroup
        value = m.group()
        if kind in ("ws", "comment"):
            pos = m.end()
            continue
        if kind == "number":
            number = float(value) if "." in value else int(value)
            tokens.append(_Token("number", number, pos))
        elif kind in ("dqstring", "sqstring"):
            tokens.append(_Token("string", _unescape(value[1:-1]), pos))
        elif kind == "name":
            if value in _KEYWORDS:
                tokens.append(_Token(value, value, pos))
            elif value[0].isupper() or value[0] == "_":
                tokens.append(_Token("var", value, pos))
            else:
                tokens.append(_Token("symbol", value, pos))
        else:
            tokens.append(_Token(value, value, pos))
        pos = m.end()
    tokens.append(_Token("eof", None, pos))
    return tokens


class _Parser:
    def __init__(self, text):
        self.text = text
        self.tokens = tokenize(text)
        self.index = 0
        self._fresh_counter = 0

    # -- token helpers -------------------------------------------------

    def peek(self, offset=0):
        return self.tokens[min(self.index + offset, len(self.tokens) - 1)]

    def next(self):
        token = self.tokens[self.index]
        if token.kind != "eof":
            self.index += 1
        return token

    def expect(self, kind):
        token = self.next()
        if token.kind != kind:
            raise FLogicParseError(
                "expected %r but found %r" % (kind, token.value),
                text=self.text,
                position=token.pos,
            )
        return token

    def error(self, message):
        token = self.peek()
        raise FLogicParseError(message, text=self.text, position=token.pos)

    def fresh_var(self):
        self._fresh_counter += 1
        return Var("_fl%d" % self._fresh_counter)

    # -- grammar -------------------------------------------------------

    def parse_program(self):
        rules = []
        while self.peek().kind != "eof":
            rules.append(self.parse_rule())
        return rules

    def parse_rule(self):
        heads = [self.parse_head_item()]
        while self.peek().kind == ",":
            self.next()
            heads.append(self.parse_head_item())
        body = ()
        if self.peek().kind == ":-":
            self.next()
            body = self.parse_body(stop_kinds=(".",))
        self.expect(".")
        return FLRule(tuple(heads), body)

    def parse_head_item(self):
        item = self.parse_body_item()
        if isinstance(item, (FLNegation, FLComparison, FLAggregate, FLAssignment)):
            self.error("only molecules and predicates may appear in rule heads")
        return item

    def parse_body(self, stop_kinds):
        items = [self.parse_body_item()]
        while self.peek().kind == ",":
            self.next()
            items.append(self.parse_body_item())
        if self.peek().kind not in stop_kinds:
            self.error("expected %s after body" % " or ".join(stop_kinds))
        return tuple(items)

    def parse_body_item(self):
        token = self.peek()
        if token.kind == "not":
            self.next()
            if self.peek().kind == "(":
                self.next()
                inner = self.parse_body(stop_kinds=(")",))
                self.expect(")")
                return FLNegation(inner)
            return FLNegation((self.parse_body_item(),))
        if token.kind == "var":
            nxt = self.peek(1)
            if nxt.kind == "is":
                variable = Var(self.next().value)
                self.next()
                return FLAssignment(variable, self.parse_expression())
            if nxt.kind == "=" and self._peek_aggregate(2):
                variable = Var(self.next().value)
                self.next()
                return self.parse_aggregate(variable)
        return self.parse_molecule_or_comparison()

    def _peek_aggregate(self, offset):
        token = self.peek(offset)
        return (
            token.kind == "symbol"
            and token.value in AGGREGATE_FUNCS
            and self.peek(offset + 1).kind == "{"
        )

    def parse_aggregate(self, result_var):
        func = self.expect("symbol").value
        if func not in AGGREGATE_FUNCS:
            self.error("unknown aggregate function %r" % func)
        self.expect("{")
        value = self.parse_term()
        group_by = ()
        if self.peek().kind == "[":
            self.next()
            groups = [self.parse_term()]
            while self.peek().kind == ",":
                self.next()
                groups.append(self.parse_term())
            self.expect("]")
            group_by = tuple(groups)
        self.expect(";")
        body = self.parse_body(stop_kinds=("}",))
        self.expect("}")
        return FLAggregate(func, result_var, value, group_by, body)

    def parse_molecule_or_comparison(self):
        # Anonymous molecule ': R[...]'.
        if self.peek().kind == ":":
            self.next()
            tag = self.parse_term()
            specs = self.parse_frame_if_present()
            return Molecule(self.fresh_var(), ":", tag, specs)

        start = self.index
        subject, was_predicate = self.parse_subject()
        token = self.peek()

        if token.kind in (":", "::"):
            kind = self.next().kind
            tag = self.parse_term()
            specs = self.parse_frame_if_present()
            return Molecule(subject, kind, tag, specs)
        if token.kind == "[":
            specs = self.parse_frame_if_present()
            return Molecule(subject, None, None, specs)
        if token.kind in _COMPARISON_OPS:
            op = self.next().kind
            right = self.parse_term()
            return FLComparison(op, subject, right)
        # Plain predicate (possibly zero-arity) or bare term used as a
        # 0-ary predicate.
        if was_predicate:
            if not isinstance(subject, Struct):
                raise AssertionError("predicate parse must yield Struct")
            return FLPredicate(subject.functor, subject.args)
        if isinstance(subject, Const) and isinstance(subject.value, str):
            return FLPredicate(subject.value, ())
        self.index = start
        self.error("expected a molecule, predicate or comparison")

    def parse_subject(self):
        """Parse a molecule subject; returns (term, looked_like_predicate)."""
        token = self.peek()
        if token.kind in ("symbol", "string") and self.peek(1).kind == "(":
            name = self.next().value
            self.next()  # '('
            args = [self.parse_term()]
            while self.peek().kind == ",":
                self.next()
                args.append(self.parse_term())
            self.expect(")")
            # f(X)[m -> v] or f(X) : C treat the compound as a term;
            # bare f(X) in body position is a predicate.
            if self.peek().kind in (":", "::", "["):
                return Struct(name, tuple(args)), False
            return Struct(name, tuple(args)), True
        return self.parse_term(), False

    def parse_frame_if_present(self):
        if self.peek().kind != "[":
            return ()
        self.next()
        specs = [self.parse_spec()]
        while self.peek().kind == ";":
            self.next()
            specs.append(self.parse_spec())
        self.expect("]")
        return tuple(specs)

    def parse_spec(self):
        method = self.parse_term()
        arrow_token = self.next()
        if arrow_token.kind not in ("->", "->>", "=>", "=>>", "*->"):
            raise FLogicParseError(
                "expected a frame arrow, found %r" % (arrow_token.value,),
                text=self.text,
                position=arrow_token.pos,
            )
        if self.peek().kind == "{":
            self.next()
            values = [self.parse_term()]
            while self.peek().kind == ",":
                self.next()
                values.append(self.parse_term())
            self.expect("}")
        else:
            values = [self.parse_term()]
        return MethodSpec(method, arrow_token.kind, tuple(values))

    def parse_term(self):
        token = self.next()
        if token.kind == "var":
            if token.value == "_":
                return self.fresh_var()
            return Var(token.value)
        if token.kind == "number":
            return Const(token.value)
        if token.kind == "string":
            return Const(token.value)
        if token.kind == "symbol":
            if self.peek().kind == "(":
                self.next()
                args = [self.parse_term()]
                while self.peek().kind == ",":
                    self.next()
                    args.append(self.parse_term())
                self.expect(")")
                return Struct(token.value, tuple(args))
            return Const(token.value)
        raise FLogicParseError(
            "expected a term, found %r" % (token.value,),
            text=self.text,
            position=token.pos,
        )

    # -- arithmetic ------------------------------------------------------

    def parse_expression(self):
        left = self.parse_expr_term()
        while self.peek().kind in ("+", "-"):
            op = self.next().kind
            left = Struct(op, (left, self.parse_expr_term()))
        return left

    def parse_expr_term(self):
        left = self.parse_expr_factor()
        while self.peek().kind in ("*", "/", "//", "mod"):
            op = self.next().kind
            left = Struct(op, (left, self.parse_expr_factor()))
        return left

    def parse_expr_factor(self):
        token = self.peek()
        if token.kind == "(":
            self.next()
            expr = self.parse_expression()
            self.expect(")")
            return expr
        if token.kind == "-":
            self.next()
            return Struct("-", (self.parse_expr_factor(),))
        return self.parse_term()


def parse_fl_program(text):
    """Parse F-logic source text into a list of :class:`FLRule`."""
    return _Parser(text).parse_program()


def parse_fl_rule(text):
    parser = _Parser(text)
    rule = parser.parse_rule()
    if parser.peek().kind != "eof":
        parser.error("trailing input after rule")
    return rule


def parse_fl_body(text):
    """Parse a bare conjunction (used for queries)."""
    parser = _Parser(text)
    body = parser.parse_body(stop_kinds=(".", "eof"))
    if parser.peek().kind == ".":
        parser.next()
    if parser.peek().kind != "eof":
        parser.error("trailing input after query")
    return body
