"""Abstract syntax for the F-logic fragment of Table 1.

The fragment covers exactly what the paper uses as its concrete GCM:

* is-a assertions ``X : C``  (GCM `instance`)
* subclass assertions ``C1 :: C2``  (GCM `subclass`)
* signature frames ``C[M => CM]`` / ``C[M =>> CM]``  (GCM `method`)
* data frames ``X[M -> Y]`` / ``X[M ->> {Y1, ...}]``  (GCM `methodinst`)
* inheritable default frames ``C[M *-> V]`` (nonmonotonic value
  inheritance, Section 4 "nonmonotonic inheritance ... using FL with
  well-founded semantics")
* plain predicates ``p(t1, ..., tn)`` (e.g. GCM `relationinst`)
* rules ``head_1, ..., head_k :- body.`` with conjunctive heads (used by
  the paper's assertion rules), negated subgoals including negated
  *conjunctions* ``not (A, B)``, comparisons, arithmetic, and the
  aggregate syntax of Example 3 ``N = count{VA [VB]; ...}``.

A *molecule* bundles a subject with an optional is-a/subclass tag and a
frame of method specifications; translation flattens each molecule into
one or more GCM atoms.
"""

from __future__ import annotations

from typing import Optional, Sequence, Tuple

from ..datalog.terms import Term, coerce_term

#: frame arrow kinds
ARROW_SCALAR = "->"
ARROW_MULTI = "->>"
ARROW_SIG_SCALAR = "=>"
ARROW_SIG_MULTI = "=>>"
ARROW_DEFAULT = "*->"

FRAME_ARROWS = (
    ARROW_DEFAULT,
    ARROW_MULTI,
    ARROW_SIG_MULTI,
    ARROW_SCALAR,
    ARROW_SIG_SCALAR,
)


class MethodSpec:
    """One ``method arrow value`` entry inside a frame.

    `values` always holds a tuple: multivalued arrows may list several
    values (``X[exp ->> {a, b}]`` produces two entries).
    """

    __slots__ = ("method", "arrow", "values")

    def __init__(self, method, arrow, values):
        if arrow not in FRAME_ARROWS:
            raise ValueError("unknown frame arrow %r" % arrow)
        self.method = coerce_term(method)
        self.arrow = arrow
        self.values = tuple(coerce_term(v) for v in values)

    @property
    def is_signature(self):
        return self.arrow in (ARROW_SIG_SCALAR, ARROW_SIG_MULTI)

    @property
    def is_default(self):
        return self.arrow == ARROW_DEFAULT

    def __eq__(self, other):
        return (
            isinstance(other, MethodSpec)
            and self.method == other.method
            and self.arrow == other.arrow
            and self.values == other.values
        )

    def __hash__(self):
        return hash(("MethodSpec", self.method, self.arrow, self.values))

    def __repr__(self):
        return "MethodSpec(%r, %r, %r)" % (self.method, self.arrow, self.values)

    def __str__(self):
        if len(self.values) == 1:
            value_text = str(self.values[0])
        else:
            value_text = "{%s}" % ", ".join(str(v) for v in self.values)
        return "%s %s %s" % (self.method, self.arrow, value_text)


class Molecule:
    """An F-logic molecule: subject, optional tag, optional frame.

    ``tag_kind`` is ``":"`` (is-a), ``"::"`` (subclass) or None; ``tag``
    is the class term when a tag is present.  The subject may be None
    for the paper's anonymous-tuple syntax ``: R[A -> X]`` (an unnamed
    instance of R) — the parser substitutes a fresh variable.
    """

    __slots__ = ("subject", "tag_kind", "tag", "specs")

    def __init__(self, subject, tag_kind=None, tag=None, specs=()):
        self.subject = coerce_term(subject)
        self.tag_kind = tag_kind
        self.tag = coerce_term(tag) if tag is not None else None
        self.specs = tuple(specs)
        if tag_kind not in (None, ":", "::"):
            raise ValueError("unknown molecule tag kind %r" % tag_kind)
        if (tag_kind is None) != (self.tag is None):
            raise ValueError("tag_kind and tag must be given together")

    def __eq__(self, other):
        return (
            isinstance(other, Molecule)
            and self.subject == other.subject
            and self.tag_kind == other.tag_kind
            and self.tag == other.tag
            and self.specs == other.specs
        )

    def __hash__(self):
        return hash(("Molecule", self.subject, self.tag_kind, self.tag, self.specs))

    def __repr__(self):
        return "Molecule(%r, %r, %r, %r)" % (
            self.subject,
            self.tag_kind,
            self.tag,
            self.specs,
        )

    def __str__(self):
        parts = [str(self.subject)]
        if self.tag_kind:
            parts.append(" %s %s" % (self.tag_kind, self.tag))
        if self.specs:
            parts.append("[%s]" % "; ".join(str(s) for s in self.specs))
        return "".join(parts)


class FLPredicate:
    """A plain predicate atom in F-logic syntax, e.g. ``r(X, Y)``."""

    __slots__ = ("name", "args")

    def __init__(self, name, args=()):
        self.name = name
        self.args = tuple(coerce_term(a) for a in args)

    def __eq__(self, other):
        return (
            isinstance(other, FLPredicate)
            and self.name == other.name
            and self.args == other.args
        )

    def __hash__(self):
        return hash(("FLPredicate", self.name, self.args))

    def __repr__(self):
        return "FLPredicate(%r, %r)" % (self.name, self.args)

    def __str__(self):
        if not self.args:
            return self.name
        return "%s(%s)" % (self.name, ", ".join(str(a) for a in self.args))


class FLComparison:
    """A comparison ``left op right`` in an F-logic body."""

    __slots__ = ("op", "left", "right")

    def __init__(self, op, left, right):
        self.op = op
        self.left = coerce_term(left)
        self.right = coerce_term(right)

    def __eq__(self, other):
        return (
            isinstance(other, FLComparison)
            and self.op == other.op
            and self.left == other.left
            and self.right == other.right
        )

    def __hash__(self):
        return hash(("FLComparison", self.op, self.left, self.right))

    def __repr__(self):
        return "FLComparison(%r, %r, %r)" % (self.op, self.left, self.right)

    def __str__(self):
        return "%s %s %s" % (self.left, self.op, self.right)


class FLAssignment:
    """``Var is Expr`` arithmetic in an F-logic body."""

    __slots__ = ("target", "expr")

    def __init__(self, target, expr):
        self.target = target
        self.expr = coerce_term(expr)

    def __eq__(self, other):
        return (
            isinstance(other, FLAssignment)
            and self.target == other.target
            and self.expr == other.expr
        )

    def __hash__(self):
        return hash(("FLAssignment", self.target, self.expr))

    def __repr__(self):
        return "FLAssignment(%r, %r)" % (self.target, self.expr)

    def __str__(self):
        return "%s is %s" % (self.target, self.expr)


class FLAggregate:
    """``Result = func{Value [G1, ...]; body}`` in an F-logic body.

    The inner body is a sequence of F-logic body items (molecules,
    predicates, comparisons) that will itself be translated.
    """

    __slots__ = ("func", "result", "value", "group_by", "body")

    def __init__(self, func, result, value, group_by, body):
        self.func = func
        self.result = result
        self.value = coerce_term(value)
        self.group_by = tuple(coerce_term(g) for g in group_by)
        self.body = tuple(body)

    def __eq__(self, other):
        return (
            isinstance(other, FLAggregate)
            and self.func == other.func
            and self.result == other.result
            and self.value == other.value
            and self.group_by == other.group_by
            and self.body == other.body
        )

    def __hash__(self):
        return hash(
            ("FLAggregate", self.func, self.result, self.value, self.group_by, self.body)
        )

    def __repr__(self):
        return "FLAggregate(%r, %r, %r, %r, %r)" % (
            self.func,
            self.result,
            self.value,
            self.group_by,
            self.body,
        )

    def __str__(self):
        group = ""
        if self.group_by:
            group = " [%s]" % ", ".join(str(g) for g in self.group_by)
        return "%s = %s{%s%s; %s}" % (
            self.result,
            self.func,
            self.value,
            group,
            ", ".join(str(b) for b in self.body),
        )


class FLNegation:
    """``not item`` or ``not (item, item, ...)`` in an F-logic body."""

    __slots__ = ("items",)

    def __init__(self, items):
        self.items = tuple(items)

    def __eq__(self, other):
        return isinstance(other, FLNegation) and self.items == other.items

    def __hash__(self):
        return hash(("FLNegation", self.items))

    def __repr__(self):
        return "FLNegation(%r)" % (self.items,)

    def __str__(self):
        inner = ", ".join(str(i) for i in self.items)
        if len(self.items) == 1:
            return "not %s" % inner
        return "not (%s)" % inner


class FLRule:
    """An F-logic rule with a conjunctive head.

    ``heads`` and ``body`` are sequences of F-logic items; a fact is a
    rule with an empty body.
    """

    __slots__ = ("heads", "body")

    def __init__(self, heads, body=()):
        self.heads = tuple(heads)
        self.body = tuple(body)

    @property
    def is_fact(self):
        return not self.body

    def __eq__(self, other):
        return (
            isinstance(other, FLRule)
            and self.heads == other.heads
            and self.body == other.body
        )

    def __hash__(self):
        return hash(("FLRule", self.heads, self.body))

    def __repr__(self):
        return "FLRule(%r, %r)" % (self.heads, self.body)

    def __str__(self):
        head_text = ", ".join(str(h) for h in self.heads)
        if self.is_fact:
            return "%s." % head_text
        return "%s :- %s." % (head_text, ", ".join(str(b) for b in self.body))
