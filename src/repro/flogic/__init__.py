"""F-logic front end: the paper's concrete GCM formalism.

The paper adopts F-logic (Kifer-Lausen-Wu) as the generic conceptual
model because it "natively contains all of the above-mentioned GCM
concepts" (Section 3).  This package implements the Table 1 fragment —
is-a, subclass, signature and data frames — plus rules with conjunctive
heads, negated conjunctions, aggregates, and nonmonotonic value
inheritance, all compiled onto :mod:`repro.datalog`.

Quick use::

    from repro.flogic import FLogicEngine

    engine = FLogicEngine()
    engine.tell('''
        neuron[has => compartment].
        axon :: compartment.  dendrite :: compartment.
        purkinje_cell :: neuron.
        p1 : purkinje_cell.
    ''')
    engine.ask("p1 : neuron")          # [{}] — nonempty: it holds
    engine.ask("C :: compartment")     # bindings for C
"""

from .ast import (
    ARROW_DEFAULT,
    ARROW_MULTI,
    ARROW_SCALAR,
    ARROW_SIG_MULTI,
    ARROW_SIG_SCALAR,
    FLAggregate,
    FLAssignment,
    FLComparison,
    FLNegation,
    FLPredicate,
    FLRule,
    MethodSpec,
    Molecule,
)
from .axioms import (
    all_axioms,
    core_axioms,
    signature_inheritance_axioms,
    value_inheritance_axioms,
)
from .engine import FLogicEngine
from .parser import parse_fl_body, parse_fl_program, parse_fl_rule
from .translate import (
    PRED_CLASS,
    PRED_DEFAULT_VAL,
    PRED_INSTANCE,
    PRED_METHOD,
    PRED_METHOD_INST,
    PRED_METHOD_VAL,
    PRED_SUBCLASS,
    Translator,
    molecule_atoms,
)

__all__ = [
    "ARROW_DEFAULT",
    "ARROW_MULTI",
    "ARROW_SCALAR",
    "ARROW_SIG_MULTI",
    "ARROW_SIG_SCALAR",
    "FLAggregate",
    "FLAssignment",
    "FLComparison",
    "FLNegation",
    "FLPredicate",
    "FLRule",
    "FLogicEngine",
    "MethodSpec",
    "Molecule",
    "PRED_CLASS",
    "PRED_DEFAULT_VAL",
    "PRED_INSTANCE",
    "PRED_METHOD",
    "PRED_METHOD_INST",
    "PRED_METHOD_VAL",
    "PRED_SUBCLASS",
    "Translator",
    "all_axioms",
    "core_axioms",
    "molecule_atoms",
    "parse_fl_body",
    "parse_fl_program",
    "parse_fl_rule",
    "signature_inheritance_axioms",
    "value_inheritance_axioms",
]
