"""Wiring the KIND scenario: ANATOM + SYNAPSE + NCMIR + SENSELAB.

:func:`build_scenario` assembles the full mediated system of the
paper's prototype; :func:`section5_query` is the running query:

    "What is the distribution of those calcium-binding proteins that
    are found in neurons that receive signals from parallel fibers in
    rat brains?"
"""

from __future__ import annotations

from ..core.mediator import Mediator
from ..core.planner import CorrelationQuery
from .anatom import build_anatom
from .ncmir import build_ncmir
from .senselab import build_senselab
from .synapse import build_synapse
from .views import (
    calcium_binding_protein_view,
    neurotransmission_paths_view,
    protein_distribution_view,
    spine_change_view,
)


class KindScenario:
    """The assembled mediated system plus handles to its parts."""

    def __init__(self, mediator, synapse, ncmir, senselab):
        self.mediator = mediator
        self.synapse = synapse
        self.ncmir = ncmir
        self.senselab = senselab

    def __repr__(self):
        return "KindScenario(%r)" % self.mediator


def build_scenario(seed=2001, scale=1, eager=True, via_xml=True,
                   include_anatom_source=False, dialogue_via_xml=False,
                   cache=None, parallel=None):
    """Build the full KIND mediation scenario.

    Args:
        seed: RNG seed for the synthetic source data.
        scale: data-size multiplier (replicates per cell).
        eager: load all source data into the mediator at registration;
            with ``eager=False`` only query plans fetch data.
        via_xml: round-trip registrations through the XML wire format.
        include_anatom_source: also register the ANATOM atlas source,
            whose registration refines the domain map with cerebellar
            interneuron concepts (the Figure 3 mechanism in situ).
        dialogue_via_xml: run source *queries* over the XML wire too.
        cache: optional medcache configuration, passed through to
            :class:`~repro.core.Mediator` (an AnswerCache, a
            CacheStore, or True).
        parallel: optional medpar configuration, passed through to
            :class:`~repro.core.Mediator` (a ParallelExecutor, True,
            or a worker count).
    """
    mediator = Mediator(build_anatom(), name="KIND",
                        dialogue_via_xml=dialogue_via_xml, cache=cache,
                        parallel=parallel)
    synapse = build_synapse(seed, scale)
    ncmir = build_ncmir(seed + 1, scale)
    senselab = build_senselab(seed + 2, scale)
    for wrapper in (synapse, ncmir, senselab):
        mediator.register(wrapper, eager=eager, via_xml=via_xml)
    if include_anatom_source:
        from .anatom_source import DM_REFINEMENT, build_anatom_source

        mediator.register(
            build_anatom_source(),
            dm_refinement=DM_REFINEMENT.strip(),
            eager=eager,
            via_xml=via_xml,
        )
    mediator.add_view(protein_distribution_view())
    mediator.add_view(calcium_binding_protein_view())
    mediator.add_view(spine_change_view())
    mediator.add_view(neurotransmission_paths_view())
    return KindScenario(mediator, synapse, ncmir, senselab)


def section5_query():
    """The paper's Section 5 query as a :class:`CorrelationQuery`."""
    return CorrelationQuery(
        seed_class="neurotransmission",
        seed_selections={
            "organism": "rat",
            "transmitting_compartment": "parallel fiber",
        },
        anchor_attrs=("receiving_neuron", "receiving_compartment"),
        target_class="protein_amount",
        target_anchor_attr="location",
        # "in rat brains": the organism selection is pushable at NCMIR;
        # the ion filter is not declared in its binding patterns and is
        # applied mediator-side (step 3 mixes both).
        target_filters={"ion_bound": "calcium", "organism": "rat"},
        group_attr="protein_name",
        value_attr="amount",
        role="has",
        func="sum",
        seed_source="SENSELAB",
    )
