"""The NCMIR source: subcellular protein localization (Example 1).

"The NCMIR laboratory studies the Purkinje Cells of the cerebellum ...
and localization of various proteins in neuron compartments.  The
schema used by this group consists of a number of measurements of the
dendrite branches (e.g., segment diameter) and the amount of different
proteins found in each of these subdivisions."

The synthetic generator is deterministic (seeded) and shaped after the
paper: per-compartment amounts of calcium-binding proteins in rat
Purkinje cells (Ryanodine Receptor, IP3 Receptor, Calbindin, ...),
plus non-calcium controls so the ``ion_bound = calcium`` filter of the
Section 5 query actually filters.  The ``location`` column uses the
lab vocabulary (``"Purkinje Cell dendrite"`` — the paper's own example
value) mapped onto ANATOM concepts by the wrapper's anchor attribute.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..sources import AnchorSpec, Column, QueryTemplate, RelStore, RoleLink, Wrapper

#: lab vocabulary -> ANATOM concept (the anchor mapping)
LOCATION_CONCEPTS = {
    "Purkinje Cell": "Purkinje_Cell",
    "Purkinje Cell dendrite": "Purkinje_Dendrite",
    "Purkinje Cell soma": "Purkinje_Soma",
    "Purkinje Cell spine": "Purkinje_Spine",
    "Granule Cell": "Granule_Cell",
}

#: protein -> (bound ion, per-location mean amounts)
PROTEIN_PROFILES = {
    "Ryanodine Receptor": (
        "calcium",
        {
            "Purkinje Cell dendrite": 8.0,
            "Purkinje Cell soma": 3.0,
            "Purkinje Cell spine": 5.0,
        },
    ),
    "IP3 Receptor": (
        "calcium",
        {
            "Purkinje Cell dendrite": 6.0,
            "Purkinje Cell spine": 7.5,
            "Purkinje Cell soma": 2.0,
        },
    ),
    "Calbindin": (
        "calcium",
        {
            "Purkinje Cell": 4.0,
            "Purkinje Cell dendrite": 3.5,
            "Purkinje Cell soma": 4.5,
        },
    ),
    "Parvalbumin": (
        "calcium",
        {
            "Purkinje Cell soma": 2.5,
            "Purkinje Cell dendrite": 1.5,
        },
    ),
    "GABA-A Receptor": (
        "chloride",
        {
            "Purkinje Cell dendrite": 2.0,
            "Purkinje Cell soma": 1.0,
        },
    ),
    "Kv1.1 Channel": (
        "potassium",
        {
            "Purkinje Cell soma": 1.8,
            "Granule Cell": 1.2,
        },
    ),
}

ORGANISMS = ("rat", "mouse")


def generate_rows(seed=2001, scale=1):
    """Deterministic protein-amount rows: `scale` replicates per
    (protein, location, organism) cell with seeded noise."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    row_id = 1
    for protein in sorted(PROTEIN_PROFILES):
        ion, profile = PROTEIN_PROFILES[protein]
        for location in sorted(profile):
            mean = profile[location]
            for organism in ORGANISMS:
                organism_factor = 1.0 if organism == "rat" else 0.8
                for _replicate in range(scale):
                    amount = round(
                        max(0.1, rng.gauss(mean * organism_factor, mean * 0.1)),
                        3,
                    )
                    rows.append(
                        {
                            "id": row_id,
                            "protein": protein,
                            "ion": ion,
                            "location": location,
                            "amount": amount,
                            "organism": organism,
                        }
                    )
                    row_id += 1
    return rows


def build_ncmir(seed=2001, scale=1):
    """The wrapped NCMIR source."""
    store = RelStore("NCMIR")
    table = store.create_table(
        "protein_amount",
        [
            Column("id", "int"),
            Column("protein", "str"),
            Column("ion", "str"),
            Column("location", "str"),
            Column("amount", "float"),
            Column("organism", "str"),
        ],
        key="id",
    )
    table.insert_many(generate_rows(seed, scale))

    wrapper = Wrapper("NCMIR", store)
    wrapper.export_class(
        "protein_amount",
        "protein_amount",
        "id",
        methods={
            "protein_name": "protein",
            "ion_bound": "ion",
            "location": "location",
            "amount": "amount",
            "organism": "organism",
        },
        anchor=AnchorSpec(column="location", mapping=LOCATION_CONCEPTS),
        role_links=[
            RoleLink("located_in", column="location", mapping=LOCATION_CONCEPTS)
        ],
        # the lab's query form accepts location/protein/organism bound;
        # amounts and ions come back as data (ion filtering is mediator-side)
        selectable={"location", "protein_name", "organism"},
    )
    wrapper.add_rule(
        # the lab's own semantic rule: calcium binders form a class
        "X : calcium_binding_protein_measurement :- "
        "X : protein_amount[ion_bound -> calcium]."
    )
    wrapper.add_template(
        "protein_amount",
        QueryTemplate(
            "by_min_amount",
            ["min_amount"],
            "all measurements with amount >= min_amount",
        ),
        lambda store, min_amount: store.select(
            "protein_amount", predicate=lambda row: row["amount"] >= min_amount
        ),
    )
    return wrapper
