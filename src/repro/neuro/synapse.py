"""The SYNAPSE source: dendritic-spine morphometry (Example 1).

"The first laboratory, SYNAPSE, studies dendritic spines of pyramidal
cells in the hippocampus.  The primary schema elements are thus the
anatomical entities that are reconstructed from 3-dimensional serial
sections.  For each entity (e.g., spines, dendrites), researchers make
a number of measurements, and study how these measurements change
across age and species under several experimental conditions."

The generator emits per-spine reconstructions (length, volume, PSD
area) for hippocampal pyramidal cells across species / age /
experimental condition, with the paper's own example ``location``
value ``"Pyramidal Cell dendrite"``.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..sources import AnchorSpec, Column, QueryTemplate, RelStore, RoleLink, Wrapper

LOCATION_CONCEPTS = {
    "Pyramidal Cell dendrite": "Pyramidal_Dendrite",
    "Pyramidal Cell dendrite spine": "Pyramidal_Spine",
    "Pyramidal Cell": "Pyramidal_Cell",
}

SPECIES = ("rat", "mouse")
CONDITIONS = ("control", "enriched", "deprived")
AGES = (14, 30, 90)

#: mean spine length (um) by condition — enrichment grows spines
_LENGTH_MEANS = {"control": 1.1, "enriched": 1.4, "deprived": 0.8}


def generate_rows(seed=2001, scale=1):
    """Deterministic spine reconstructions: `scale` spines per
    (species, condition, age) cell."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    row_id = 1
    for species in SPECIES:
        for condition in CONDITIONS:
            for age in AGES:
                for _replicate in range(2 * scale):
                    length = max(
                        0.2, rng.gauss(_LENGTH_MEANS[condition], 0.25)
                    )
                    volume = round(0.12 * length**2 + rng.gauss(0, 0.01), 4)
                    rows.append(
                        {
                            "id": row_id,
                            "label": "spine-%04d" % row_id,
                            "location": "Pyramidal Cell dendrite spine",
                            "length_um": round(length, 3),
                            "volume_um3": max(0.001, volume),
                            "psd_area": round(abs(rng.gauss(0.07, 0.02)), 4),
                            "age_days": age,
                            "species": species,
                            "condition": condition,
                        }
                    )
                    row_id += 1
                # one dendrite-segment record per cell of the sweep
                rows.append(
                    {
                        "id": row_id,
                        "label": "dend-%04d" % row_id,
                        "location": "Pyramidal Cell dendrite",
                        "length_um": round(abs(rng.gauss(40.0, 5.0)), 2),
                        "volume_um3": round(abs(rng.gauss(12.0, 2.0)), 3),
                        "psd_area": 0.0,
                        "age_days": age,
                        "species": species,
                        "condition": condition,
                    }
                )
                row_id += 1
    return rows


def build_synapse(seed=2001, scale=1):
    """The wrapped SYNAPSE source."""
    store = RelStore("SYNAPSE")
    table = store.create_table(
        "reconstruction",
        [
            Column("id", "int"),
            Column("label", "str"),
            Column("location", "str"),
            Column("length_um", "float"),
            Column("volume_um3", "float"),
            Column("psd_area", "float"),
            Column("age_days", "int"),
            Column("species", "str"),
            Column("condition", "str"),
        ],
        key="id",
    )
    table.insert_many(generate_rows(seed, scale))

    wrapper = Wrapper("SYNAPSE", store)
    wrapper.export_class(
        "reconstruction",
        "reconstruction",
        "id",
        methods={
            "label": "label",
            "location": "location",
            "length_um": "length_um",
            "volume_um3": "volume_um3",
            "psd_area": "psd_area",
            "age_days": "age_days",
            "species": "species",
            "condition": "condition",
        },
        anchor=AnchorSpec(column="location", mapping=LOCATION_CONCEPTS),
        role_links=[
            RoleLink("located_in", column="location", mapping=LOCATION_CONCEPTS)
        ],
        selectable={"location", "species", "condition", "age_days"},
    )
    wrapper.add_rule(
        # spines over 2 standard deviations long are flagged by the lab
        "X : large_spine :- X : reconstruction[length_um -> L], L > 1.6."
    )
    wrapper.add_template(
        "reconstruction",
        QueryTemplate(
            "morphometry_sweep",
            ["species", "condition"],
            "all spine reconstructions of one sweep cell",
        ),
        lambda store, species, condition: store.select(
            "reconstruction",
            where={"species": species, "condition": condition},
        ),
    )
    return wrapper
