"""Mediated analyses over the KIND scenario.

The introduction motivates SYNAPSE with studying "how these
measurements change across age and species under several experimental
conditions", and the multiple-worlds story with correlating spine
morphology (SYNAPSE) against calcium machinery (NCMIR).  These helpers
run those analyses as *mediated* F-logic aggregate queries — nothing
here touches a source directly.
"""

from __future__ import annotations

from typing import Dict, List, Tuple


def spine_length_by_condition(mediator):
    """Mean spine length per experimental condition (via the
    `spine_change` view and an FL aggregate)."""
    rows = mediator.ask(
        "A = avg{L [C]; X : spine_change[condition -> C; length_um -> L]}"
    )
    return {row["C"]: row["A"] for row in rows}


def spine_length_by_species_age(mediator):
    """Mean spine length per (species, age) cell of the SYNAPSE sweep."""
    rows = mediator.ask(
        "A = avg{L [S, G]; X : reconstruction[species -> S; age_days -> G; "
        "length_um -> L], X : 'Pyramidal_Spine'}"
    )
    return {(row["S"], row["G"]): row["A"] for row in rows}


def protein_amount_by_compartment(mediator, ion="calcium"):
    """Total measured amount of `ion`-binding proteins per anchored
    compartment concept — the NCMIR world summarized through the DM."""
    rows = mediator.ask(
        "T = sum{A [C]; X : protein_amount[ion_bound -> %s; amount -> A], "
        "anchor(X, C)}" % ion
    )
    return {row["C"]: row["T"] for row in rows}


def correlate_worlds(mediator):
    """Example 1's scientist workflow in one call.

    Returns, per spine-bearing concept, the SYNAPSE morphometry (spine
    count, mean length) and the NCMIR calcium-protein presence — the
    "loose federation of correlated data" joined purely through the
    domain map.
    """
    out: Dict[str, Dict] = {}
    morphometry = mediator.ask(
        "N = count{X [C]; X : reconstruction, anchor(X, C)}"
    )
    for row in morphometry:
        out.setdefault(row["C"], {})["reconstructions"] = row["N"]
    proteins = mediator.ask(
        "N = count{P [C]; X : protein_amount[ion_bound -> calcium; "
        "protein_name -> P], anchor(X, C)}"
    )
    for row in proteins:
        out.setdefault(row["C"], {})["calcium_binding_proteins"] = row["N"]
    return out
