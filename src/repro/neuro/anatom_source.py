"""The ANATOM source: atlas knowledge joining as a *source*.

Example 4 references ``'ANATOM'.nervous_system.has_a_star`` — in the
paper ANATOM is itself a registered source contributing anatomical
knowledge.  Here the wrapper exports a cell-census class (cell counts
per region, a common atlas product) and, crucially, ships a **domain
map refinement** with its registration: new cerebellar interneuron
concepts (basket/stellate/Golgi cells) and their containment edges —
the Figure 3 mechanism exercised inside the full scenario.
"""

from __future__ import annotations

from typing import Dict, List

from ..sources import AnchorSpec, Column, RelStore, Wrapper

#: the DL refinement shipped with ANATOM's registration
DM_REFINEMENT = """
Basket_Cell < Neuron
Stellate_Cell < Neuron
Golgi_Cell < Neuron
Basket_Cell < exists has.Basket_Axon
Basket_Axon < Axon
Cerebellar_Cortex < exists has.Basket_Cell
Cerebellar_Cortex < exists has.Stellate_Cell
Cerebellar_Cortex < exists has.Golgi_Cell
"""

#: region vocabulary -> concept (identity-shaped: atlas uses DM names)
REGION_CONCEPTS = {
    "cerebellar cortex": "Cerebellar_Cortex",
    "hippocampus CA1": "CA1",
    "neostriatum": "Neostriatum",
}

#: (region, cell type concept, count per mm^3) census rows
CENSUS = (
    ("cerebellar cortex", "Purkinje_Cell", 400),
    ("cerebellar cortex", "Granule_Cell", 4_000_000),
    ("cerebellar cortex", "Basket_Cell", 6_000),
    ("cerebellar cortex", "Stellate_Cell", 16_000),
    ("cerebellar cortex", "Golgi_Cell", 4_400),
    ("hippocampus CA1", "Pyramidal_Cell", 120_000),
    ("neostriatum", "Medium_Spiny_Neuron", 84_000),
)


def generate_rows():
    """The (deterministic) census table."""
    rows: List[Dict] = []
    for row_id, (region, cell_type, count) in enumerate(CENSUS, start=1):
        rows.append(
            {
                "id": row_id,
                "region": region,
                "cell_type": cell_type,
                "per_mm3": count,
            }
        )
    return rows


def build_anatom_source():
    """The wrapped ANATOM source (register with
    ``dm_refinement=DM_REFINEMENT``)."""
    store = RelStore("ANATOM")
    table = store.create_table(
        "cell_census",
        [
            Column("id", "int"),
            Column("region", "str"),
            Column("cell_type", "str"),
            Column("per_mm3", "int"),
        ],
        key="id",
    )
    table.insert_many(generate_rows())

    wrapper = Wrapper("ANATOM", store)
    wrapper.export_class(
        "cell_census",
        "cell_census",
        "id",
        methods={
            "region": "region",
            "cell_type": "cell_type",
            "per_mm3": "per_mm3",
        },
        anchor=AnchorSpec(column="region", mapping=REGION_CONCEPTS),
        selectable={"region", "cell_type"},
    )
    wrapper.add_rule(
        "X : abundant_cell_type :- X : cell_census[per_mm3 -> N], N > 10000."
    )
    return wrapper
