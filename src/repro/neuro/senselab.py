"""The SENSELAB source: neurotransmission pathways (Section 5).

The Section 5 query "is a typical query of a scientist who studies
neurotransmission (and produces the data of SENSELAB)".  The class
mirrors the paper's mediated schema::

    neurotransmission[organism => string;
                      transmitting_neuron => string;
                      transmitting_compartment => string;
                      receiving_neuron => string;
                      receiving_compartment => string;
                      neurotransmitter => string]

Receiving neuron/compartment columns hold ANATOM concept names (the
source uses the shared controlled vocabulary — its anchor mapping is
the identity), while transmitting compartments use lab terms like
``"parallel fiber"``.  The canonical cerebellar and hippocampal
pathways are generated deterministically.
"""

from __future__ import annotations

import random
from typing import Dict, List

from ..sources import AnchorSpec, Column, RelStore, RoleLink, Wrapper

#: canonical pathways: (transmitting neuron, transmitting compartment,
#: receiving neuron concept, receiving compartment concept, transmitter)
PATHWAYS = (
    ("Granule Cell", "parallel fiber", "Purkinje_Cell", "Purkinje_Dendrite", "glutamate"),
    ("Basket Cell", "basket cell axon", "Purkinje_Cell", "Purkinje_Soma", "GABA"),
    ("CA3 Pyramidal Cell", "Schaffer collateral", "Pyramidal_Cell", "Pyramidal_Dendrite", "glutamate"),
    ("Climbing Fiber Neuron", "climbing fiber", "Purkinje_Cell", "Purkinje_Dendrite", "aspartate"),
)

ORGANISMS = ("rat", "mouse", "human")


def generate_rows(seed=2001, scale=1):
    """One record per (pathway, organism), `scale` replicates."""
    rng = random.Random(seed)
    rows: List[Dict] = []
    row_id = 1
    for organism in ORGANISMS:
        for pathway in PATHWAYS:
            t_neuron, t_comp, r_neuron, r_comp, transmitter = pathway
            for _replicate in range(scale):
                rows.append(
                    {
                        "id": row_id,
                        "organism": organism,
                        "t_neuron": t_neuron,
                        "t_compartment": t_comp,
                        "r_neuron": r_neuron,
                        "r_compartment": r_comp,
                        "transmitter": transmitter,
                        # a synthetic observable so numeric queries exist
                        "epsp_mv": round(abs(rng.gauss(1.2, 0.3)), 3),
                    }
                )
                row_id += 1
    return rows


def build_senselab(seed=2001, scale=1):
    """The wrapped SENSELAB source."""
    store = RelStore("SENSELAB")
    table = store.create_table(
        "neurotransmission",
        [
            Column("id", "int"),
            Column("organism", "str"),
            Column("t_neuron", "str"),
            Column("t_compartment", "str"),
            Column("r_neuron", "str"),
            Column("r_compartment", "str"),
            Column("transmitter", "str"),
            Column("epsp_mv", "float"),
        ],
        key="id",
    )
    table.insert_many(generate_rows(seed, scale))

    wrapper = Wrapper("SENSELAB", store)
    wrapper.export_class(
        "neurotransmission",
        "neurotransmission",
        "id",
        methods={
            "organism": "organism",
            "transmitting_neuron": "t_neuron",
            "transmitting_compartment": "t_compartment",
            "receiving_neuron": "r_neuron",
            "receiving_compartment": "r_compartment",
            "neurotransmitter": "transmitter",
            "epsp_mv": "epsp_mv",
        },
        anchor=AnchorSpec(column="r_compartment"),  # identity: shared vocabulary
        role_links=[
            RoleLink("received_at", column="r_compartment"),
            RoleLink("received_by", column="r_neuron"),
        ],
        selectable={
            "organism",
            "transmitting_compartment",
            "neurotransmitter",
            "receiving_neuron",
        },
    )
    wrapper.add_rule(
        "X : excitatory_transmission :- "
        "X : neurotransmission[neurotransmitter -> glutamate]."
    )
    return wrapper
