"""The KIND mediated views (Example 4 / Section 5).

* ``protein_distribution`` — Example 4's mediated class: per-protein
  amount distributions over the ANATOM containment hierarchy, computed
  by the recursive `aggregate`.
* ``calcium_binding_protein`` — the Section 5 filter as a loose
  federation view over NCMIR's exported class.
* ``spine_change`` — a SYNAPSE-side view pairing morphometry with
  experimental condition (the intro's "how measurements change ...
  under several experimental conditions").
"""

from __future__ import annotations

from ..core.views import DistributionView, IntegratedView


def protein_distribution_view():
    """Example 4's ``protein_distribution`` (grouped by protein name,
    summing NCMIR amounts below a distribution root via has_a_star)."""
    return DistributionView(
        "protein_distribution",
        source_class="protein_amount",
        group_attr="protein_name",
        value_attr="amount",
        role="has",
        func="sum",
        description=(
            "D : protein_distribution[protein_name -> Y; animal -> Z; "
            "distribution_root -> P; distribution -> D] (Example 4)"
        ),
    )


def calcium_binding_protein_view():
    """Proteins that bind calcium (the Section 5 ion filter)."""
    return IntegratedView(
        "calcium_binding_protein",
        fl_rules=(
            "X : calcium_binding_protein :- "
            "X : protein_amount[ion_bound -> calcium].\n"
            "X[name -> N] :- X : calcium_binding_protein, "
            "X : protein_amount[protein_name -> N].\n"
        ),
        description="NCMIR measurements of calcium-binding proteins",
        depends_on=("protein_amount",),
    )


def spine_change_view():
    """Spine morphometry paired with experimental condition."""
    return IntegratedView(
        "spine_change",
        fl_rules=(
            "X : spine_change[condition -> C; length_um -> L] :- "
            "X : reconstruction[condition -> C; length_um -> L], "
            "X : 'Pyramidal_Spine'.\n"
        ),
        description="per-condition spine morphometry (SYNAPSE)",
        depends_on=("reconstruction",),
    )


def neurotransmission_paths_view():
    """The mediated neurotransmission class of Section 5: a projection
    of SENSELAB's export (loose federation — the mediated class simply
    *is* the anchored source class)."""
    return IntegratedView(
        "neurotransmission_path",
        fl_rules=(
            "X : neurotransmission_path[from -> T; to -> R; via -> N] :- "
            "X : neurotransmission[transmitting_neuron -> T; "
            "receiving_neuron -> R; neurotransmitter -> N].\n"
        ),
        description="mediated neurotransmission pathways (SENSELAB)",
        depends_on=("neurotransmission",),
    )
