"""The KIND Neuroscience scenario (Example 1, Example 4, Section 5).

The paper's prototype mediates "real data coming from largely disjoint
Neuroscience worlds".  This package rebuilds that setting with
deterministic synthetic sources:

* :mod:`repro.neuro.anatom` — the ANATOM domain map (Figures 1 and 3 +
  the brain-region containment hierarchy),
* :mod:`repro.neuro.synapse` — hippocampal spine morphometry,
* :mod:`repro.neuro.ncmir` — cerebellar protein localization,
* :mod:`repro.neuro.senselab` — neurotransmission pathways,
* :mod:`repro.neuro.views` — ``protein_distribution`` and friends,
* :mod:`repro.neuro.scenario` — the assembled mediator + the paper's
  Section 5 query.
"""

from .anatom import (
    FIGURE1_AXIOMS,
    FIGURE3_AXIOMS,
    FIGURE3_REGISTRATION,
    REGION_AXIOMS,
    build_anatom,
    build_figure1,
    build_figure3_base,
)
from .analysis import (
    correlate_worlds,
    protein_amount_by_compartment,
    spine_length_by_condition,
    spine_length_by_species_age,
)
from .anatom_source import build_anatom_source
from .ncmir import build_ncmir
from .senselab import build_senselab
from .scenario import KindScenario, build_scenario, section5_query
from .synapse import build_synapse
from .views import (
    calcium_binding_protein_view,
    neurotransmission_paths_view,
    protein_distribution_view,
    spine_change_view,
)

__all__ = [
    "FIGURE1_AXIOMS",
    "FIGURE3_AXIOMS",
    "FIGURE3_REGISTRATION",
    "KindScenario",
    "REGION_AXIOMS",
    "build_anatom",
    "build_anatom_source",
    "build_figure1",
    "build_figure3_base",
    "build_ncmir",
    "build_scenario",
    "build_senselab",
    "build_synapse",
    "calcium_binding_protein_view",
    "correlate_worlds",
    "neurotransmission_paths_view",
    "protein_amount_by_compartment",
    "protein_distribution_view",
    "section5_query",
    "spine_change_view",
    "spine_length_by_condition",
    "spine_length_by_species_age",
]
