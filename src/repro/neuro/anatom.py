"""ANATOM: the Neuroscience domain map of the KIND mediator.

Three layers, all from the paper:

* the **Figure 1** map built from Example 1's DL statements (SYNAPSE +
  NCMIR knowledge: neurons, compartments, spines, ion-binding
  proteins, neurotransmission),
* the **Figure 3** fragment (medium spiny neurons, their projections
  and expressed neurotransmitters — the registration example), and
* the **brain-region containment hierarchy** the Section 5 query plan
  navigates (Example 4 computes a protein distribution below
  ``Cerebellum``; the paper's ANATOM source provides the
  ``nervous_system`` containment tree).

Region and cell-type names follow the paper; extra specializations
(``Purkinje_Dendrite``, ``Parallel_Fiber``, ...) are the anchor points
the three sources hang their data from.
"""

from __future__ import annotations

from ..domainmap.model import DomainMap

#: Example 1's domain knowledge as DL statements (Figure 1, verbatim).
FIGURE1_AXIOMS = """
Neuron < exists has.Compartment
Axon < Compartment
Dendrite < Compartment
Soma < Compartment
Spiny_Neuron = Neuron & exists has.Spine
Purkinje_Cell < Spiny_Neuron
Pyramidal_Cell < Spiny_Neuron
Dendrite < exists has.Branch
Shaft < Branch & exists has.Spine
Spine < exists contains.Ion_Binding_Protein
Spine < Ion_Regulating_Component
Ion_Activity < exists subprocess_of.Neurotransmission
Ion_Binding_Protein < Protein & exists controls.Ion_Activity
Ion_Regulating_Component = exists regulates.Ion_Activity
"""

#: Figure 3's base map (before the MyNeuron/MyDendrite registration).
FIGURE3_AXIOMS = """
Medium_Spiny_Neuron < Spiny_Neuron
Medium_Spiny_Neuron < exists proj.(Substantia_nigra_pr | Substantia_nigra_pc | Globus_Pallidus_External | Globus_Pallidus_Internal)
Medium_Spiny_Neuron < exists exp.(GABA | Substance_P | Dopamine_R)
GABA < Neurotransmitter
Substance_P < Neurotransmitter
Neostriatum < exists has.Medium_Spiny_Neuron
"""

#: The Figure 3 registration payload (what the new source sends).
FIGURE3_REGISTRATION = """
MyDendrite = Dendrite & exists exp.Dopamine_R
MyNeuron < Medium_Spiny_Neuron & exists proj.Globus_Pallidus_External & all has.MyDendrite
"""

#: Brain-region containment (the ANATOM nervous_system hierarchy) and
#: the cell-level anchor concepts of the KIND scenario.
REGION_AXIOMS = """
Nervous_System < exists has.Brain
Brain < exists has.Cerebellum
Brain < exists has.Hippocampus
Brain < exists has.Neostriatum
Cerebellum < exists has.Cerebellar_Cortex
Cerebellar_Cortex < exists has.Purkinje_Cell
Cerebellar_Cortex < exists has.Granule_Cell
Hippocampus < exists has.CA1
CA1 < exists has.Pyramidal_Cell
Spine < Compartment
Branch < Compartment
Granule_Cell < Neuron
Granule_Cell < exists has.Parallel_Fiber
Parallel_Fiber < Axon
Purkinje_Cell < exists has.Purkinje_Dendrite
Purkinje_Cell < exists has.Purkinje_Soma
Purkinje_Dendrite < Dendrite
Purkinje_Dendrite < exists has.Purkinje_Spine
Purkinje_Soma < Soma
Purkinje_Spine < Spine
Pyramidal_Cell < exists has.Pyramidal_Dendrite
Pyramidal_Dendrite < Dendrite
Pyramidal_Dendrite < exists has.Pyramidal_Spine
Pyramidal_Spine < Spine
"""


def build_figure1():
    """Just the Figure 1 domain map (Example 1's eleven statements)."""
    dm = DomainMap("figure1")
    dm.add_axioms(FIGURE1_AXIOMS)
    return dm


def build_figure3_base():
    """The Figure 3 map before the MyNeuron/MyDendrite registration."""
    dm = DomainMap("figure3")
    dm.add_axioms(FIGURE1_AXIOMS)
    dm.add_axioms(FIGURE3_AXIOMS)
    return dm


def build_anatom():
    """The full ANATOM domain map used by the KIND scenario."""
    dm = DomainMap("anatom")
    dm.add_axioms(FIGURE1_AXIOMS)
    dm.add_axioms(FIGURE3_AXIOMS)
    dm.add_axioms(REGION_AXIOMS)
    return dm
