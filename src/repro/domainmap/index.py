"""The semantic index: anchoring source data in the domain map.

"As part of registering a source's CM with the mediator, the wrapper
creates a 'semantic index' of its data into the domain map" (abstract).
The index records, per DM concept, which source classes hang off it
(schema-level anchors) and optionally which individual objects were
tagged with it (object-level anchors).  The mediator consults it to
*select relevant sources* during query processing (step 2 of the
Section 5 plan).
"""

from __future__ import annotations

from typing import Dict, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import UnknownConceptError
from .graphops import ancestors, descendants


class Anchor:
    """A schema-level anchor: source class -> DM concept.

    `context` optionally names the attribute/method whose values carry
    the anchor (the paper's anchor/context attributes).
    """

    __slots__ = ("source", "class_name", "concept", "context")

    def __init__(self, source, class_name, concept, context=None):
        self.source = source
        self.class_name = class_name
        self.concept = concept
        self.context = context

    def as_tuple(self):
        return (self.source, self.class_name, self.concept, self.context)

    def __eq__(self, other):
        return isinstance(other, Anchor) and self.as_tuple() == other.as_tuple()

    def __hash__(self):
        return hash(("Anchor",) + self.as_tuple())

    def __repr__(self):
        return "Anchor(%r, %r -> %r)" % (self.source, self.class_name, self.concept)


class SemanticIndex:
    """Concept-to-source index over a fixed domain map."""

    def __init__(self, dm):
        self.dm = dm
        self._anchors: Set[Anchor] = set()
        self._by_concept: Dict[str, Set[Anchor]] = {}
        self._object_anchors: Dict[str, Set[Tuple[str, object]]] = {}

    # -- registration ------------------------------------------------------

    def add_anchor(self, source, class_name, concept, context=None):
        """Anchor a source class at a DM concept."""
        self.dm.require_concept(concept)
        anchor = Anchor(source, class_name, concept, context)
        self._anchors.add(anchor)
        self._by_concept.setdefault(concept, set()).add(anchor)
        return anchor

    def add_object_anchor(self, source, obj, concept):
        """Anchor one object ("tagging" it with a concept)."""
        self.dm.require_concept(concept)
        self._object_anchors.setdefault(concept, set()).add((source, obj))
        return self

    def remove_source(self, source):
        """Drop every anchor contributed by a source (deregistration)."""
        self._anchors = {a for a in self._anchors if a.source != source}
        self._by_concept = {}
        for anchor in self._anchors:
            self._by_concept.setdefault(anchor.concept, set()).add(anchor)
        for concept, objects in list(self._object_anchors.items()):
            kept = {(s, o) for s, o in objects if s != source}
            if kept:
                self._object_anchors[concept] = kept
            else:
                del self._object_anchors[concept]
        return self

    # -- lookup ---------------------------------------------------------------

    @property
    def anchors(self):
        return sorted(self._anchors, key=lambda a: (a.source, a.class_name, a.concept))

    def concepts_of_source(self, source):
        """All concepts a source anchors data at."""
        return sorted({a.concept for a in self._anchors if a.source == source})

    def concepts_of_class(self, source, class_name):
        """The concepts one exported class of a source anchors data at
        — the invalidation coordinates of that class's cached
        answers."""
        return sorted(
            {
                a.concept
                for a in self._anchors
                if a.source == source and a.class_name == class_name
            }
        )

    def anchors_at(self, concept, include_descendants=True):
        """Anchors at a concept (by default including its isa-descendants:
        data anchored at `Purkinje_Cell` *is* `Neuron` data)."""
        self.dm.require_concept(concept)
        targets = {concept}
        if include_descendants:
            targets |= descendants(self.dm, concept)
        found: Set[Anchor] = set()
        for target in targets:
            found |= self._by_concept.get(target, set())
        return sorted(found, key=lambda a: (a.source, a.class_name, a.concept))

    def sources_for(self, concept, include_descendants=True):
        """Which sources can supply data for a concept (source selection,
        step 2 of the Section 5 query plan)."""
        return sorted(
            {a.source for a in self.anchors_at(concept, include_descendants)}
        )

    def sources_for_all(self, concepts, include_descendants=True):
        """Sources anchored at *every* one of the given concepts."""
        concepts = list(concepts)
        if not concepts:
            return []
        common: Optional[Set[str]] = None
        for concept in concepts:
            sources = set(self.sources_for(concept, include_descendants))
            common = sources if common is None else (common & sources)
        return sorted(common or set())

    def sources_for_any(self, concepts, include_descendants=True):
        """Sources anchored at *at least one* of the given concepts."""
        found: Set[str] = set()
        for concept in concepts:
            found |= set(self.sources_for(concept, include_descendants))
        return sorted(found)

    def objects_at(self, concept, include_descendants=True):
        """Object-level anchors at a concept."""
        targets = {concept}
        if include_descendants:
            targets |= descendants(self.dm, concept)
        found: Set[Tuple[str, object]] = set()
        for target in targets:
            found |= self._object_anchors.get(target, set())
        return sorted(found, key=lambda pair: (pair[0], str(pair[1])))

    def coverage(self):
        """Concept -> sorted sources map (for reports / Figure 2 bench)."""
        return {
            concept: sorted({a.source for a in anchors})
            for concept, anchors in sorted(self._by_concept.items())
        }

    def __len__(self):
        return len(self._anchors)
