"""Executing domain maps: compiling DL edges into mediator rules.

Section 4 gives two executable readings of an edge ``C -r-> D``:

* as an **integrity constraint** (the mediated object base must be
  data-complete w.r.t. the edge): a missing r-successor yields an `ic`
  witness ``w_edge(C, r, D, X)``;
* as an **assertion** (the successor exists in the real world even if
  not in the object base): a *placeholder object* ``f(C, r, D, x)`` is
  created whenever no witness is stored.

Object-level data sits in generic triple relations so the same rules
serve every role:

* ``instance(X, C)`` — anchored objects (shared with the GCM core),
* ``role_fact(R, X, Y)`` — role links stated by sources,
* ``role_asserted(R, X, Y)`` — placeholder links created by assertions,
* ``role_inst(R, X, Y)`` — the union view queries should read.

The assertion rules guard on ``role_fact`` (source-stated links only),
not on ``role_inst``; this is the stratified reading of the paper's
rule whose literal form is a self-defeating odd loop (see the F-logic
tests).  The guard still consults derived `instance` facts, which makes
the program formally non-stratifiable at the predicate level; the
engine's well-founded fallback computes the intended *total* model
because placeholders never occur as targets of ``role_fact``.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import DomainMapError
from ..datalog.ast import Atom, Comparison, Literal, Program, Rule
from ..datalog.parser import parse_program
from ..datalog.terms import Const, Struct, Var
from ..gcm.constraints import IC_CLASS
from .graphops import closure_rules
from .model import DomainMap

#: functor of placeholder objects f_{C,r,D}(x)
PLACEHOLDER_FUNCTOR = "f"

_BASE_RULES = """
role_inst(R, X, Y) :- role_fact(R, X, Y).
role_inst(R, X, Y) :- role_asserted(R, X, Y).
"""


def base_rules():
    """The role_fact/role_asserted -> role_inst union view."""
    return list(parse_program(_BASE_RULES))


def dm_facts(dm):
    """Concept/isa/role-edge facts, plus GCM subclass facts so anchored
    objects propagate up the concept hierarchy."""
    rules: List[Rule] = []
    for concept in sorted(dm.concepts):
        rules.append(Rule(Atom("concept", (Const(concept),))))
        rules.append(Rule(Atom("class", (Const(concept),))))
    for sub, sup in sorted(dm.isa_pairs()):
        rules.append(Rule(Atom("isa", (Const(sub), Const(sup)))))
        rules.append(Rule(Atom("subclass", (Const(sub), Const(sup)))))
    for src, role, dst in sorted(dm.role_triples()):
        rules.append(
            Rule(Atom("role_edge", (Const(role), Const(src), Const(dst))))
        )
    for src, role, dst in sorted(dm.all_triples()):
        rules.append(
            Rule(Atom("all_edge", (Const(role), Const(src), Const(dst))))
        )
    return rules


def _guard_name(source, role, target):
    digest = hashlib.sha1(
        ("%s|%s|%s" % (source, role, target)).encode("utf-8")
    ).hexdigest()[:10]
    return "_dmfill_%s" % digest


def edge_constraint_rules(source, role, target):
    """The (ex) edge as an integrity constraint (Section 4)::

        w_edge(C,r,D,X) : ic :- X : C, not (Y : D, r(X,Y)).
    """
    x, y = Var("X"), Var("Y")
    guard = _guard_name(source, role, target)
    witness_rule = Rule(
        Atom(guard, (x,)),
        (
            Literal(Atom("role_inst", (Const(role), x, y))),
            Literal(Atom("instance", (y, Const(target)))),
        ),
    )
    denial = Rule(
        Atom(
            "instance",
            (
                Struct("w_edge", (Const(source), Const(role), Const(target), x)),
                Const(IC_CLASS),
            ),
        ),
        (
            Literal(Atom("instance", (x, Const(source)))),
            Literal(Atom(guard, (x,)), positive=False),
        ),
    )
    return [witness_rule, denial]


def all_edge_constraint_rules(source, role, target):
    """The (all) edge as an integrity constraint: every r-successor of a
    C instance must be in D."""
    x, y = Var("X"), Var("Y")
    denial = Rule(
        Atom(
            "instance",
            (
                Struct(
                    "w_all", (Const(source), Const(role), Const(target), x, y)
                ),
                Const(IC_CLASS),
            ),
        ),
        (
            Literal(Atom("instance", (x, Const(source)))),
            Literal(Atom("role_inst", (Const(role), x, y))),
            Literal(Atom("instance", (y, Const(target)), ), positive=False),
        ),
    )
    return [denial]


def edge_assertion_rules(source, role, target):
    """The (ex) edge as an assertion creating placeholder objects::

        Y : D, r(X,Y) :- X : C, not (Z : D, r(X,Z)), Y = f(C,r,D,X).

    Guarded on source-stated ``role_fact`` links (see module docstring).
    """
    x, y = Var("X"), Var("Y")
    guard = _guard_name(source, role, target)
    placeholder = Struct(
        PLACEHOLDER_FUNCTOR, (Const(source), Const(role), Const(target), x)
    )
    witness_rule = Rule(
        Atom(guard, (x,)),
        (
            Literal(Atom("role_fact", (Const(role), x, y))),
            Literal(Atom("instance", (y, Const(target)))),
        ),
    )
    make_instance = Rule(
        Atom("instance", (placeholder, Const(target))),
        (
            Literal(Atom("instance", (x, Const(source)))),
            Literal(Atom(guard, (x,)), positive=False),
        ),
    )
    make_link = Rule(
        Atom("role_asserted", (Const(role), x, placeholder)),
        (
            Literal(Atom("instance", (x, Const(source)))),
            Literal(Atom(guard, (x,)), positive=False),
        ),
    )
    return [witness_rule, make_instance, make_link]


def _select_edges(dm, spec, kind):
    if spec is None:
        return []
    triples = dm.role_triples() if kind == "ex" else dm.all_triples()
    if spec == "all":
        return sorted(triples)
    chosen = []
    for triple in spec:
        src, role, dst = triple
        if (src, role, dst) not in triples:
            raise DomainMapError(
                "edge (%s, %s, %s) is not a %s-edge of the domain map"
                % (src, role, dst, kind)
            )
        chosen.append((src, role, dst))
    return chosen


def compile_domain_map(
    dm,
    constraints_for=None,
    assertions_for=None,
    universal_constraints_for=None,
    include_closures=True,
):
    """Compile a domain map to a Datalog rule list for the mediator.

    Args:
        dm: the :class:`DomainMap`.
        constraints_for: ``"all"`` or an iterable of (C, role, D)
            (ex)-edges to execute as integrity constraints.
        assertions_for: ``"all"`` or an iterable of (ex)-edges to
            execute as placeholder-creating assertions.
        universal_constraints_for: ``"all"`` or (all)-edges to check.
        include_closures: add the Section 4 tc/dc/has_a_star rules.
    """
    rules: List[Rule] = []
    rules.extend(dm_facts(dm))
    rules.extend(base_rules())
    if include_closures:
        rules.extend(closure_rules())
    for text in dm.rules_text:
        rules.extend(parse_program(text))
    for src, role, dst in _select_edges(dm, constraints_for, "ex"):
        rules.extend(edge_constraint_rules(src, role, dst))
    for src, role, dst in _select_edges(dm, assertions_for, "ex"):
        rules.extend(edge_assertion_rules(src, role, dst))
    for src, role, dst in _select_edges(dm, universal_constraints_for, "all"):
        rules.extend(all_edge_constraint_rules(src, role, dst))
    return rules
