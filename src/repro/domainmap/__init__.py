"""Domain maps: the paper's "semantic coordinate system".

Domain maps (Section 4) formalize the expert knowledge needed to
mediate across *multiple worlds*: semantic nets whose nodes are
concepts and whose labeled edges carry description-logic semantics
(Definition 1).  Sources anchor their data at concepts (the semantic
index), edges can be executed as integrity constraints or as
placeholder-creating assertions, and graph operations — deductive
closures, `has_a_star`, `lub` — drive integrated-view definition and
query processing.

Quick use::

    from repro.domainmap import DomainMap, has_a_star, lub

    dm = DomainMap("anatom")
    dm.add_axioms('''
        Dendrite < Compartment
        Dendrite < exists has.Branch
        Shaft < Branch & exists has.Spine
    ''')
    has_a_star(dm, "has")
    lub(dm, ["Spine", "Branch"])
"""

from .dl import (
    Axiom,
    ConceptExpr,
    Conj,
    Disj,
    Eqv,
    Exists,
    Forall,
    Named,
    Sub,
    axiom_to_fo,
    parse_axiom,
    parse_axioms,
    parse_concept,
)
from .execute import (
    PLACEHOLDER_FUNCTOR,
    all_edge_constraint_rules,
    base_rules,
    compile_domain_map,
    dm_facts,
    edge_assertion_rules,
    edge_constraint_rules,
)
from .graphops import (
    CLOSURE_RULES,
    navigation_graph,
    ancestors,
    closure_program,
    closure_rules,
    deductive_closure,
    descendants,
    downward_closure,
    has_a_star,
    isa_closure,
    isa_graph,
    least_upper_bounds,
    lub,
    part_graph,
    part_tree,
    region_of_correspondence,
    role_containers,
    role_graph,
    transitive_closure,
    upper_bounds,
)
from .index import Anchor, SemanticIndex
from .model import ALL, AND, EQV, EX, ISA, OR, DomainMap, Edge
from .reasoning import Reasoner, check_fragment, subsumes
from .registry import RegistrationResult, definite_projections, register_concepts
from .render import edge_census, to_dot, to_text

__all__ = [
    "ALL",
    "AND",
    "Anchor",
    "Axiom",
    "CLOSURE_RULES",
    "ConceptExpr",
    "Conj",
    "Disj",
    "DomainMap",
    "EQV",
    "EX",
    "Edge",
    "Eqv",
    "Exists",
    "Forall",
    "ISA",
    "Named",
    "OR",
    "PLACEHOLDER_FUNCTOR",
    "Reasoner",
    "RegistrationResult",
    "SemanticIndex",
    "Sub",
    "all_edge_constraint_rules",
    "ancestors",
    "axiom_to_fo",
    "base_rules",
    "check_fragment",
    "closure_program",
    "closure_rules",
    "compile_domain_map",
    "deductive_closure",
    "definite_projections",
    "descendants",
    "dm_facts",
    "downward_closure",
    "edge_assertion_rules",
    "edge_census",
    "edge_constraint_rules",
    "has_a_star",
    "isa_closure",
    "isa_graph",
    "least_upper_bounds",
    "lub",
    "navigation_graph",
    "parse_axiom",
    "parse_axioms",
    "parse_concept",
    "part_graph",
    "part_tree",
    "region_of_correspondence",
    "register_concepts",
    "role_containers",
    "role_graph",
    "subsumes",
    "to_dot",
    "to_text",
    "transitive_closure",
    "upper_bounds",
]
