"""Graph operations on domain maps (Section 4 / Section 5).

The operations the paper "executes" during view definition and query
processing:

* :func:`isa_closure` — (reflexive-)transitive closure of isa,
* :func:`deductive_closure` — the paper's ``dc(R)``: role links
  propagated along the isa chains (down from the source, up to the
  target),
* :func:`has_a_star` — all inferable *direct* role links (``dc`` of a
  whole/part role w.r.t. isa),
* :func:`lub` / :func:`least_upper_bounds` — the least upper bound used
  in step 4 of the Section 5 query plan to pick a distribution root,
* :func:`downward_closure` / :func:`part_tree` — recursive traversal of
  the direct links below a root (what the mediator's `aggregate`
  function walks),
* :func:`region_of_correspondence` — the DM segment between the lub and
  a set of anchor concepts (the "region of correspondence" between
  sources).

Two backends are provided: the default in-memory graph algorithms, and
:func:`closure_rules`, the paper's own Datalog program for ``tc``/``dc``
— the test-suite proves them equivalent.

Fidelity notes: the paper's ``dc`` rules are written with ``tc(isa)``;
read literally (irreflexive tc) they would exclude every base ``R``
link from ``has_a_star``, contradicting the intended use ("derives all
inferable direct has_a links").  We therefore use the reflexive closure
``rtc`` and additionally allow propagation at both ends simultaneously
(``rtc . R . rtc``), a superset of the literal two-rule version that
contains exactly the links justified by the DL semantics.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from .. import obs
from ..errors import NoUpperBoundError
from ..datalog.ast import Program, Rule
from ..datalog.parser import parse_program


def transitive_closure(pairs):
    """Transitive (not reflexive) closure of a set of pairs.

    A node on a cycle reaches itself, so (n, n) pairs appear for cyclic
    inputs even though the closure is not reflexive in general.
    """
    graph = nx.DiGraph()
    graph.add_edges_from(pairs)
    closure: Set[Tuple[str, str]] = set()
    for node in graph.nodes:
        reachable = nx.descendants(graph, node)
        for descendant in reachable:
            closure.add((node, descendant))
        # nx.descendants never includes the start node; restore n -> n
        # when a successor leads back around a cycle.
        if any(
            successor == node or node in nx.descendants(graph, successor)
            for successor in graph.successors(node)
        ):
            closure.add((node, node))
    return closure


def isa_graph(dm, include_eqv=True):
    """The direct isa digraph over concepts (eqv as mutual isa)."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dm.concepts)
    graph.add_edges_from(dm.isa_pairs())
    if include_eqv:
        for a, b in dm.eqv_pairs():
            graph.add_edge(a, b)
            graph.add_edge(b, a)
    return graph


def isa_closure(dm, reflexive=True):
    """(Reflexive-)transitive closure of isa over the concepts."""
    with obs.span(
        "dm.tc", concepts=len(dm.concepts), reflexive=reflexive
    ) as span:
        graph = isa_graph(dm)
        closure = transitive_closure(graph.edges)
        if reflexive:
            closure |= {(c, c) for c in dm.concepts}
        if span.enabled:
            span.set(pairs=len(closure))
            obs.count("dm.graphops", op="tc")
        return closure


def role_graph(dm, role):
    """Direct (ex) edges of one role as a digraph over concepts."""
    graph = nx.DiGraph()
    graph.add_nodes_from(dm.concepts)
    for src, edge_role, dst in dm.role_triples():
        if edge_role == role:
            graph.add_edge(src, dst)
    return graph


def deductive_closure(dm, role, mode="full"):
    """The paper's ``dc(R)``: R links propagated along isa chains.

    Modes:

    * ``"full"`` (default) — ``rtc(isa) . R . rtc(isa)``: every link
      justified by combining downward source specialization and upward
      target generalization (what `has_a_star` queries should see).
    * ``"paper"`` — the literal two-rule reading over rtc: only one end
      moves per link.
    * ``"down"`` — source specialization only: subconcepts inherit
      their superconcept's links, targets stay put.  This is the right
      relation for *traversal*: generalizing targets upward (to, say,
      `Neuron`) and then descending isa again would leak into sibling
      regions of the map.
    """
    with obs.span("dm.dc", role=role, mode=mode) as span:
        links = _deductive_closure(dm, role, mode)
        if span.enabled:
            span.set(links=len(links))
            obs.count("dm.graphops", op="dc")
        return links


def _deductive_closure(dm, role, mode):
    rtc = isa_closure(dm, reflexive=True)
    below: Dict[str, Set[str]] = {}
    above: Dict[str, Set[str]] = {}
    for sub, sup in rtc:
        below.setdefault(sup, set()).add(sub)
        above.setdefault(sub, set()).add(sup)
    links: Set[Tuple[str, str]] = set()
    for src, edge_role, dst in dm.role_triples():
        if edge_role != role:
            continue
        if mode == "full":
            for x in below.get(src, {src}):
                for y in above.get(dst, {dst}):
                    links.add((x, y))
        elif mode == "paper":
            for x in below.get(src, {src}):
                links.add((x, dst))
            for y in above.get(dst, {dst}):
                links.add((src, y))
        elif mode == "down":
            for x in below.get(src, {src}):
                links.add((x, dst))
        else:
            raise ValueError("unknown dc mode %r" % mode)
    return links


def has_a_star(dm, role="has"):
    """All inferable direct `role` links (``has_a_star`` of Section 4).

    Like the paper's relation, the result is *not* transitively closed:
    "it would be wasteful to compute the much larger tc(has_a_star) ...
    a recursive traversal of the direct links is sufficient".
    """
    return deductive_closure(dm, role)


def navigation_graph(dm, order="isa", include_isa=True):
    """The downward-navigation digraph for an ordering of the DM.

    With ``order="isa"`` the edges run general -> specific (``sup ->
    sub``).  With a role name (e.g. ``"has"``) the edges are the
    source-down deductive closure of the role (subconcepts inherit
    their superconcept's parts), and — when `include_isa` is on —
    additionally the isa specializations, because containment knowledge
    attaches at different granularities ("dendrites have branches;
    *shafts* (a kind of branch) have spines": reaching Spine from
    Dendrite navigates has, isa-down, has).  Target-up generalization
    is deliberately excluded from navigation: it would climb to generic
    concepts (`Neuron`) and descend into sibling regions.
    """
    graph = nx.DiGraph()
    graph.add_nodes_from(dm.concepts)
    if order == "isa":
        for sub, sup in dm.isa_pairs():
            graph.add_edge(sup, sub, kind="isa")
        for a, b in dm.eqv_pairs():
            graph.add_edge(a, b, kind="isa")
            graph.add_edge(b, a, kind="isa")
        return graph
    # Redundant-edge elimination: an inherited generic link (X has
    # Compartment) is dropped when a strictly more specific link (X has
    # Parallel_Fiber, Parallel_Fiber v Compartment) exists — the
    # generic one is implied and descending isa from it would wander
    # into sibling regions.
    links = deductive_closure(dm, order, mode="down")
    strict_isa = isa_closure(dm, reflexive=False)
    by_source: Dict[str, Set[str]] = {}
    for x, d in links:
        by_source.setdefault(x, set()).add(d)
    for x, targets in by_source.items():
        for d in targets:
            if any(
                other != d and (other, d) in strict_isa for other in targets
            ):
                continue
            graph.add_edge(x, d, kind="role")
    if include_isa:
        for sub, sup in dm.isa_pairs():
            if not graph.has_edge(sup, sub):
                graph.add_edge(sup, sub, kind="isa")
        for a, b in dm.eqv_pairs():
            if not graph.has_edge(a, b):
                graph.add_edge(a, b, kind="isa")
            if not graph.has_edge(b, a):
                graph.add_edge(b, a, kind="isa")
    return graph


def role_containers(dm, concept, role, include_isa=True):
    """Concepts that *contain* `concept` under a role order.

    W contains X when some navigation path W -> ... -> X crosses at
    least one role edge — pure isa-generalization chains (Compartment
    "reaching" Purkinje_Dendrite) do not make a container.  Reflexive:
    every concept contains itself.
    """
    nav = navigation_graph(dm, role, include_isa)
    if concept not in nav:
        return {concept}
    reach = nx.ancestors(nav, concept) | {concept}
    containers: Set[str] = {concept}
    for u, v, data in nav.edges(data=True):
        if data.get("kind") == "role" and v in reach:
            containers.add(u)
            containers |= nx.ancestors(nav, u)
    return containers


def ancestors(dm, concept, order="isa"):
    """All strict ancestors of a concept in the given order
    (isa-ancestors by default; containers for a role order)."""
    graph = navigation_graph(dm, order)
    if concept not in graph:
        return set()
    return nx.ancestors(graph, concept)


def descendants(dm, concept, order="isa"):
    """All strict descendants of a concept in the given order."""
    graph = navigation_graph(dm, order)
    if concept not in graph:
        return set()
    return nx.descendants(graph, concept)


def upper_bounds(dm, concepts, order="isa"):
    """Common ancestors (reflexive) of all the given concepts.

    For a role order, "ancestor" means *container*: the path must use
    at least one role edge (see :func:`role_containers`).
    """
    concepts = list(concepts)
    if not concepts:
        raise NoUpperBoundError("lub of an empty concept set is undefined")
    for concept in concepts:
        dm.require_concept(concept)
    graph = navigation_graph(dm, order)
    common: Optional[Set[str]] = None
    for concept in concepts:
        if order == "isa":
            ups = nx.ancestors(graph, concept) | {concept}
        else:
            ups = role_containers(dm, concept, order)
        common = ups if common is None else (common & ups)
    return common or set()


def least_upper_bounds(dm, concepts, order="isa"):
    """The minimal elements of the common upper bounds (sorted).

    In a DAG the lub need not be unique; all minimal common ancestors
    are returned, ordered by name for determinism.
    """
    concepts = list(concepts)
    with obs.span("dm.lub", concepts=len(concepts), order=order) as span:
        bounds = upper_bounds(dm, concepts, order)
        if not bounds:
            raise NoUpperBoundError(
                "concepts %s have no common %s-ancestor"
                % (sorted(concepts), order)
            )
        graph = navigation_graph(dm, order)
        minimal = {
            b
            for b in bounds
            if not any(o != b and b in nx.ancestors(graph, o) for o in bounds)
        }
        result = sorted(minimal)
        if span.enabled:
            span.set(bounds=len(result))
            obs.count("dm.graphops", op="lub")
        return result


def lub(dm, concepts, order="isa"):
    """The least upper bound; ties are broken by name (documented and
    deterministic) so the Section 5 query plan always has one root.
    Step 4 of the Section 5 plan uses the containment order:
    ``lub(dm, locations, order="has")``."""
    return least_upper_bounds(dm, concepts, order)[0]


def part_graph(dm, role="has", include_isa=True):
    """Digraph of the direct inferable `role` links (has_a_star), plus
    isa specializations for navigation (see :func:`navigation_graph`)."""
    return navigation_graph(dm, role, include_isa=include_isa)


def part_tree(dm, root, role="has", include_isa=True):
    """The subgraph of direct `role` links reachable from `root` —
    what the mediator's recursive `aggregate` traverses (Example 4)."""
    dm.require_concept(root)
    with obs.span("dm.part_tree", root=root, role=role) as span:
        graph = part_graph(dm, role, include_isa)
        reachable = {root} | nx.descendants(graph, root)
        tree = graph.subgraph(reachable).copy()
        if span.enabled:
            span.set(nodes=tree.number_of_nodes())
            obs.count("dm.graphops", op="part_tree")
        return tree


def downward_closure(dm, root, role="has", include_isa=True):
    """All concepts reachable from `root` along direct `role` links."""
    return set(part_tree(dm, root, role, include_isa).nodes)


def region_of_correspondence(dm, anchors, role="has"):
    """The DM segment relating a set of anchor concepts (Section 5).

    Computes the lub of the anchors and returns the sub-DAG of direct
    `role`/isa links lying on paths from the lub down to each anchor —
    "a segment in the domain map as the region of correspondence
    between the two information sources".
    """
    anchors = list(anchors)
    root = lub(dm, anchors, order=role)
    nav = navigation_graph(dm, role)
    region: Set[str] = {root}
    reachable_from_root = {root} | nx.descendants(nav, root)
    for anchor in anchors:
        if anchor not in nav:
            continue
        can_reach_anchor = {anchor} | nx.ancestors(nav, anchor)
        region |= reachable_from_root & can_reach_anchor
    return nav.subgraph(region).copy()


# ---------------------------------------------------------------------------
# Datalog backend (the paper's own rules)
# ---------------------------------------------------------------------------

CLOSURE_RULES = """
% Section 4, verbatim modulo naming: tc_/dc_/star_ prefixes replace the
% higher-order tc(R)/dc(R) notation.
tc_isa(X, Y) :- isa(X, Y).
tc_isa(X, Y) :- tc_isa(X, Z), tc_isa(Z, Y).
rtc_isa(X, X) :- concept(X).
rtc_isa(X, Y) :- tc_isa(X, Y).

dc_role(R, X, Y) :- rtc_isa(X, Z), role_edge(R, Z, Y).
dc_role(R, X, Y) :- role_edge(R, X, Z), rtc_isa(Z, Y).
dc_role(R, X, Y) :- rtc_isa(X, Z), role_edge(R, Z, W), rtc_isa(W, Y).

has_a_star(X, Y) :- dc_role(has, X, Y).
"""


def closure_program(dm):
    """Facts + the paper's closure rules as a Datalog program.

    Relations: ``concept/1``, ``isa/2``, ``role_edge/3`` (role, src,
    dst); derived: ``tc_isa/2``, ``rtc_isa/2``, ``dc_role/3``,
    ``has_a_star/2``.
    """
    program = Program()
    for concept in sorted(dm.concepts):
        program.add_fact("concept", concept)
    for sub, sup in sorted(dm.isa_pairs()):
        program.add_fact("isa", sub, sup)
    for a, b in sorted(dm.eqv_pairs()):
        program.add_fact("isa", a, b)
        program.add_fact("isa", b, a)
    for src, role, dst in sorted(dm.role_triples()):
        program.add_fact("role_edge", role, src, dst)
    program.extend(parse_program(CLOSURE_RULES))
    return program


def closure_rules():
    """Just the rule part (for embedding into mediator programs)."""
    return list(parse_program(CLOSURE_RULES))
