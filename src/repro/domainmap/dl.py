"""Description-logic expressions and axioms for domain maps.

Definition 1 of the paper gives domain maps a DL semantics with six edge
forms.  This module provides the corresponding expression AST:

=========================  ==========================  ===============
edge (Definition 1)        DL form                     here
=========================  ==========================  ===============
``C -> D``                 ``C v D``                   Sub(C, Named D)
``C -r-> D``               ``C v Exists r.D``          Sub(C, Exists(r, D))
``C -ALL:r-> D``           ``C v Forall r.D``          Sub(C, Forall(r, D))
``AND -> {Ci}``            ``C1 u ... u Cn``           Conj([...])
``OR -> {Ci}``             ``C1 t ... t Cn``           Disj([...])
``C -=-> D``               ``C == D``                  Eqv(C, D)
=========================  ==========================  ===============

plus the first-order translation of Section 4 (:func:`axiom_to_fo`) and
a small concrete syntax so domain maps can be written the way the paper
writes them::

    Spiny_Neuron  = Neuron & exists has.Spine
    Purkinje_Cell < Spiny_Neuron
    Dendrite      < exists has.Branch
    MyNeuron      < Medium_Spiny_Neuron & exists proj.GPE & all has.MyDendrite

(`<` is subsumption ``v``, `=` is equivalence ``==``; names with spaces
are single-quoted.)
"""

from __future__ import annotations

import re
from typing import FrozenSet, Iterable, List, Sequence, Set, Tuple

from ..errors import DomainMapError, ParseError


class ConceptExpr:
    """Abstract base of concept expressions."""

    __slots__ = ()

    def named_concepts(self):
        """All concept names mentioned in the expression."""
        raise NotImplementedError

    def roles(self):
        """All role names mentioned in the expression."""
        raise NotImplementedError


class Named(ConceptExpr):
    """A concept name."""

    __slots__ = ("name",)

    def __init__(self, name):
        self.name = name

    def named_concepts(self):
        yield self.name

    def roles(self):
        return iter(())

    def __eq__(self, other):
        return isinstance(other, Named) and self.name == other.name

    def __hash__(self):
        return hash(("Named", self.name))

    def __repr__(self):
        return "Named(%r)" % self.name

    def __str__(self):
        return _quote(self.name)


class Conj(ConceptExpr):
    """Conjunction ``C1 u ... u Cn`` (an AND node in the drawn map)."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        flattened: List[ConceptExpr] = []
        for part in parts:
            if isinstance(part, Conj):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise DomainMapError("conjunction needs at least two parts")
        self.parts = tuple(flattened)

    def named_concepts(self):
        for part in self.parts:
            yield from part.named_concepts()

    def roles(self):
        for part in self.parts:
            yield from part.roles()

    def __eq__(self, other):
        return isinstance(other, Conj) and self.parts == other.parts

    def __hash__(self):
        return hash(("Conj", self.parts))

    def __repr__(self):
        return "Conj(%r)" % (self.parts,)

    def __str__(self):
        return " & ".join(_paren(p) for p in self.parts)


class Disj(ConceptExpr):
    """Disjunction ``C1 t ... t Cn`` (an OR node in the drawn map)."""

    __slots__ = ("parts",)

    def __init__(self, parts):
        flattened: List[ConceptExpr] = []
        for part in parts:
            if isinstance(part, Disj):
                flattened.extend(part.parts)
            else:
                flattened.append(part)
        if len(flattened) < 2:
            raise DomainMapError("disjunction needs at least two parts")
        self.parts = tuple(flattened)

    def named_concepts(self):
        for part in self.parts:
            yield from part.named_concepts()

    def roles(self):
        for part in self.parts:
            yield from part.roles()

    def __eq__(self, other):
        return isinstance(other, Disj) and self.parts == other.parts

    def __hash__(self):
        return hash(("Disj", self.parts))

    def __repr__(self):
        return "Disj(%r)" % (self.parts,)

    def __str__(self):
        return " | ".join(_paren(p) for p in self.parts)


class Exists(ConceptExpr):
    """Existential restriction ``exists r.C`` (an (ex) edge)."""

    __slots__ = ("role", "concept")

    def __init__(self, role, concept):
        self.role = role
        self.concept = concept if isinstance(concept, ConceptExpr) else Named(concept)

    def named_concepts(self):
        yield from self.concept.named_concepts()

    def roles(self):
        yield self.role
        yield from self.concept.roles()

    def __eq__(self, other):
        return (
            isinstance(other, Exists)
            and self.role == other.role
            and self.concept == other.concept
        )

    def __hash__(self):
        return hash(("Exists", self.role, self.concept))

    def __repr__(self):
        return "Exists(%r, %r)" % (self.role, self.concept)

    def __str__(self):
        return "exists %s.%s" % (_quote(self.role), _paren(self.concept))


class Forall(ConceptExpr):
    """Value restriction ``all r.C`` (an (all) edge)."""

    __slots__ = ("role", "concept")

    def __init__(self, role, concept):
        self.role = role
        self.concept = concept if isinstance(concept, ConceptExpr) else Named(concept)

    def named_concepts(self):
        yield from self.concept.named_concepts()

    def roles(self):
        yield self.role
        yield from self.concept.roles()

    def __eq__(self, other):
        return (
            isinstance(other, Forall)
            and self.role == other.role
            and self.concept == other.concept
        )

    def __hash__(self):
        return hash(("Forall", self.role, self.concept))

    def __repr__(self):
        return "Forall(%r, %r)" % (self.role, self.concept)

    def __str__(self):
        return "all %s.%s" % (_quote(self.role), _paren(self.concept))


class Axiom:
    """Abstract base of DL axioms."""

    __slots__ = ()


class Sub(Axiom):
    """Subsumption ``lhs v rhs``; lhs is usually a Named concept."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs):
        self.lhs = lhs if isinstance(lhs, ConceptExpr) else Named(lhs)
        self.rhs = rhs if isinstance(rhs, ConceptExpr) else Named(rhs)

    def __eq__(self, other):
        return isinstance(other, Sub) and self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self):
        return hash(("Sub", self.lhs, self.rhs))

    def __repr__(self):
        return "Sub(%r, %r)" % (self.lhs, self.rhs)

    def __str__(self):
        return "%s < %s" % (self.lhs, self.rhs)


class Eqv(Axiom):
    """Equivalence ``lhs == rhs`` (necessary and sufficient conditions)."""

    __slots__ = ("lhs", "rhs")

    def __init__(self, lhs, rhs):
        self.lhs = lhs if isinstance(lhs, ConceptExpr) else Named(lhs)
        self.rhs = rhs if isinstance(rhs, ConceptExpr) else Named(rhs)

    def __eq__(self, other):
        return isinstance(other, Eqv) and self.lhs == other.lhs and self.rhs == other.rhs

    def __hash__(self):
        return hash(("Eqv", self.lhs, self.rhs))

    def __repr__(self):
        return "Eqv(%r, %r)" % (self.lhs, self.rhs)

    def __str__(self):
        return "%s = %s" % (self.lhs, self.rhs)


def _quote(name):
    if re.fullmatch(r"[A-Za-z_][A-Za-z0-9_]*", name):
        return name
    return "'%s'" % name.replace("'", "\\'")


def _paren(expr):
    if isinstance(expr, (Conj, Disj)):
        return "(%s)" % expr
    return str(expr)


# ---------------------------------------------------------------------------
# First-order translation (Section 4)
# ---------------------------------------------------------------------------

def _expr_to_fo(expr, variable, counter):
    """Translate a concept expression into an FO formula string over
    `variable`.  `counter` supplies fresh variable names."""
    if isinstance(expr, Named):
        return "%s(%s)" % (_quote(expr.name), variable)
    if isinstance(expr, Conj):
        return " & ".join(
            "(%s)" % _expr_to_fo(part, variable, counter) for part in expr.parts
        )
    if isinstance(expr, Disj):
        return " | ".join(
            "(%s)" % _expr_to_fo(part, variable, counter) for part in expr.parts
        )
    if isinstance(expr, Exists):
        fresh = "y%d" % next(counter)
        inner = _expr_to_fo(expr.concept, fresh, counter)
        return "exists %s (%s(%s, %s) & %s)" % (
            fresh,
            _quote(expr.role),
            variable,
            fresh,
            inner,
        )
    if isinstance(expr, Forall):
        fresh = "y%d" % next(counter)
        inner = _expr_to_fo(expr.concept, fresh, counter)
        return "forall %s (%s(%s, %s) -> %s)" % (
            fresh,
            _quote(expr.role),
            variable,
            fresh,
            inner,
        )
    raise DomainMapError("cannot translate %r to FO" % (expr,))


def axiom_to_fo(axiom):
    """The FO reading of an axiom, e.g. FO(ex) of Section 4:
    ``forall x (C(x) -> exists y (D(y) & r(x, y)))``."""
    import itertools

    counter = itertools.count(1)
    lhs = _expr_to_fo(axiom.lhs, "x", counter)
    rhs = _expr_to_fo(axiom.rhs, "x", counter)
    if isinstance(axiom, Sub):
        return "forall x (%s -> %s)" % (lhs, rhs)
    if isinstance(axiom, Eqv):
        return "forall x (%s <-> %s)" % (lhs, rhs)
    raise DomainMapError("unknown axiom kind %r" % (axiom,))


# ---------------------------------------------------------------------------
# Concrete syntax
# ---------------------------------------------------------------------------

_DL_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<comment>%[^\n]*)
  | (?P<sqstring>'(?:[^'\\]|\\.)*')
  | (?P<name>[A-Za-z_][A-Za-z0-9_]*)
  | (?P<punct><|=|&|\||\.|\(|\))
    """,
    re.VERBOSE,
)

_DL_KEYWORDS = {"exists", "all"}


def _dl_tokenize(text):
    tokens = []
    pos = 0
    while pos < len(text):
        m = _DL_TOKEN_RE.match(text, pos)
        if m is None:
            raise ParseError("unexpected character %r" % text[pos], text=text, position=pos)
        kind = m.lastgroup
        if kind in ("ws", "comment"):
            pos = m.end()
            continue
        value = m.group()
        if kind == "sqstring":
            tokens.append(("name", value[1:-1].replace("\\'", "'"), pos))
        elif kind == "name":
            if value in _DL_KEYWORDS:
                tokens.append((value, value, pos))
            else:
                tokens.append(("name", value, pos))
        else:
            tokens.append((value, value, pos))
        pos = m.end()
    tokens.append(("eof", None, pos))
    return tokens


class _DLParser:
    def __init__(self, text):
        self.text = text
        self.tokens = _dl_tokenize(text)
        self.index = 0

    def peek(self):
        return self.tokens[self.index]

    def next(self):
        token = self.tokens[self.index]
        if token[0] != "eof":
            self.index += 1
        return token

    def expect(self, kind):
        token = self.next()
        if token[0] != kind:
            raise ParseError(
                "expected %r but found %r" % (kind, token[1]),
                text=self.text,
                position=token[2],
            )
        return token

    def parse_axiom(self):
        lhs = self.parse_expr()
        op = self.next()
        if op[0] not in ("<", "="):
            raise ParseError(
                "expected '<' or '=' between concept expressions",
                text=self.text,
                position=op[2],
            )
        rhs = self.parse_expr()
        if self.peek()[0] != "eof":
            raise ParseError(
                "trailing input after axiom",
                text=self.text,
                position=self.peek()[2],
            )
        return Sub(lhs, rhs) if op[0] == "<" else Eqv(lhs, rhs)

    def parse_expr(self):
        first = self.parse_factor()
        if self.peek()[0] == "&":
            parts = [first]
            while self.peek()[0] == "&":
                self.next()
                parts.append(self.parse_factor())
            return Conj(parts)
        if self.peek()[0] == "|":
            parts = [first]
            while self.peek()[0] == "|":
                self.next()
                parts.append(self.parse_factor())
            return Disj(parts)
        return first

    def parse_factor(self):
        token = self.peek()
        if token[0] == "(":
            self.next()
            expr = self.parse_expr()
            self.expect(")")
            return expr
        if token[0] in ("exists", "all"):
            quantifier = self.next()[0]
            role = self.expect("name")[1]
            self.expect(".")
            concept = self.parse_factor()
            if quantifier == "exists":
                return Exists(role, concept)
            return Forall(role, concept)
        name = self.expect("name")[1]
        return Named(name)


def parse_axiom(text):
    """Parse one axiom from concrete syntax, e.g.
    ``"Spiny_Neuron = Neuron & exists has.Spine"``."""
    return _DLParser(text).parse_axiom()


def parse_axioms(text):
    """Parse one axiom per non-empty line (``%`` comments allowed)."""
    axioms = []
    for line in text.splitlines():
        stripped = line.split("%")[0].strip()
        if stripped:
            axioms.append(parse_axiom(stripped))
    return axioms


def parse_concept(text):
    """Parse a bare concept expression."""
    parser = _DLParser(text)
    expr = parser.parse_expr()
    if parser.peek()[0] != "eof":
        raise ParseError(
            "trailing input after concept expression",
            text=text,
            position=parser.peek()[2],
        )
    return expr
