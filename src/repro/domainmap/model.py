"""Domain maps: semantic nets of concepts and roles (Definition 1).

A domain map is "a finite set comprising (i) description logic facts,
and (ii) logic rules, both involving finite sets C (concepts) and R
(roles)", visualized as an edge-labeled digraph.  :class:`DomainMap`
stores the axioms (the DL facts), optional Datalog rules (the paper's
rule-based extension), and derives the *edge view* used for drawing and
for the graph operations:

* ``isa`` edges from ``C v D`` and the conjunctive parts of definitions,
* ``ex`` edges ``C -r-> D`` from ``C v exists r.D``,
* ``all`` edges ``C -ALL:r-> D`` from ``C v all r.D``,
* ``eqv`` edges from ``C == D``,
* synthetic AND/OR nodes for conjunctions/disjunctions that cannot be
  decomposed into the simple edges above (e.g. Figure 3's
  ``Medium_Spiny_Neuron v exists proj.(GPE t GPI t SNpr t SNpc)``).

Decomposition follows the DL semantics: ``C v D1 u D2`` yields both
``C v D1`` and ``C v D2``; an equivalence contributes its necessary
direction (``C v rhs``) to the edge view, while the sufficient direction
is used by the reasoner and by registration.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

import networkx as nx

from ..errors import DomainMapError, UnknownConceptError, UnknownRoleError
from .dl import (
    Axiom,
    ConceptExpr,
    Conj,
    Disj,
    Eqv,
    Exists,
    Forall,
    Named,
    Sub,
    parse_axiom,
    parse_axioms,
)

#: edge kinds of Definition 1
ISA = "isa"
EX = "ex"
ALL = "all"
EQV = "eqv"
AND = "and"
OR = "or"


class Edge:
    """One edge of the drawn domain map.

    ``src``/``dst`` are node identifiers: concept names, or synthetic
    AND/OR node ids of the form ``AND#n`` / ``OR#n``.  ``role`` is set
    for (ex)/(all) edges and None for isa/eqv/and/or membership edges.
    """

    __slots__ = ("kind", "src", "dst", "role")

    def __init__(self, kind, src, dst, role=None):
        self.kind = kind
        self.src = src
        self.dst = dst
        self.role = role

    def as_tuple(self):
        return (self.kind, self.src, self.role, self.dst)

    def __eq__(self, other):
        return isinstance(other, Edge) and self.as_tuple() == other.as_tuple()

    def __hash__(self):
        return hash(("Edge",) + self.as_tuple())

    def __repr__(self):
        return "Edge(%r, %r, %r, role=%r)" % (self.kind, self.src, self.dst, self.role)

    def label(self):
        """The label drawn on the edge (Figure 1 conventions)."""
        if self.kind == ISA:
            return ""  # unlabeled gray edges are isa
        if self.kind == EX:
            return self.role
        if self.kind == ALL:
            return "ALL: %s" % self.role
        if self.kind == EQV:
            return "="
        return self.kind

    def __str__(self):
        label = self.label()
        arrow = "-[%s]->" % label if label else "->"
        return "%s %s %s" % (self.src, arrow, self.dst)


class DomainMap:
    """A mutable domain map: concepts, roles, DL axioms, logic rules."""

    def __init__(self, name="domain_map"):
        self.name = name
        self.concepts: Set[str] = set()
        self.roles: Set[str] = set()
        self.axioms: List[Axiom] = []
        self.rules_text: List[str] = []
        self._synthetic_counter = 0

    # -- declaration -----------------------------------------------------

    def add_concept(self, name):
        self.concepts.add(name)
        return self

    def add_concepts(self, names):
        for name in names:
            self.add_concept(name)
        return self

    def add_role(self, name):
        self.roles.add(name)
        return self

    def add_roles(self, names):
        for name in names:
            self.add_role(name)
        return self

    def has_concept(self, name):
        return name in self.concepts

    def require_concept(self, name):
        if name not in self.concepts:
            raise UnknownConceptError(
                "concept %r is not declared in domain map %r" % (name, self.name)
            )

    def require_role(self, name):
        if name not in self.roles:
            raise UnknownRoleError(
                "role %r is not declared in domain map %r" % (name, self.name)
            )

    # -- axioms ------------------------------------------------------------

    def add_axiom(self, axiom):
        """Add one axiom (an :class:`Axiom` or concrete-syntax text).

        Concepts and roles mentioned by the axiom are auto-declared —
        a domain map's vocabulary is exactly what its axioms use.
        """
        if isinstance(axiom, str):
            axiom = parse_axiom(axiom)
        for expr in (axiom.lhs, axiom.rhs):
            self.concepts.update(expr.named_concepts())
            self.roles.update(expr.roles())
        self.axioms.append(axiom)
        return axiom

    def add_axioms(self, text_or_axioms):
        """Add several axioms (multi-line text or an iterable)."""
        if isinstance(text_or_axioms, str):
            axioms = parse_axioms(text_or_axioms)
        else:
            axioms = list(text_or_axioms)
        for axiom in axioms:
            self.add_axiom(axiom)
        return self

    # convenience constructors for the common edge forms
    def isa(self, sub, sup):
        """Add ``sub v sup`` (an isa edge)."""
        return self.add_axiom(Sub(Named(sub), Named(sup)))

    def ex(self, src, role, dst):
        """Add ``src v exists role.dst`` (an (ex) edge)."""
        return self.add_axiom(Sub(Named(src), Exists(role, Named(dst))))

    def all_values(self, src, role, dst):
        """Add ``src v all role.dst`` (an (all) edge)."""
        return self.add_axiom(Sub(Named(src), Forall(role, Named(dst))))

    def eqv(self, lhs, rhs):
        """Add ``lhs == rhs``; `rhs` may be a name, expression or text."""
        if isinstance(rhs, str) and not isinstance(rhs, ConceptExpr):
            # A bare name: treat as Named; richer expressions should use
            # add_axiom("C = ..." ) or pass a ConceptExpr.
            rhs = Named(rhs)
        return self.add_axiom(Eqv(Named(lhs), rhs))

    def add_rule(self, datalog_text):
        """Attach logic rules (component (ii) of Definition 1)."""
        self.rules_text.append(datalog_text)
        return self

    # -- edge view -----------------------------------------------------------

    def edges(self):
        """The full drawn-edge view, including synthetic AND/OR nodes."""
        self._synthetic_counter = 0
        out: List[Edge] = []
        for axiom in self.axioms:
            out.extend(self._axiom_edges(axiom))
        return out

    def _fresh_node(self, kind):
        self._synthetic_counter += 1
        return "%s#%d" % (kind.upper(), self._synthetic_counter)

    def _axiom_edges(self, axiom):
        edges: List[Edge] = []
        if not isinstance(axiom.lhs, Named):
            # Complex-lhs axioms exist only for the reasoner; they have
            # no canonical drawing.
            return edges
        src = axiom.lhs.name
        if isinstance(axiom, Eqv):
            if isinstance(axiom.rhs, Named):
                edges.append(Edge(EQV, src, axiom.rhs.name))
                return edges
            node = self._expr_node(axiom.rhs, edges)
            edges.append(Edge(EQV, src, node))
            # the necessary direction also contributes plain edges
            edges.extend(self._sub_edges(src, axiom.rhs))
            return edges
        edges.extend(self._sub_edges(src, axiom.rhs))
        return edges

    def _sub_edges(self, src, expr):
        """Edges for ``src v expr`` (necessary conditions only)."""
        edges: List[Edge] = []
        if isinstance(expr, Named):
            edges.append(Edge(ISA, src, expr.name))
        elif isinstance(expr, Conj):
            for part in expr.parts:
                edges.extend(self._sub_edges(src, part))
        elif isinstance(expr, Exists):
            if isinstance(expr.concept, Named):
                edges.append(Edge(EX, src, expr.concept.name, role=expr.role))
            else:
                node = self._expr_node(expr.concept, edges)
                edges.append(Edge(EX, src, node, role=expr.role))
        elif isinstance(expr, Forall):
            if isinstance(expr.concept, Named):
                edges.append(Edge(ALL, src, expr.concept.name, role=expr.role))
            else:
                node = self._expr_node(expr.concept, edges)
                edges.append(Edge(ALL, src, node, role=expr.role))
        elif isinstance(expr, Disj):
            node = self._expr_node(expr, edges)
            edges.append(Edge(ISA, src, node))
        else:  # pragma: no cover
            raise DomainMapError("cannot draw %r" % (expr,))
        return edges

    def _expr_node(self, expr, edges):
        """Render a complex expression as a synthetic AND/OR node."""
        if isinstance(expr, Named):
            return expr.name
        if isinstance(expr, Conj):
            node = self._fresh_node(AND)
            for part in expr.parts:
                edges.extend(self._sub_edges(node, part))
            return node
        if isinstance(expr, Disj):
            node = self._fresh_node(OR)
            for part in expr.parts:
                edges.extend(self._sub_edges(node, part))
            return node
        if isinstance(expr, (Exists, Forall)):
            node = self._fresh_node(AND)
            edges.extend(self._sub_edges(node, expr))
            return node
        raise DomainMapError("cannot render %r" % (expr,))

    # simple-edge accessors (concept-to-concept only)

    def isa_pairs(self):
        """Direct (sub, sup) concept pairs from the necessary conditions."""
        return {
            (e.src, e.dst)
            for e in self.edges()
            if e.kind == ISA and not _is_synthetic(e.src) and not _is_synthetic(e.dst)
        } | {
            pair
            for e in self.edges()
            if e.kind == EQV and not _is_synthetic(e.dst)
            for pair in ((e.src, e.dst), (e.dst, e.src))
        }

    def role_triples(self):
        """Direct (src, role, dst) triples from (ex) edges between concepts."""
        return {
            (e.src, e.role, e.dst)
            for e in self.edges()
            if e.kind == EX and not _is_synthetic(e.src) and not _is_synthetic(e.dst)
        }

    def all_triples(self):
        return {
            (e.src, e.role, e.dst)
            for e in self.edges()
            if e.kind == ALL and not _is_synthetic(e.src) and not _is_synthetic(e.dst)
        }

    def eqv_pairs(self):
        return {
            (e.src, e.dst)
            for e in self.edges()
            if e.kind == EQV and not _is_synthetic(e.dst)
        }

    # -- graph --------------------------------------------------------------

    def graph(self):
        """The drawn digraph as a networkx MultiDiGraph.

        Nodes carry ``kind`` ("concept", "and", "or"); edges carry
        ``kind`` and ``role``.
        """
        graph = nx.MultiDiGraph(name=self.name)
        for concept in self.concepts:
            graph.add_node(concept, kind="concept")
        for edge in self.edges():
            for node in (edge.src, edge.dst):
                if _is_synthetic(node):
                    kind = "and" if node.startswith("AND#") else "or"
                    graph.add_node(node, kind=kind)
            graph.add_edge(edge.src, edge.dst, kind=edge.kind, role=edge.role)
        return graph

    def copy(self, name=None):
        """An independent copy (a source's "local copy of the DM",
        footnote 9 of the paper)."""
        clone = DomainMap(name or self.name)
        clone.concepts = set(self.concepts)
        clone.roles = set(self.roles)
        clone.axioms = list(self.axioms)
        clone.rules_text = list(self.rules_text)
        return clone

    # -- summary --------------------------------------------------------------

    def describe(self):
        lines = [
            "domain map %s: %d concepts, %d roles, %d axioms"
            % (self.name, len(self.concepts), len(self.roles), len(self.axioms))
        ]
        for axiom in self.axioms:
            lines.append("  %s" % axiom)
        return "\n".join(lines)

    def __repr__(self):
        return "DomainMap(%r, concepts=%d, axioms=%d)" % (
            self.name,
            len(self.concepts),
            len(self.axioms),
        )


def _is_synthetic(node):
    return node.startswith("AND#") or node.startswith("OR#")
