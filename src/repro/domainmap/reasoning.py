"""Restricted reasoning about domain-map concepts.

Proposition 1 of the paper: subsumption and satisfiability are
*undecidable* for unrestricted GCM domain maps (the rule language can
express all FO queries and more).  "In our experience, in a typical
mediator system, reasoning about the DM may be required only to a
limited extent" — and restricted, decidable fragments "are often
sufficient".

This module implements classic structural subsumption for exactly such
a fragment:

* axioms have a *named* left-hand side,
* right-hand sides use names, conjunction and existential restrictions
  (no disjunction, no value restriction),
* definitions (``==`` axioms) are acyclic.

Anything outside the fragment — disjunction, ``all``, complex left-hand
sides, attached logic rules, cyclic definitions — raises
:class:`~repro.errors.UndecidableFragmentError`, making the boundary of
Proposition 1 explicit in the API.  Within the fragment every concept
is trivially satisfiable (there is no negation or bottom), and
subsumption is sound and complete via definition unfolding.
"""

from __future__ import annotations

from typing import Dict, FrozenSet, Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import UndecidableFragmentError
from .dl import Conj, Disj, Eqv, Exists, Forall, Named, Sub
from .model import DomainMap


def check_fragment(dm):
    """Verify `dm` lies in the decidable structural fragment.

    Raises :class:`UndecidableFragmentError` naming the first offending
    construct; returns True otherwise.
    """
    if dm.rules_text:
        raise UndecidableFragmentError(
            "domain map %r attaches logic rules; reasoning over the full "
            "GCM rule language is undecidable (Proposition 1)" % dm.name
        )
    for axiom in dm.axioms:
        if not isinstance(axiom.lhs, Named):
            raise UndecidableFragmentError(
                "axiom %s has a complex left-hand side" % axiom
            )
        _check_expr(axiom.rhs)
    _check_acyclic(dm)
    return True


def _check_expr(expr):
    if isinstance(expr, Named):
        return
    if isinstance(expr, Conj):
        for part in expr.parts:
            _check_expr(part)
        return
    if isinstance(expr, Exists):
        _check_expr(expr.concept)
        return
    if isinstance(expr, Disj):
        raise UndecidableFragmentError(
            "disjunction (%s) is outside the structural fragment" % expr
        )
    if isinstance(expr, Forall):
        raise UndecidableFragmentError(
            "value restriction (%s) is outside the structural fragment" % expr
        )
    raise UndecidableFragmentError("unsupported expression %r" % (expr,))


def _definitions(dm):
    """name -> list of rhs expressions, per axiom kind."""
    sub_rhs: Dict[str, List] = {}
    eqv_rhs: Dict[str, List] = {}
    for axiom in dm.axioms:
        if not isinstance(axiom.lhs, Named):
            continue
        target = eqv_rhs if isinstance(axiom, Eqv) else sub_rhs
        target.setdefault(axiom.lhs.name, []).append(axiom.rhs)
    return sub_rhs, eqv_rhs


def _check_acyclic(dm):
    sub_rhs, eqv_rhs = _definitions(dm)

    def visit(name, path):
        if name in path:
            raise UndecidableFragmentError(
                "cyclic definition through %r; structural subsumption "
                "requires acyclic unfolding" % name
            )
        path = path | {name}
        for rhs_list in (sub_rhs.get(name, ()), eqv_rhs.get(name, ())):
            for rhs in rhs_list:
                for mentioned in rhs.named_concepts():
                    visit(mentioned, path)

    for name in sorted(dm.concepts):
        visit(name, frozenset())


class _Normal:
    """Normal form: entailed/required atom names + (role, expr) pairs."""

    __slots__ = ("names", "existentials")

    def __init__(self, names, existentials):
        self.names = frozenset(names)
        self.existentials = frozenset(existentials)


class Reasoner:
    """Structural subsumption over the decidable fragment of one map."""

    def __init__(self, dm):
        check_fragment(dm)
        self.dm = dm
        self._sub_rhs, self._eqv_rhs = _definitions(dm)
        self._entailed_cache: Dict = {}

    # -- normal forms -----------------------------------------------------

    def _entailed(self, expr):
        """Everything a member of `expr` is entailed to satisfy."""
        key = expr
        cached = self._entailed_cache.get(key)
        if cached is not None:
            return cached
        names: Set[str] = set()
        existentials: Set[Tuple[str, object]] = set()
        self._collect_entailed(expr, names, existentials)
        normal = _Normal(names, existentials)
        self._entailed_cache[key] = normal
        return normal

    def _collect_entailed(self, expr, names, existentials):
        if isinstance(expr, Named):
            if expr.name in names:
                return
            names.add(expr.name)
            for rhs in self._sub_rhs.get(expr.name, ()):
                self._collect_entailed(rhs, names, existentials)
            for rhs in self._eqv_rhs.get(expr.name, ()):
                self._collect_entailed(rhs, names, existentials)
        elif isinstance(expr, Conj):
            for part in expr.parts:
                self._collect_entailed(part, names, existentials)
        elif isinstance(expr, Exists):
            existentials.add((expr.role, expr.concept))
        else:  # pragma: no cover - fragment checked at construction
            raise UndecidableFragmentError("unexpected %r" % (expr,))

    def _required(self, expr):
        """The conjuncts that suffice for membership in `expr`.

        Only equivalence definitions may be unfolded on the general
        side: plain subsumption axioms give necessary, not sufficient,
        conditions.
        """
        names: Set[str] = set()
        existentials: Set[Tuple[str, object]] = set()
        self._collect_required(expr, names, existentials, frozenset())
        return _Normal(names, existentials)

    def _collect_required(self, expr, names, existentials, visiting):
        if isinstance(expr, Named):
            definitions = self._eqv_rhs.get(expr.name, ())
            if definitions and expr.name not in visiting:
                for rhs in definitions:
                    self._collect_required(
                        rhs, names, existentials, visiting | {expr.name}
                    )
            else:
                names.add(expr.name)
        elif isinstance(expr, Conj):
            for part in expr.parts:
                self._collect_required(part, names, existentials, visiting)
        elif isinstance(expr, Exists):
            existentials.add((expr.role, expr.concept))
        else:  # pragma: no cover
            raise UndecidableFragmentError("unexpected %r" % (expr,))

    # -- queries ---------------------------------------------------------------

    def subsumes(self, general, specific):
        """Does membership in `specific` imply membership in `general`?

        Both arguments may be concept names or expressions.
        """
        general = Named(general) if isinstance(general, str) else general
        specific = Named(specific) if isinstance(specific, str) else specific
        required = self._required(general)
        entailed = self._entailed(specific)
        for name in required.names:
            if name not in entailed.names:
                return False
        for role, concept in required.existentials:
            if not any(
                have_role == role and self.subsumes(concept, have_concept)
                for have_role, have_concept in entailed.existentials
            ):
                return False
        return True

    def equivalent(self, left, right):
        return self.subsumes(left, right) and self.subsumes(right, left)

    def satisfiable(self, concept):
        """Within the fragment every concept is satisfiable (there is no
        negation or bottom); the value of this method is that calling it
        on a map outside the fragment raises, per Proposition 1."""
        return True

    def classify(self):
        """The full subsumption preorder over named concepts: a sorted
        list of (general, specific) pairs with general != specific."""
        names = sorted(self.dm.concepts)
        pairs = []
        for general in names:
            for specific in names:
                if general != specific and self.subsumes(general, specific):
                    pairs.append((general, specific))
        return pairs


def subsumes(dm, general, specific):
    """One-shot convenience wrapper around :class:`Reasoner`."""
    return Reasoner(dm).subsumes(general, specific)
