"""Rendering domain maps (the Figure 1 / Figure 3 drawings).

The KIND prototype generated "DM graphs for the user interface"; here we
emit Graphviz DOT and a deterministic ASCII listing.  Figure 1's drawing
conventions are followed: unlabeled gray edges are isa, role edges carry
their role name, (all) edges are labeled ``ALL: role``, equivalence is
``=``, and AND/OR junctions are drawn as small labeled nodes.
"""

from __future__ import annotations

from typing import Iterable, List, Optional

from .model import ALL, AND, EQV, EX, ISA, OR, DomainMap, _is_synthetic


def _dot_escape(name):
    return name.replace("\\", "\\\\").replace('"', '\\"')


def to_dot(dm, highlight=(), rankdir="BT"):
    """Render the domain map as Graphviz DOT.

    `highlight` names concepts to draw dark (Figure 3 draws newly
    registered concepts dark).
    """
    highlight = set(highlight)
    lines = [
        "digraph %s {" % _dot_escape(dm.name).replace(" ", "_"),
        '  rankdir=%s;' % rankdir,
        '  node [shape=box, fontname="Helvetica"];',
    ]
    edges = dm.edges()
    nodes = set(dm.concepts)
    for edge in edges:
        nodes.add(edge.src)
        nodes.add(edge.dst)
    for node in sorted(nodes):
        attrs = []
        if _is_synthetic(node):
            kind = "AND" if node.startswith("AND#") else "OR"
            attrs.append('label="%s"' % kind)
            attrs.append("shape=diamond")
        else:
            attrs.append('label="%s"' % _dot_escape(node))
        if node in highlight:
            attrs.append("style=filled")
            attrs.append('fillcolor="gray25"')
            attrs.append('fontcolor="white"')
        lines.append('  "%s" [%s];' % (_dot_escape(node), ", ".join(attrs)))
    for edge in edges:
        attrs = []
        label = edge.label()
        if label:
            attrs.append('label="%s"' % _dot_escape(label))
        if edge.kind == ISA:
            attrs.append('color="gray60"')
        if edge.kind == EQV:
            attrs.append("dir=both")
        lines.append(
            '  "%s" -> "%s" [%s];'
            % (_dot_escape(edge.src), _dot_escape(edge.dst), ", ".join(attrs))
        )
    lines.append("}")
    return "\n".join(lines)


def to_text(dm):
    """A deterministic one-edge-per-line listing (used by the Figure 1
    benchmark output)."""
    lines = [
        "domain map %s (%d concepts, %d roles)"
        % (dm.name, len(dm.concepts), len(dm.roles))
    ]
    for edge in sorted(dm.edges(), key=lambda e: e.as_tuple()):
        label = edge.label() or "isa"
        lines.append("  %-28s -[%s]-> %s" % (edge.src, label, edge.dst))
    return "\n".join(lines)


def edge_census(dm):
    """Edge counts per kind (drawing sanity checks in benches)."""
    census = {}
    for edge in dm.edges():
        census[edge.kind] = census.get(edge.kind, 0) + 1
    return dict(sorted(census.items()))
