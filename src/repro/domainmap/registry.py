"""Registering new knowledge into a domain map (Figure 3).

A source may *change* the mediator's domain map (or its local copy) "by
adding and refining DM concepts": Figure 3 shows the map after
registering::

    MyDendrite = Dendrite & exists exp.Dopamine_R
    MyNeuron   < Medium_Spiny_Neuron
               & exists proj.Globus_Pallidus_External
               & all has.MyDendrite

:class:`ConceptRegistration` validates that a refinement only *extends*
the map — the referenced concepts/roles must already exist (or be among
the newly introduced ones) and existing axioms are never removed — then
applies it and reports the edges that became derivable.
"""

from __future__ import annotations

from typing import Iterable, List, Optional, Sequence, Set, Tuple

from ..errors import DomainMapError, UnknownConceptError, UnknownRoleError
from .dl import Axiom, Conj, Disj, Eqv, Exists, Forall, Named, Sub, parse_axioms
from .graphops import ancestors, deductive_closure, isa_closure
from .model import DomainMap


class RegistrationResult:
    """What a registration added: concepts, axioms, and derived facts."""

    def __init__(self, new_concepts, new_axioms, new_isa, new_role_links):
        self.new_concepts = sorted(new_concepts)
        self.new_axioms = list(new_axioms)
        self.new_isa = sorted(new_isa)
        self.new_role_links = sorted(new_role_links)

    def __repr__(self):
        return (
            "RegistrationResult(concepts=%r, axioms=%d, isa+=%d, roles+=%d)"
            % (
                self.new_concepts,
                len(self.new_axioms),
                len(self.new_isa),
                len(self.new_role_links),
            )
        )

    def touched_concepts(self):
        """Every concept this refinement introduced or (re)connected:
        the new concepts plus both endpoints of every new isa pair and
        role link.  This is the seed set medcache's domain-map-aware
        invalidation starts its upward closure from — note a
        refinement adding *only* role links (no new concepts) still
        seeds it."""
        touched = set(self.new_concepts)
        for sub, sup in self.new_isa:
            touched.add(sub)
            touched.add(sup)
        for src, _role, dst in self.new_role_links:
            touched.add(src)
            touched.add(dst)
        return touched

    def describe(self):
        lines = ["registered %d new concept(s):" % len(self.new_concepts)]
        for concept in self.new_concepts:
            lines.append("  %s" % concept)
        for axiom in self.new_axioms:
            lines.append("  axiom: %s" % axiom)
        lines.append("derived isa edges: %d" % len(self.new_isa))
        lines.append("derived role links: %d" % len(self.new_role_links))
        return "\n".join(lines)


def register_concepts(dm, axioms, allow_new_roles=False):
    """Refine `dm` with DL axioms introducing new concepts.

    Args:
        dm: the domain map to extend (mutated in place).
        axioms: axiom text (one per line) or an iterable of Axioms.
        allow_new_roles: whether axioms may mention undeclared roles.

    Returns a :class:`RegistrationResult` summarizing the extension,
    including the isa edges and deductive role links that became
    derivable (e.g. `MyNeuron`'s inherited projections in Figure 3).

    Raises :class:`UnknownConceptError` when an axiom references a
    concept that neither exists in the map nor is defined by the
    registration itself — refinements must attach to the existing map.
    """
    if isinstance(axioms, str):
        axioms = parse_axioms(axioms)
    axioms = list(axioms)
    if not axioms:
        raise DomainMapError("registration contains no axioms")

    defined: Set[str] = set()
    for axiom in axioms:
        if isinstance(axiom.lhs, Named):
            defined.add(axiom.lhs.name)

    # Validate references: everything mentioned on the rhs (or a complex
    # lhs) must already exist or be defined by this registration.
    for axiom in axioms:
        mentioned = set(axiom.rhs.named_concepts())
        if not isinstance(axiom.lhs, Named):
            mentioned |= set(axiom.lhs.named_concepts())
        for concept in mentioned:
            if concept not in dm.concepts and concept not in defined:
                raise UnknownConceptError(
                    "registration references unknown concept %r" % concept
                )
        roles = set(axiom.rhs.roles()) | set(axiom.lhs.roles())
        if not allow_new_roles:
            for role in roles:
                if role not in dm.roles:
                    raise UnknownRoleError(
                        "registration references unknown role %r" % role
                    )

    before_isa = isa_closure(dm, reflexive=False)
    before_roles = {
        role: deductive_closure(dm, role) for role in sorted(dm.roles)
    }

    new_concepts = defined - dm.concepts
    for axiom in axioms:
        dm.add_axiom(axiom)

    after_isa = isa_closure(dm, reflexive=False)
    new_isa = after_isa - before_isa
    new_role_links: Set[Tuple[str, str, str]] = set()
    for role in sorted(dm.roles):
        after = deductive_closure(dm, role)
        before = before_roles.get(role, set())
        for src, dst in after - before:
            new_role_links.add((src, role, dst))

    return RegistrationResult(new_concepts, axioms, new_isa, new_role_links)


def definite_projections(dm, concept, role="proj"):
    """The targets `concept` *definitely* relates to via `role`, following
    the deductive closure (Figure 3: with the new knowledge, MyNeuron
    definitely projects to Globus_Pallidus_External)."""
    dm.require_concept(concept)
    return sorted(
        dst for src, dst in deductive_closure(dm, role) if src == concept
    )
