"""Tests for the error hierarchy and top-level package surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaf_errors = [
            errors.ParseError,
            errors.SafetyError,
            errors.StratificationError,
            errors.EvaluationError,
            errors.FLogicParseError,
            errors.FLogicTranslationError,
            errors.SchemaError,
            errors.ConstraintViolation,
            errors.UnknownConceptError,
            errors.UnknownRoleError,
            errors.UndecidableFragmentError,
            errors.NoUpperBoundError,
            errors.PluginError,
            errors.CapabilityError,
            errors.RelStoreError,
            errors.RegistrationError,
            errors.PlanningError,
            errors.ViewError,
            errors.MediatorError,
            errors.XMLTransportError,
        ]
        for error_class in leaf_errors:
            assert issubclass(error_class, errors.ReproError)

    def test_flogic_parse_error_is_both(self):
        assert issubclass(errors.FLogicParseError, errors.FLogicError)
        assert issubclass(errors.FLogicParseError, errors.ParseError)

    def test_parse_error_position_reporting(self):
        exc = errors.ParseError("boom", text="ab\ncd", position=4)
        assert exc.line == 2
        assert exc.column == 2
        assert "line 2" in str(exc)

    def test_parse_error_without_position(self):
        exc = errors.ParseError("boom")
        assert exc.line is None

    def test_constraint_violation_carries_witnesses(self):
        exc = errors.ConstraintViolation("bad", witnesses=["w1", "w2"])
        assert exc.witnesses == ("w1", "w2")

    def test_catching_the_base_class_works_across_layers(self):
        from repro.datalog import parse_program
        from repro.domainmap import DomainMap, lub

        with pytest.raises(errors.ReproError):
            parse_program("p(")
        with pytest.raises(errors.ReproError):
            lub(DomainMap("t"), ["missing"])


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.1.0"

    def test_subpackages_importable(self):
        import repro.core
        import repro.datalog
        import repro.domainmap
        import repro.flogic
        import repro.gcm
        import repro.neuro
        import repro.sources
        import repro.xmlio

    def test_all_exports_resolve(self):
        import repro.core
        import repro.datalog
        import repro.domainmap
        import repro.flogic
        import repro.gcm
        import repro.neuro
        import repro.sources
        import repro.xmlio

        for module in (
            repro.core,
            repro.datalog,
            repro.domainmap,
            repro.flogic,
            repro.gcm,
            repro.neuro,
            repro.sources,
            repro.xmlio,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)


class TestSpan:
    def test_str_with_unit_only(self):
        assert str(errors.Span("view v")) == "view v"

    def test_str_with_line_column_and_detail(self):
        span = errors.Span("file.fl", detail="p(X).", line=3, column=7)
        assert str(span) == "file.fl:3:7 `p(X).`"

    def test_as_dict(self):
        span = errors.Span("u", detail="d", line=1, column=2)
        assert span.as_dict() == {
            "unit": "u",
            "detail": "d",
            "line": 1,
            "column": 2,
        }


class TestDiagnostic:
    def test_defaults_to_error_severity(self):
        diag = errors.Diagnostic("MBM001", "msg")
        assert diag.severity == errors.SEVERITY_ERROR

    def test_rejects_unknown_severity(self):
        with pytest.raises(ValueError):
            errors.Diagnostic("MBM001", "msg", severity="fatal")

    def test_str_rendering(self):
        diag = errors.Diagnostic(
            "MBM021", "isa cycle", severity="error",
            span=errors.Span("domain map d"),
        )
        assert str(diag) == "error[MBM021] isa cycle  (domain map d)"

    def test_as_dict_round_trip(self):
        diag = errors.Diagnostic("MBM007", "m", severity="warning")
        as_dict = diag.as_dict()
        assert as_dict["code"] == "MBM007"
        assert as_dict["severity"] == "warning"
        assert as_dict["span"] is None

    def test_sort_key_orders_by_severity_then_code(self):
        error = errors.Diagnostic("MBM030", "m", severity="error")
        warning = errors.Diagnostic("MBM005", "m", severity="warning")
        info = errors.Diagnostic("MBM008", "m", severity="info")
        assert sorted([info, warning, error], key=lambda d: d.sort_key()) == [
            error, warning, info,
        ]


class TestErrorDiagnostics:
    def test_every_error_class_has_a_code(self):
        for name in dir(errors):
            obj = getattr(errors, name)
            if isinstance(obj, type) and issubclass(obj, errors.ReproError):
                assert obj.code.startswith("MBM"), name

    def test_to_diagnostic_carries_code_and_message(self):
        exc = errors.SafetyError("unsafe rule")
        diag = exc.to_diagnostic()
        assert diag.code == "MBM001"
        assert diag.message == "unsafe rule"
        assert diag.severity == errors.SEVERITY_ERROR

    def test_code_override_at_raise_site(self):
        exc = errors.SafetyError("negated", code="MBM002")
        assert exc.to_diagnostic().code == "MBM002"

    def test_span_attachment(self):
        span = errors.Span("view v")
        exc = errors.ViewError("dead", span=span)
        assert exc.to_diagnostic().span is span

    def test_registration_error_carries_diagnostics(self):
        diags = (errors.Diagnostic("MBM024", "m"),)
        exc = errors.RegistrationError("rejected", diagnostics=diags)
        assert exc.diagnostics == diags
        assert errors.ViewError("v").diagnostics == ()
