"""Tests for the error hierarchy and top-level package surface."""

import pytest

import repro
from repro import errors


class TestErrorHierarchy:
    def test_everything_derives_from_repro_error(self):
        leaf_errors = [
            errors.ParseError,
            errors.SafetyError,
            errors.StratificationError,
            errors.EvaluationError,
            errors.FLogicParseError,
            errors.FLogicTranslationError,
            errors.SchemaError,
            errors.ConstraintViolation,
            errors.UnknownConceptError,
            errors.UnknownRoleError,
            errors.UndecidableFragmentError,
            errors.NoUpperBoundError,
            errors.PluginError,
            errors.CapabilityError,
            errors.RelStoreError,
            errors.RegistrationError,
            errors.PlanningError,
            errors.ViewError,
            errors.MediatorError,
            errors.XMLTransportError,
        ]
        for error_class in leaf_errors:
            assert issubclass(error_class, errors.ReproError)

    def test_flogic_parse_error_is_both(self):
        assert issubclass(errors.FLogicParseError, errors.FLogicError)
        assert issubclass(errors.FLogicParseError, errors.ParseError)

    def test_parse_error_position_reporting(self):
        exc = errors.ParseError("boom", text="ab\ncd", position=4)
        assert exc.line == 2
        assert exc.column == 2
        assert "line 2" in str(exc)

    def test_parse_error_without_position(self):
        exc = errors.ParseError("boom")
        assert exc.line is None

    def test_constraint_violation_carries_witnesses(self):
        exc = errors.ConstraintViolation("bad", witnesses=["w1", "w2"])
        assert exc.witnesses == ("w1", "w2")

    def test_catching_the_base_class_works_across_layers(self):
        from repro.datalog import parse_program
        from repro.domainmap import DomainMap, lub

        with pytest.raises(errors.ReproError):
            parse_program("p(")
        with pytest.raises(errors.ReproError):
            lub(DomainMap("t"), ["missing"])


class TestPackageSurface:
    def test_version(self):
        assert repro.__version__ == "1.0.0"

    def test_subpackages_importable(self):
        import repro.core
        import repro.datalog
        import repro.domainmap
        import repro.flogic
        import repro.gcm
        import repro.neuro
        import repro.sources
        import repro.xmlio

    def test_all_exports_resolve(self):
        import repro.core
        import repro.datalog
        import repro.domainmap
        import repro.flogic
        import repro.gcm
        import repro.neuro
        import repro.sources
        import repro.xmlio

        for module in (
            repro.core,
            repro.datalog,
            repro.domainmap,
            repro.flogic,
            repro.gcm,
            repro.neuro,
            repro.sources,
            repro.xmlio,
        ):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
