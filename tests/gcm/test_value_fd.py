"""Tests for value-range constraints and functional dependencies."""

import pytest

from repro.errors import SchemaError
from repro.gcm import (
    ConceptualModel,
    check,
    functional_dependency,
    value_range_constraint,
)


def cm_with(values):
    cm = ConceptualModel("t")
    cm.add_class("sample", methods={"kind": "string", "value": "float"})
    for index, (kind, value) in enumerate(values):
        obj = "s%d" % index
        cm.add_instance(obj, "sample")
        cm.set_value(obj, "kind", kind)
        cm.set_value(obj, "value", value)
    return cm


class TestValueRange:
    def test_enumeration_ok(self):
        cm = cm_with([("spine", 1.0), ("dendrite", 2.0)])
        constraint = value_range_constraint(
            "sample", "kind", allowed=["spine", "dendrite", "soma"]
        )
        assert check(cm, [constraint]).ok

    def test_enumeration_violation(self):
        cm = cm_with([("spine", 1.0), ("mystery", 2.0)])
        constraint = value_range_constraint(
            "sample", "kind", allowed=["spine", "dendrite"]
        )
        report = check(cm, [constraint])
        assert report.kinds() == ["w_value"]
        assert report.witnesses[0].context[-1] == "mystery"

    def test_minimum_violation(self):
        cm = cm_with([("spine", -1.0)])
        constraint = value_range_constraint("sample", "value", minimum=0)
        report = check(cm, [constraint])
        assert report.kinds() == ["w_value_low"]

    def test_maximum_violation(self):
        cm = cm_with([("spine", 99.0)])
        constraint = value_range_constraint("sample", "value", maximum=10)
        report = check(cm, [constraint])
        assert report.kinds() == ["w_value_high"]

    def test_interval_ok(self):
        cm = cm_with([("spine", 5.0)])
        constraint = value_range_constraint(
            "sample", "value", minimum=0, maximum=10
        )
        assert check(cm, [constraint]).ok

    def test_both_bounds_can_fire(self):
        cm = cm_with([("spine", -1.0), ("spine", 99.0)])
        constraint = value_range_constraint(
            "sample", "value", minimum=0, maximum=10
        )
        report = check(cm, [constraint])
        assert set(report.by_kind()) == {"w_value_low", "w_value_high"}

    def test_requires_some_bound(self):
        with pytest.raises(SchemaError):
            value_range_constraint("sample", "value")


class TestFunctionalDependency:
    def test_fd_holds(self):
        cm = cm_with([("spine", 1.0), ("spine", 1.0), ("dendrite", 2.0)])
        constraint = functional_dependency("sample", ["kind"], "value")
        assert check(cm, [constraint]).ok

    def test_fd_violated(self):
        cm = cm_with([("spine", 1.0), ("spine", 2.0)])
        constraint = functional_dependency("sample", ["kind"], "value")
        report = check(cm, [constraint])
        assert report.kinds() == ["w_fd"]
        # both orderings of the violating pair are reported
        assert len(report) == 2

    def test_composite_determinant(self):
        cm = ConceptualModel("t")
        cm.add_class(
            "m", methods={"a": "string", "b": "string", "c": "string"}
        )
        rows = [("x", "1", "p"), ("x", "2", "q"), ("x", "1", "p")]
        for index, (a, b, c) in enumerate(rows):
            obj = "o%d" % index
            cm.add_instance(obj, "m")
            cm.set_value(obj, "a", a)
            cm.set_value(obj, "b", b)
            cm.set_value(obj, "c", c)
        constraint = functional_dependency("m", ["a", "b"], "c")
        assert check(cm, [constraint]).ok
        cm.set_value("o2", "c", "r")  # o0 and o2 now disagree
        assert not check(cm, [constraint]).ok

    def test_requires_determinants(self):
        with pytest.raises(SchemaError):
            functional_dependency("m", [], "c")
