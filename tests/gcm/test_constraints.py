"""Tests for integrity constraints (Examples 2 and 3 of the paper)."""

import pytest

from repro.errors import ConstraintViolation, SchemaError
from repro.gcm import (
    ConceptualModel,
    Constraint,
    cardinality_constraint,
    check,
    constraint_from_text,
    existential_edge_constraint,
    key_constraint,
    partial_order_constraint,
    referential_constraint,
    scalar_method_constraint,
    universal_edge_constraint,
)


def make_cm():
    cm = ConceptualModel("t")
    cm.add_class("neuron")
    cm.add_class("axon")
    cm.add_relation("has", [("whole", "neuron"), ("part", "axon")])
    return cm


class TestPartialOrder:
    """Example 2: rules (1)-(3) over R and C."""

    def test_consistent_hierarchy(self):
        cm = ConceptualModel("t")
        cm.add_class("a")
        cm.add_class("b", superclasses=["a"])
        cm.add_class("c", superclasses=["b"])
        report = check(cm, [partial_order_constraint("subclass", "class")])
        assert report.ok

    def test_cycle_detected_by_antisymmetry(self):
        cm = ConceptualModel("t")
        cm.add_class("a", superclasses=["b"])
        cm.add_class("b", superclasses=["a"])
        report = check(cm, [partial_order_constraint("subclass", "class")])
        assert report.kinds() == ["was"]
        assert len(report) == 2  # (a,b) and (b,a)

    def test_reflexivity_violation_on_plain_relation(self):
        # A user relation without the reflexivity axiom of '::'.
        cm = ConceptualModel("t")
        cm.add_class("node")
        cm.add_instance("x", "node")
        cm.add_datalog("r(x, x2).")
        report = check(cm, [partial_order_constraint("r", "node")])
        assert "wrc" in report.kinds()

    def test_transitivity_violation(self):
        cm = ConceptualModel("t")
        cm.add_class("node")
        for obj in ("x", "y", "z"):
            cm.add_instance(obj, "node")
        cm.add_datalog("r(x, x). r(y, y). r(z, z). r(x, y). r(y, z).")
        report = check(cm, [partial_order_constraint("r", "node")])
        kinds = report.by_kind()
        assert "wtc" in kinds
        contexts = {w.context for w in kinds["wtc"]}
        assert ("node", "r", "x", "y", "z") in contexts

    def test_witness_context_identifies_violation(self):
        cm = ConceptualModel("t")
        cm.add_class("a", superclasses=["b"])
        cm.add_class("b", superclasses=["a"])
        report = check(cm, [partial_order_constraint("subclass", "class")])
        contexts = {w.context for w in report}
        assert ("class", "subclass", "a", "b") in contexts


class TestCardinality:
    """Example 3: has(neuron, axon) with card_A = 1 and card_B <= 2."""

    def constraints(self):
        return [
            cardinality_constraint("has", 2, counted_position=0, exact=1),
            cardinality_constraint("has", 2, counted_position=1, max_count=2),
        ]

    def test_consistent_data(self):
        cm = make_cm()
        cm.add_relation_instance("has", whole="n1", part="a1")
        cm.add_relation_instance("has", whole="n1", part="a2")
        assert check(cm, self.constraints()).ok

    def test_axon_in_two_neurons(self):
        cm = make_cm()
        cm.add_relation_instance("has", whole="n1", part="a1")
        cm.add_relation_instance("has", whole="n2", part="a1")
        report = check(cm, self.constraints())
        kinds = report.by_kind()
        assert "w_card_neq" in kinds
        assert kinds["w_card_neq"][0].context == ("has", 0, "a1", 2)

    def test_neuron_with_three_axons(self):
        cm = make_cm()
        for axon in ("a1", "a2", "a3"):
            cm.add_relation_instance("has", whole="n1", part=axon)
        report = check(cm, self.constraints())
        kinds = report.by_kind()
        assert "w_card_gt" in kinds
        assert kinds["w_card_gt"][0].context == ("has", 1, "n1", 3)

    def test_min_count_with_group_class(self):
        cm = make_cm()
        cm.add_instance("n1", "neuron")
        cm.add_instance("n2", "neuron")
        cm.add_relation_instance("has", whole="n1", part="a1")
        constraint = cardinality_constraint(
            "has", 2, counted_position=1, min_count=1, group_class="neuron"
        )
        report = check(cm, [constraint])
        # n2 has no axons at all -> zero-count witness
        kinds = report.by_kind()
        assert "w_card_lt" in kinds
        assert kinds["w_card_lt"][0].context == ("has", 1, "n2", 0)

    def test_min_count_requires_group_class(self):
        with pytest.raises(SchemaError):
            cardinality_constraint("has", 2, counted_position=1, min_count=1)

    def test_exactly_one_bound_spec(self):
        with pytest.raises(SchemaError):
            cardinality_constraint("has", 2, counted_position=0)
        with pytest.raises(SchemaError):
            cardinality_constraint(
                "has", 2, counted_position=0, exact=1, max_count=2
            )

    def test_position_bounds_checked(self):
        with pytest.raises(SchemaError):
            cardinality_constraint("has", 2, counted_position=2, exact=1)

    def test_ternary_relation_grouping(self):
        cm = ConceptualModel("t")
        cm.add_class("a")
        cm.add_relation("m", [("x", "a"), ("y", "a"), ("z", "a")])
        cm.add_relation_instance("m", x="1", y="g", z="h")
        cm.add_relation_instance("m", x="2", y="g", z="h")
        constraint = cardinality_constraint("m", 3, counted_position=0, max_count=1)
        report = check(cm, [constraint])
        assert len(report) == 1
        assert report.witnesses[0].context == ("m", 0, "g", "h", 2)


class TestOtherConstraints:
    def test_scalar_method(self):
        cm = ConceptualModel("t")
        cm.add_class("neuron", methods={"location": "string"})
        cm.add_instance("n1", "neuron")
        cm.set_value("n1", "location", "cerebellum")
        cm.set_value("n1", "location", "hippocampus")
        report = check(cm, [scalar_method_constraint("neuron", "location")])
        assert report.kinds() == ["w_scalar"]

    def test_scalar_method_single_value_ok(self):
        cm = ConceptualModel("t")
        cm.add_class("neuron", methods={"location": "string"})
        cm.add_instance("n1", "neuron")
        cm.set_value("n1", "location", "cerebellum")
        assert check(cm, [scalar_method_constraint("neuron", "location")]).ok

    def test_key_constraint_violated(self):
        cm = ConceptualModel("t")
        cm.add_class("protein", methods={"name": "string"})
        for obj in ("p1", "p2"):
            cm.add_instance(obj, "protein")
            cm.set_value(obj, "name", "calbindin")
        report = check(cm, [key_constraint("protein", ["name"])])
        assert report.kinds() == ["w_key"]

    def test_key_constraint_satisfied(self):
        cm = ConceptualModel("t")
        cm.add_class("protein", methods={"name": "string"})
        cm.add_instance("p1", "protein")
        cm.set_value("p1", "name", "calbindin")
        cm.add_instance("p2", "protein")
        cm.set_value("p2", "name", "ryr")
        assert check(cm, [key_constraint("protein", ["name"])]).ok

    def test_key_constraint_needs_methods(self):
        with pytest.raises(SchemaError):
            key_constraint("protein", [])

    def test_referential_constraint(self):
        cm = make_cm()
        cm.add_instance("n1", "neuron")
        cm.add_relation_instance("has", whole="n1", part="a1")  # a1 untyped
        report = check(cm, [referential_constraint("has", 2, 1, "axon")])
        assert report.kinds() == ["w_ref"]
        assert report.witnesses[0].context == ("has", 1, "a1")

    def test_referential_constraint_satisfied(self):
        cm = make_cm()
        cm.add_instance("n1", "neuron")
        cm.add_instance("a1", "axon")
        cm.add_relation_instance("has", whole="n1", part="a1")
        assert check(cm, [referential_constraint("has", 2, 1, "axon")]).ok

    def test_existential_edge_constraint(self):
        # dendrite -has-> branch as data-completeness check
        cm = ConceptualModel("t")
        cm.add_class("dendrite")
        cm.add_class("branch")
        cm.add_instance("d1", "dendrite")
        cm.add_instance("d2", "dendrite")
        cm.add_instance("b1", "branch")
        cm.add_datalog("has(d1, b1).")
        report = check(
            cm, [existential_edge_constraint("dendrite", "has", "branch")]
        )
        assert len(report) == 1
        assert report.witnesses[0].context == ("dendrite", "has", "branch", "d2")

    def test_universal_edge_constraint(self):
        cm = ConceptualModel("t")
        cm.add_class("my_neuron")
        cm.add_class("my_dendrite")
        cm.add_instance("n1", "my_neuron")
        cm.add_datalog("has(n1, d_ok). has(n1, d_bad). instance(d_ok, my_dendrite).")
        report = check(
            cm, [universal_edge_constraint("my_neuron", "has", "my_dendrite")]
        )
        assert len(report) == 1
        assert report.witnesses[0].context[-1] == "d_bad"


class TestCheckMachinery:
    def test_raise_on_violation(self):
        cm = ConceptualModel("t")
        cm.add_class("a", superclasses=["b"])
        cm.add_class("b", superclasses=["a"])
        with pytest.raises(ConstraintViolation) as info:
            check(
                cm,
                [partial_order_constraint("subclass", "class")],
                raise_on_violation=True,
            )
        assert len(info.value.witnesses) == 2

    def test_constraints_attached_to_cm_are_used(self):
        cm = make_cm()
        cm.add_relation_instance("has", whole="n1", part="a1")
        cm.add_relation_instance("has", whole="n2", part="a1")
        cm.add_constraint(
            cardinality_constraint("has", 2, counted_position=0, exact=1)
        )
        assert not check(cm).ok

    def test_constraint_from_text(self):
        cm = ConceptualModel("t")
        cm.add_class("c")
        cm.add_instance("x", "c")
        constraint = constraint_from_text(
            "no_c", "instance(w_no_c(X), ic) :- instance(X, c)."
        )
        report = check(cm, [constraint])
        assert report.witnesses[0].kind == "w_no_c"

    def test_report_str_consistent(self):
        cm = ConceptualModel("t")
        cm.add_class("c")
        assert "consistent" in str(check(cm, []))

    def test_report_str_lists_witnesses(self):
        cm = ConceptualModel("t")
        cm.add_class("a", superclasses=["b"])
        cm.add_class("b", superclasses=["a"])
        text = str(check(cm, [partial_order_constraint("subclass", "class")]))
        assert "was(" in text

    def test_rules_accepted_directly(self):
        cm = make_cm()
        cm.add_relation_instance("has", whole="n1", part="a1")
        report = check(
            cm.all_rules(include_constraints=False),
            [cardinality_constraint("has", 2, counted_position=0, exact=1)],
        )
        assert report.ok
