"""Tests for the higher-order relation bridge (Example 2's R variable)."""

import pytest

from repro.gcm import (
    ConceptualModel,
    check,
    higher_order_bridge,
    partial_order_constraint,
    partial_order_constraint_ho,
)


def build_cm():
    cm = ConceptualModel("ho")
    cm.add_class("node")
    for obj in ("x", "y", "z"):
        cm.add_instance(obj, "node")
    # r is a partial order; s violates antisymmetry
    cm.add_datalog(
        """
        r(x, x). r(y, y). r(z, z). r(x, y). r(y, z). r(x, z).
        s(x, x). s(y, y). s(z, z). s(x, y). s(y, x).
        """
    )
    return cm


class TestHigherOrderBridge:
    def test_rel2_facts_materialized(self):
        cm = build_cm()
        cm.add_datalog(higher_order_bridge(["r", "s"]))
        engine = cm.to_engine()
        assert engine.holds("rel2(r, x, y)")
        assert engine.holds("rel2(s, y, x)")
        assert not engine.holds("rel2(r, y, x)")

    def test_rule_with_relation_variable(self):
        cm = build_cm()
        cm.add_datalog(higher_order_bridge(["r", "s"]))
        cm.add_datalog("symmetric_pair(R, X, Y) :- rel2(R, X, Y), rel2(R, Y, X), X != Y.")
        engine = cm.to_engine()
        rows = engine.ask("symmetric_pair(R, X, Y)")
        assert {row["R"] for row in rows} == {"s"}


class TestHigherOrderPartialOrder:
    def test_checks_all_relations_at_once(self):
        report = check(
            build_cm(), [partial_order_constraint_ho(["r", "s"], "node")]
        )
        kinds = report.by_kind()
        assert "was" in kinds
        # every witness names the violating relation s, never r
        assert {w.context[1] for w in kinds["was"]} == {"s"}

    def test_agrees_with_first_order_version(self):
        ho_report = check(
            build_cm(), [partial_order_constraint_ho(["s"], "node")]
        )
        fo_report = check(build_cm(), [partial_order_constraint("s", "node")])
        assert {str(w) for w in ho_report} == {str(w) for w in fo_report}

    def test_clean_relation_passes(self):
        report = check(
            build_cm(), [partial_order_constraint_ho(["r"], "node")]
        )
        assert report.ok

    def test_reflexivity_witness_names_relation(self):
        cm = ConceptualModel("t")
        cm.add_class("node")
        cm.add_instance("a", "node")
        cm.add_datalog("q(a, a2).")
        report = check(cm, [partial_order_constraint_ho(["q"], "node")])
        assert any(
            w.kind == "wrc" and w.context[1] == "q" for w in report
        )
