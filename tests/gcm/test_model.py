"""Unit tests for ConceptualModel schema/data compilation."""

import pytest

from repro.datalog.terms import Struct
from repro.errors import SchemaError
from repro.gcm import ConceptualModel, MethodDef, RelationDef


@pytest.fixture
def neuron_cm():
    cm = ConceptualModel("neuro")
    cm.add_class("compartment")
    cm.add_class(
        "neuron",
        methods={"location": "string", "proteins": ("protein", True)},
    )
    cm.add_class("axon", superclasses=["compartment"])
    cm.add_relation("has", [("whole", "neuron"), ("part", "compartment")])
    return cm


class TestSchemaDeclarations:
    def test_duplicate_class_rejected(self, neuron_cm):
        with pytest.raises(SchemaError):
            neuron_cm.add_class("neuron")

    def test_duplicate_relation_rejected(self, neuron_cm):
        with pytest.raises(SchemaError):
            neuron_cm.add_relation("has", [("a", "x")])

    def test_duplicate_role_names_rejected(self):
        with pytest.raises(SchemaError):
            RelationDef("r", [("a", "x"), ("a", "y")])

    def test_empty_relation_rejected(self):
        with pytest.raises(SchemaError):
            RelationDef("r", [])

    def test_duplicate_method_rejected(self):
        cm = ConceptualModel("m")
        with pytest.raises(SchemaError):
            cm.add_class("c", methods={"m": "t"}).add_method(MethodDef("m", "t"))

    def test_role_index(self, neuron_cm):
        relation = neuron_cm.relations["has"]
        assert relation.role_index("whole") == 0
        assert relation.role_index("part") == 1
        with pytest.raises(SchemaError):
            relation.role_index("nope")

    def test_class_and_relation_names(self, neuron_cm):
        assert neuron_cm.class_names() == ["axon", "compartment", "neuron"]
        assert neuron_cm.relation_names() == ["has"]

    def test_describe_mentions_everything(self, neuron_cm):
        text = neuron_cm.describe()
        assert "class neuron" in text
        assert "relation has" in text
        assert "location => string" in text
        assert "proteins =>> protein" in text


class TestInstanceData:
    def test_add_instance_requires_declared_class(self, neuron_cm):
        with pytest.raises(SchemaError):
            neuron_cm.add_instance("x", "undeclared")

    def test_relation_instance_role_check(self, neuron_cm):
        with pytest.raises(SchemaError):
            neuron_cm.add_relation_instance("has", whole="n1")
        with pytest.raises(SchemaError):
            neuron_cm.add_relation_instance("has", whole="n1", part="a1", extra=1)
        with pytest.raises(SchemaError):
            neuron_cm.add_relation_instance("nope", a="b")

    def test_instances_visible_in_engine(self, neuron_cm):
        neuron_cm.add_instance("n1", "neuron")
        neuron_cm.set_value("n1", "location", "hippocampus")
        engine = neuron_cm.to_engine()
        assert engine.holds("n1 : neuron")
        assert engine.ask("n1[location -> L]") == [{"L": "hippocampus"}]

    def test_subclass_membership_through_engine(self, neuron_cm):
        neuron_cm.add_instance("a1", "axon")
        engine = neuron_cm.to_engine()
        assert engine.holds("a1 : compartment")

    def test_method_signature_visible(self, neuron_cm):
        engine = neuron_cm.to_engine()
        rows = engine.ask("neuron[location => T]")
        assert rows == [{"T": "string"}]


class TestRelationBridge:
    def test_flat_predicate_from_add(self, neuron_cm):
        neuron_cm.add_relation_instance("has", whole="n1", part="a1")
        engine = neuron_cm.to_engine()
        assert engine.holds("has(n1, a1)")

    def test_tuple_object_created(self, neuron_cm):
        neuron_cm.add_relation_instance("has", whole="n1", part="a1")
        engine = neuron_cm.to_engine()
        rows = engine.ask("T : has[whole -> n1; part -> a1]")
        assert len(rows) == 1
        assert isinstance(rows[0]["T"], Struct)
        assert rows[0]["T"].functor == "t_has"

    def test_roles_as_method_signatures(self, neuron_cm):
        # Table 1: relation(R, A1=C1, ...) becomes R[A1 => C1; ...].
        engine = neuron_cm.to_engine()
        rows = engine.ask("has[whole => T]")
        assert rows == [{"T": "neuron"}]

    def test_tuple_object_to_flat_predicate(self, neuron_cm):
        # Asserting an object of class `has` with both roles makes the
        # flat predicate fact derivable (Table 1 equivalence).
        neuron_cm.add_instance("n9", "neuron")
        neuron_cm.add_datalog(
            """
            instance(h1, has).
            method_inst(h1, whole, n9).
            method_inst(h1, part, a9).
            """
        )
        engine = neuron_cm.to_engine()
        assert engine.holds("has(n9, a9)")

    def test_relation_sig_facts(self, neuron_cm):
        engine = neuron_cm.to_engine()
        rows = engine.ask("relation_sig(has, I, R, C)")
        assert len(rows) == 2


class TestSemanticRules:
    def test_fl_rule(self, neuron_cm):
        neuron_cm.add_instance("n1", "neuron")
        neuron_cm.set_value("n1", "location", "hippocampus")
        neuron_cm.add_rule(
            "X : hippocampal :- X : neuron[location -> hippocampus]."
        )
        engine = neuron_cm.to_engine()
        assert engine.instances_of("hippocampal") == ["n1"]

    def test_datalog_rule(self, neuron_cm):
        neuron_cm.add_relation_instance("has", whole="n1", part="a1")
        neuron_cm.add_datalog("part_of(P, W) :- has(W, P).")
        engine = neuron_cm.to_engine()
        assert engine.ask("part_of(P, W)") == [{"P": "a1", "W": "n1"}]
