"""Scenario-scale integrity checking and evaluation invariants."""

import pytest

from repro.datalog.ast import Program, Rule
from repro.datalog.engine import evaluate
from repro.domainmap import edge_constraint_rules
from repro.gcm import cardinality_constraint, scalar_method_constraint
from repro.gcm.constraints import witnesses_from_store
from repro.neuro import build_scenario


@pytest.fixture(scope="module")
def mediator():
    return build_scenario().mediator


class TestEvaluationInvariants:
    def test_mediated_kb_is_stratified(self, mediator):
        # the assembled program must never need the well-founded
        # fallback: that would multiply evaluation cost by the number
        # of alternating-fixpoint rounds
        result = mediator.evaluate()
        assert not result.used_well_founded

    def test_every_lifted_object_is_anchored_once(self, mediator):
        report = mediator.check_integrity(
            [cardinality_constraint("anchor", 2, counted_position=1, exact=1)]
        )
        assert report.ok

    def test_scalar_attributes_single_valued(self, mediator):
        report = mediator.check_integrity(
            [
                scalar_method_constraint("protein_amount", "amount"),
                scalar_method_constraint("neurotransmission", "organism"),
                scalar_method_constraint("reconstruction", "length_um"),
            ]
        )
        assert report.ok


class TestDMEdgeIntegrity:
    def _check_edge(self, mediator, source, role, target):
        """Two-phase check of one DM edge over the mediated base."""
        materialized = mediator.evaluate().store
        phase2 = Program()
        for atom in materialized.iter_atoms():
            phase2.add(Rule(atom))
        phase2.extend(edge_constraint_rules(source, role, target))
        return witnesses_from_store(evaluate(phase2).store)

    def test_filling_an_edge_removes_its_witness(self, mediator):
        # differential check: satisfy the edge for one object and its
        # witness disappears while the others remain
        before = self._check_edge(mediator, "Purkinje_Cell", "proj", "Neuron")
        assert before
        fixed_obj = before[0].context[-1]

        materialized = mediator.evaluate().store
        phase2 = Program()
        for atom in materialized.iter_atoms():
            phase2.add(Rule(atom))
        phase2.extend(edge_constraint_rules("Purkinje_Cell", "proj", "Neuron"))
        # supply the missing successor for one object
        phase2.extend(
            Program()
            .add_fact("role_inst", "proj", fixed_obj, "target_neuron")
            .add_fact("instance", "target_neuron", "Neuron")
        )
        after = witnesses_from_store(evaluate(phase2).store)
        remaining = {witness.context[-1] for witness in after}
        assert fixed_obj not in remaining
        assert len(after) == len(before) - 1

    def test_incomplete_edge_reports_witnesses(self, mediator):
        # nothing provides 'proj' role facts at the instance level, so
        # reading the MyNeuron-style edge as data-completeness fails
        # for every anchored Purkinje_Cell instance: the IC machinery
        # surfaces exactly the anchored objects
        witnesses = self._check_edge(
            mediator, "Purkinje_Cell", "proj", "Neuron"
        )
        anchored = {
            row["X"] for row in mediator.ask("anchor(X, 'Purkinje_Cell')")
        }
        violating = {witness.context[-1] for witness in witnesses}
        assert anchored <= violating
