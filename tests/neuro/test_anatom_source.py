"""Tests for the ANATOM atlas source and in-scenario DM refinement."""

import pytest

from repro.neuro import build_scenario
from repro.neuro.anatom_source import DM_REFINEMENT, build_anatom_source


@pytest.fixture(scope="module")
def scenario():
    return build_scenario(include_anatom_source=True)


@pytest.fixture(scope="module")
def mediator(scenario):
    return scenario.mediator


class TestAnatomSource:
    def test_four_sources(self, mediator):
        assert mediator.source_names() == [
            "ANATOM",
            "NCMIR",
            "SENSELAB",
            "SYNAPSE",
        ]

    def test_refinement_extended_dm(self, mediator):
        for concept in ("Basket_Cell", "Stellate_Cell", "Golgi_Cell"):
            assert concept in mediator.dm.concepts
        assert (
            "Cerebellar_Cortex",
            "has",
            "Basket_Cell",
        ) in mediator.dm.role_triples()

    def test_new_concepts_in_isa_hierarchy(self, mediator):
        from repro.domainmap import isa_closure

        closure = isa_closure(mediator.dm)
        assert ("Basket_Cell", "Neuron") in closure
        assert ("Basket_Axon", "Compartment") in closure

    def test_census_anchored(self, mediator):
        rows = mediator.ask("X : cell_census[cell_type -> T; per_mm3 -> N]")
        assert len(rows) == 7
        # anchored at regions, so region-level queries see them
        assert mediator.ask("X : 'Cerebellar_Cortex'[per_mm3 -> N]")

    def test_source_rule_active(self, mediator):
        rows = mediator.ask("X : abundant_cell_type")
        assert len(rows) == 4  # granule, stellate, CA1 pyramidal, MSN

    def test_region_traversal_reaches_new_cells(self, mediator):
        from repro.domainmap import downward_closure

        region = downward_closure(mediator.dm, "Cerebellar_Cortex", "has")
        assert {"Basket_Cell", "Stellate_Cell", "Golgi_Cell"} <= region

    def test_section5_query_unaffected(self, mediator):
        from repro.neuro import section5_query

        plan, context = mediator.correlate(section5_query())
        # ANATOM anchors at Cerebellar_Cortex etc., not at the query's
        # Purkinje concepts with protein_amount, so selection is stable
        assert context.selected_sources == ["NCMIR"]

    def test_default_scenario_excludes_anatom(self):
        assert build_scenario().mediator.source_names() == [
            "NCMIR",
            "SENSELAB",
            "SYNAPSE",
        ]

    def test_census_deterministic(self):
        first = build_anatom_source().export_all_facts()
        second = build_anatom_source().export_all_facts()
        assert [str(f) for f in first] == [str(f) for f in second]

    def test_refinement_is_parseable(self):
        from repro.domainmap import parse_axioms

        axioms = parse_axioms(DM_REFINEMENT)
        assert len(axioms) == 8
