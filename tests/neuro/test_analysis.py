"""Tests for mediated analyses (FL aggregates over views and anchors)."""

import pytest

from repro.neuro import build_scenario
from repro.neuro.analysis import (
    correlate_worlds,
    protein_amount_by_compartment,
    spine_length_by_condition,
    spine_length_by_species_age,
)


@pytest.fixture(scope="module")
def mediator():
    return build_scenario(seed=2001, scale=2).mediator


class TestSpineAnalyses:
    def test_condition_ordering(self, mediator):
        means = spine_length_by_condition(mediator)
        assert set(means) == {"control", "enriched", "deprived"}
        # the generator encodes: enrichment grows spines
        assert means["enriched"] > means["control"] > means["deprived"]

    def test_species_age_sweep_complete(self, mediator):
        means = spine_length_by_species_age(mediator)
        assert set(means) == {
            (species, age)
            for species in ("rat", "mouse")
            for age in (14, 30, 90)
        }
        assert all(value > 0 for value in means.values())


class TestProteinAnalyses:
    def test_calcium_by_compartment(self, mediator):
        totals = protein_amount_by_compartment(mediator, "calcium")
        # only Purkinje-side anchors carry calcium measurements
        assert set(totals) <= {
            "Purkinje_Cell",
            "Purkinje_Dendrite",
            "Purkinje_Soma",
            "Purkinje_Spine",
        }
        assert totals["Purkinje_Dendrite"] > totals["Purkinje_Cell"]

    def test_other_ion_differs(self, mediator):
        chloride = protein_amount_by_compartment(mediator, "chloride")
        calcium = protein_amount_by_compartment(mediator, "calcium")
        assert chloride != calcium
        assert set(chloride) <= {"Purkinje_Dendrite", "Purkinje_Soma"}


class TestWorldCorrelation:
    def test_worlds_join_through_anchors(self, mediator):
        table = correlate_worlds(mediator)
        # SYNAPSE contributes morphometry at pyramidal concepts
        assert table["Pyramidal_Spine"]["reconstructions"] > 0
        # NCMIR contributes protein counts at Purkinje concepts
        assert table["Purkinje_Dendrite"]["calcium_binding_proteins"] == 4

    def test_no_fabricated_overlap(self, mediator):
        table = correlate_worlds(mediator)
        # the two worlds stay distinct at the instance level: no concept
        # carries both kinds of data in this scenario
        assert not any(
            "reconstructions" in info and "calcium_binding_proteins" in info
            for info in table.values()
        )
