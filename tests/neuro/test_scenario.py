"""Integration tests: the full KIND Neuroscience scenario."""

import pytest

from repro.core import CorrelationQuery
from repro.domainmap import Reasoner, edge_census, has_a_star, isa_closure, lub
from repro.errors import PlanningError
from repro.neuro import (
    FIGURE3_REGISTRATION,
    build_anatom,
    build_figure1,
    build_figure3_base,
    build_ncmir,
    build_scenario,
    build_senselab,
    build_synapse,
    section5_query,
)
from repro.neuro.ncmir import generate_rows as ncmir_rows
from repro.neuro.senselab import generate_rows as senselab_rows
from repro.neuro.synapse import generate_rows as synapse_rows


@pytest.fixture(scope="module")
def scenario():
    return build_scenario()


@pytest.fixture(scope="module")
def mediator(scenario):
    return scenario.mediator


class TestAnatomDomainMap:
    def test_figure1_shape(self):
        dm = build_figure1()
        census = edge_census(dm)
        assert census == {"eqv": 2, "ex": 10, "isa": 10}
        assert len(dm.concepts) == 16

    def test_figure1_axiom_consequences(self):
        dm = build_figure1()
        closure = isa_closure(dm)
        assert ("Purkinje_Cell", "Neuron") in closure
        star = has_a_star(dm, "has")
        assert ("Purkinje_Cell", "Spine") in star
        assert ("Pyramidal_Cell", "Spine") in star

    def test_figure3_registration(self):
        from repro.domainmap import definite_projections, register_concepts

        dm = build_figure3_base()
        result = register_concepts(dm, FIGURE3_REGISTRATION)
        assert result.new_concepts == ["MyDendrite", "MyNeuron"]
        assert definite_projections(dm, "MyNeuron", "proj") == [
            "Globus_Pallidus_External"
        ]

    def test_anatom_contains_all_layers(self):
        dm = build_anatom()
        for concept in ("Spine", "Medium_Spiny_Neuron", "Cerebellum", "Parallel_Fiber"):
            assert concept in dm.concepts

    def test_region_containment(self):
        dm = build_anatom()
        star = has_a_star(dm, "has")
        assert ("Cerebellum", "Cerebellar_Cortex") in star
        assert ("Purkinje_Cell", "Purkinje_Dendrite") in star

    def test_lub_of_purkinje_parts(self):
        dm = build_anatom()
        assert lub(dm, ["Purkinje_Dendrite", "Purkinje_Soma"], order="has") == "Purkinje_Cell"
        assert lub(dm, ["Purkinje_Cell", "Purkinje_Dendrite"], order="has") == "Purkinje_Cell"


class TestSourceGenerators:
    def test_deterministic(self):
        assert ncmir_rows(seed=7) == ncmir_rows(seed=7)
        assert synapse_rows(seed=7) == synapse_rows(seed=7)
        assert senselab_rows(seed=7) == senselab_rows(seed=7)

    def test_seed_changes_data(self):
        assert ncmir_rows(seed=7) != ncmir_rows(seed=8)

    def test_scale_multiplies(self):
        assert len(ncmir_rows(scale=2)) == 2 * len(ncmir_rows(scale=1))
        assert len(senselab_rows(scale=3)) == 3 * len(senselab_rows(scale=1))

    def test_ncmir_has_calcium_and_controls(self):
        ions = {row["ion"] for row in ncmir_rows()}
        assert "calcium" in ions
        assert len(ions) > 1

    def test_synapse_condition_effect(self):
        rows = synapse_rows(seed=3, scale=4)
        spines = [r for r in rows if "spine" in r["location"]]
        mean = lambda cond: sum(
            r["length_um"] for r in spines if r["condition"] == cond
        ) / len([r for r in spines if r["condition"] == cond])
        assert mean("enriched") > mean("deprived")

    def test_senselab_parallel_fiber_pathway_present(self):
        rows = senselab_rows()
        pf = [r for r in rows if r["t_compartment"] == "parallel fiber"]
        assert pf
        assert all(r["r_neuron"] == "Purkinje_Cell" for r in pf)


class TestMediatedSystem:
    def test_three_sources_registered(self, mediator):
        assert mediator.source_names() == ["NCMIR", "SENSELAB", "SYNAPSE"]

    def test_wire_messages_logged(self, mediator):
        assert len(mediator.wire_log) == 3

    def test_multiple_worlds_visible_through_dm(self, mediator):
        # SYNAPSE data is Spine data; NCMIR data is Dendrite data —
        # both visible through their DM superconcepts.
        assert len(mediator.ask("X : 'Pyramidal_Spine'")) > 0
        assert len(mediator.ask("X : 'Spine'")) > 0
        assert len(mediator.ask("X : 'Purkinje_Dendrite'")) > 0
        assert len(mediator.ask("X : 'Compartment'")) > 0

    def test_loose_federation_join(self, mediator):
        # Example 1's correlation: spine morphology (SYNAPSE) and
        # calcium-binding proteins (NCMIR) meet at the Spine concept.
        spine_objects = {r["X"] for r in mediator.ask("X : 'Spine'")}
        assert any(obj.startswith("SYNAPSE") for obj in spine_objects)
        assert any(obj.startswith("NCMIR") for obj in spine_objects)

    def test_views_answer(self, mediator):
        names = {r["N"] for r in mediator.ask("X : calcium_binding_protein[name -> N]")}
        assert "Ryanodine Receptor" in names
        assert "GABA-A Receptor" not in names

    def test_spine_change_view(self, mediator):
        rows = mediator.ask("X : spine_change[condition -> C; length_um -> L]")
        assert {r["C"] for r in rows} == {"control", "enriched", "deprived"}

    def test_neurotransmission_path_view(self, mediator):
        rows = mediator.ask(
            "X : neurotransmission_path[from -> 'Granule Cell'; to -> T]"
        )
        assert {r["T"] for r in rows} == {"Purkinje_Cell"}

    def test_source_semantic_rules_active(self, mediator):
        assert len(mediator.ask("X : excitatory_transmission")) > 0
        assert len(mediator.ask("X : large_spine")) > 0


class TestExample4:
    def test_protein_distribution(self, mediator):
        distribution = mediator.compute_distribution(
            "Cerebellum",
            "amount",
            group_attr="protein_name",
            group_value="Ryanodine Receptor",
            filters={"organism": "rat"},
        )
        dendrite = distribution.row("Purkinje_Dendrite")
        soma = distribution.row("Purkinje_Soma")
        assert dendrite.direct is not None
        assert soma.direct is not None
        # dendritic RyR dominates somatic RyR (the generator encodes the
        # known biology: mean 8.0 vs 3.0)
        assert dendrite.direct > soma.direct
        assert distribution.total() == pytest.approx(
            sum(row.direct for row in distribution.rows if row.direct)
        )

    def test_distribution_isolated_from_hippocampus(self, mediator):
        cerebellum = mediator.compute_distribution(
            "Cerebellum", "amount", group_attr="protein_name", group_value="Calbindin"
        )
        assert cerebellum.row("Pyramidal_Dendrite") is None or (
            cerebellum.row("Pyramidal_Dendrite").direct is None
        )

    def test_materialized_view_queryable(self):
        scenario = build_scenario()
        mediator = scenario.mediator
        mediator.materialize_distribution(
            "protein_distribution",
            "Ryanodine Receptor",
            "Cerebellum",
            filters={"organism": "rat"},
            extra={"animal": "rat"},
        )
        rows = mediator.ask(
            "D : protein_distribution[protein_name -> 'Ryanodine Receptor'; animal -> A]"
        )
        assert rows == [{"A": "rat", "D": rows[0]["D"]}]


class TestSection5Query:
    def test_plan_shape(self, mediator):
        plan = mediator.plan(section5_query())
        assert plan.kinds == [
            "push-selection",
            "select-sources",
            "retrieve",
            "compute-lub",
            "aggregate",
        ]

    def test_source_selection_returns_only_ncmir(self, mediator):
        plan, context = mediator.correlate(section5_query())
        assert context.selected_sources == ["NCMIR"]

    def test_lub_is_purkinje_cell(self, mediator):
        plan, context = mediator.correlate(section5_query())
        assert context.root == "Purkinje_Cell"

    def test_answers_are_calcium_binders_only(self, mediator):
        plan, context = mediator.correlate(section5_query())
        proteins = {group for group, _dist in context.answers}
        assert "Ryanodine Receptor" in proteins
        assert "Calbindin" in proteins
        assert "GABA-A Receptor" not in proteins
        assert "Kv1.1 Channel" not in proteins

    def test_distributions_nonempty(self, mediator):
        plan, context = mediator.correlate(section5_query())
        for _group, distribution in context.answers:
            assert distribution.total() is not None
            assert distribution.total() > 0

    def test_seed_bindings_limited_to_rat_parallel_fiber(self, mediator):
        plan, context = mediator.correlate(section5_query())
        rows = context.rows[("SENSELAB", "neurotransmission")]
        assert all(row["organism"] == "rat" for row in rows)
        assert all(
            row["transmitting_compartment"] == "parallel fiber" for row in rows
        )

    def test_unanswerable_seed_selection_rejected_at_planning(self, mediator):
        bad = CorrelationQuery(
            seed_class="neurotransmission",
            seed_selections={"epsp_mv": 1.0},  # not a declared pattern
            anchor_attrs=("receiving_neuron",),
            target_class="protein_amount",
            target_anchor_attr="location",
            group_attr="protein_name",
            value_attr="amount",
            seed_source="SENSELAB",
        )
        with pytest.raises(PlanningError):
            mediator.plan(bad)

    def test_seed_source_inferred(self, mediator):
        query = section5_query()
        query.seed_source = None
        plan = mediator.plan(query)
        assert plan.steps[0].source == "SENSELAB"

    def test_plan_describe_readable(self, mediator):
        text = mediator.plan(section5_query()).describe()
        assert "push" in text
        assert "lub" in text

    def test_lazy_scenario_also_answers(self):
        lazy = build_scenario(eager=False)
        plan, context = lazy.mediator.correlate(section5_query())
        proteins = {group for group, _dist in context.answers}
        assert "Ryanodine Receptor" in proteins


class TestReasoningOverAnatom:
    def test_figure1_fragment_reasoner(self):
        # Figure 1 itself is in the decidable fragment.
        dm = build_figure1()
        reasoner = Reasoner(dm)
        assert reasoner.subsumes("Neuron", "Purkinje_Cell")
        assert not reasoner.subsumes("Purkinje_Cell", "Pyramidal_Cell")

    def test_full_anatom_outside_fragment(self):
        # Figure 3's disjunctive projections put ANATOM outside it.
        from repro.errors import UndecidableFragmentError

        with pytest.raises(UndecidableFragmentError):
            Reasoner(build_anatom())
