"""Property-based tests for F-logic translation and evaluation."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.datalog.ast import Literal
from repro.flogic import FLogicEngine, Translator, parse_fl_program

symbols = st.sampled_from(["a", "b", "c", "neuron", "spine", "axon"])
methods = st.sampled_from(["m1", "m2", "len", "loc"])
values = st.one_of(st.integers(-5, 5), symbols)


@st.composite
def fl_fact_texts(draw):
    """Random ground F-logic facts as source text."""
    kind = draw(st.sampled_from(["isa", "sub", "frame", "sig", "pred"]))
    if kind == "isa":
        return "%s : %s." % (draw(symbols), draw(symbols))
    if kind == "sub":
        return "%s :: %s." % (draw(symbols), draw(symbols))
    if kind == "frame":
        return "%s[%s -> %s]." % (draw(symbols), draw(methods), draw(values))
    if kind == "sig":
        return "%s[%s => %s]." % (draw(symbols), draw(methods), draw(symbols))
    return "r(%s, %s)." % (draw(symbols), draw(symbols))


class TestTranslationProperties:
    @settings(max_examples=60, deadline=None)
    @given(st.lists(fl_fact_texts(), min_size=1, max_size=10))
    def test_facts_translate_to_ground_facts(self, texts):
        rules = Translator().translate_rules(parse_fl_program("\n".join(texts)))
        for rule in rules:
            assert rule.is_fact
            assert rule.head.is_ground()

    @settings(max_examples=60, deadline=None)
    @given(st.lists(fl_fact_texts(), min_size=1, max_size=10))
    def test_translation_idempotent(self, texts):
        program = "\n".join(texts)
        first = Translator().translate_rules(parse_fl_program(program))
        second = Translator().translate_rules(parse_fl_program(program))
        assert [str(r) for r in first] == [str(r) for r in second]

    @settings(max_examples=40, deadline=None)
    @given(st.lists(fl_fact_texts(), min_size=1, max_size=8))
    def test_told_facts_are_answerable(self, texts):
        engine = FLogicEngine()
        engine.tell("\n".join(texts))
        for text in texts:
            # every told fact must hold as a query (strip the period)
            assert engine.holds(text[:-1]), text

    @settings(max_examples=40, deadline=None)
    @given(
        st.lists(st.tuples(symbols, symbols), min_size=0, max_size=8),
        symbols,
        symbols,
    )
    def test_membership_respects_subclass_closure(self, subclasses, obj, cls):
        engine = FLogicEngine()
        for sub, sup in subclasses:
            engine.tell("%s :: %s." % (sub, sup))
        engine.tell("%s : %s." % (obj, cls))
        # obj must be an instance of every (transitive) superclass
        import networkx as nx

        graph = nx.DiGraph()
        graph.add_edges_from(subclasses)
        reachable = {cls}
        if cls in graph:
            reachable |= nx.descendants(graph, cls)
        for sup in reachable:
            assert engine.holds("%s : %s" % (obj, sup))

    @settings(max_examples=40, deadline=None)
    @given(st.lists(st.tuples(symbols, methods, values), min_size=0, max_size=8))
    def test_frame_values_roundtrip(self, triples):
        engine = FLogicEngine()
        for obj, method, value in triples:
            rendered = value if isinstance(value, int) else value
            engine.tell("%s[%s -> %s]." % (obj, method, rendered))
        for obj, method, value in triples:
            rows = engine.ask("%s[%s -> V]" % (obj, method))
            assert {row["V"] for row in rows} >= {value}
