"""Unit tests for FL -> Datalog translation (Table 1)."""

import pytest

from repro.datalog.ast import AggregateLiteral, Atom, Comparison, Literal
from repro.datalog.terms import Const, Var
from repro.errors import FLogicTranslationError
from repro.flogic import Molecule, Translator, molecule_atoms, parse_fl_program, parse_fl_rule
from repro.flogic.ast import MethodSpec


def translate(text):
    return Translator().translate_rules(parse_fl_program(text))


class TestMoleculeAtoms:
    def test_isa_maps_to_instance(self):
        mol = parse_fl_rule("p1 : c.").heads[0]
        assert molecule_atoms(mol, "head") == [
            Atom("instance", (Const("p1"), Const("c")))
        ]

    def test_subclass_maps(self):
        mol = parse_fl_rule("a :: b.").heads[0]
        assert molecule_atoms(mol, "head") == [
            Atom("subclass", (Const("a"), Const("b")))
        ]

    def test_head_frame_writes_method_inst(self):
        mol = parse_fl_rule("x[m -> v].").heads[0]
        assert molecule_atoms(mol, "head") == [
            Atom("method_inst", (Const("x"), Const("m"), Const("v")))
        ]

    def test_body_frame_reads_method_val(self):
        mol = parse_fl_rule("x[m -> v].").heads[0]
        assert molecule_atoms(mol, "body") == [
            Atom("method_val", (Const("x"), Const("m"), Const("v")))
        ]

    def test_signature_maps_to_method(self):
        mol = parse_fl_rule("c[m => t].").heads[0]
        assert molecule_atoms(mol, "head") == [
            Atom("method", (Const("c"), Const("m"), Const("t")))
        ]

    def test_default_maps_to_default_val(self):
        mol = parse_fl_rule("c[m *-> v].").heads[0]
        assert molecule_atoms(mol, "head") == [
            Atom("default_val", (Const("c"), Const("m"), Const("v")))
        ]

    def test_multivalued_expands(self):
        mol = parse_fl_rule("x[m ->> {a, b}].").heads[0]
        atoms = molecule_atoms(mol, "head")
        assert len(atoms) == 2

    def test_combined_molecule_expands_all(self):
        mol = parse_fl_rule("x : c[m -> v; n => t].").heads[0]
        atoms = molecule_atoms(mol, "head")
        preds = [a.pred for a in atoms]
        assert preds == ["instance", "method_inst", "method"]

    def test_bare_molecule_rejected(self):
        with pytest.raises(FLogicTranslationError):
            molecule_atoms(Molecule(Const("x")), "head")


class TestRuleTranslation:
    def test_fact(self):
        rules = translate("p1 : c.")
        assert len(rules) == 1
        assert rules[0].is_fact

    def test_conjunctive_head_splits(self):
        rules = translate("Y : d, r(X, Y) :- q(X, Y).")
        assert len(rules) == 2
        heads = {r.head.pred for r in rules}
        assert heads == {"instance", "r"}

    def test_multi_atom_head_molecule_splits(self):
        rules = translate("x : c[m -> v].")
        assert len(rules) == 2

    def test_body_molecule_positive_literals(self):
        rules = translate("p(X) :- X : c[m -> V].")
        body = rules[0].body
        assert all(isinstance(item, Literal) and item.positive for item in body)
        assert {item.atom.pred for item in body} == {"instance", "method_val"}

    def test_single_negation_direct(self):
        rules = translate("p(X) :- q(X), not r(X).")
        negs = [i for i in rules[0].body if isinstance(i, Literal) and not i.positive]
        assert len(negs) == 1
        assert negs[0].atom.pred == "r"

    def test_negated_conjunction_gets_aux(self):
        rules = translate("p(X) :- q(X), not (r(X, Z), s(Z)).")
        aux_rules = [r for r in rules if r.head.pred.startswith("_not_")]
        assert len(aux_rules) == 1
        # aux head carries only X (shared with the outside), not Z
        assert aux_rules[0].head.args == (Var("X"),)

    def test_negated_multiatom_molecule_gets_aux(self):
        rules = translate("p(X) :- q(X), not Z : d[f -> X].")
        aux_rules = [r for r in rules if r.head.pred.startswith("_not_")]
        assert len(aux_rules) == 1

    def test_aux_naming_idempotent(self):
        first = translate("p(X) :- q(X), not (r(X, Z), s(Z)).")
        second = translate("p(X) :- q(X), not (r(X, Z), s(Z)).")
        assert {str(r) for r in first} == {str(r) for r in second}

    def test_aggregate_translates(self):
        rules = translate("p(N) :- N = count{V; q(V)}.")
        agg = rules[0].body[0]
        assert isinstance(agg, AggregateLiteral)

    def test_aggregate_with_molecule_inner(self):
        rules = translate("p(N) :- N = count{VB [VA]; : r[a -> VA; b -> VB]}.")
        agg = rules[0].body[0]
        preds = {item.atom.pred for item in agg.body}
        assert preds == {"instance", "method_val"}

    def test_comparisons_pass_through(self):
        rules = translate("p(X) :- q(X), X > 3.")
        assert any(isinstance(i, Comparison) for i in rules[0].body)
