"""Unit tests for the F-logic parser."""

import pytest

from repro.datalog.terms import Const, Struct, Var
from repro.errors import FLogicParseError
from repro.flogic import (
    FLAggregate,
    FLAssignment,
    FLComparison,
    FLNegation,
    FLPredicate,
    Molecule,
    parse_fl_body,
    parse_fl_program,
    parse_fl_rule,
)


class TestMolecules:
    def test_isa(self):
        rule = parse_fl_rule("p1 : purkinje_cell.")
        mol = rule.heads[0]
        assert isinstance(mol, Molecule)
        assert mol.subject == Const("p1")
        assert mol.tag_kind == ":"
        assert mol.tag == Const("purkinje_cell")

    def test_subclass(self):
        mol = parse_fl_rule("axon :: compartment.").heads[0]
        assert mol.tag_kind == "::"

    def test_quoted_names(self):
        mol = parse_fl_rule("'Purkinje Cell' :: 'Spiny Neuron'.").heads[0]
        assert mol.subject == Const("Purkinje Cell")
        assert mol.tag == Const("Spiny Neuron")

    def test_data_frame_scalar(self):
        mol = parse_fl_rule("p1[age -> 12].").heads[0]
        spec = mol.specs[0]
        assert spec.arrow == "->"
        assert spec.method == Const("age")
        assert spec.values == (Const(12),)

    def test_data_frame_multivalued_set(self):
        mol = parse_fl_rule("s1[exp ->> {gaba, substance_p}].").heads[0]
        spec = mol.specs[0]
        assert spec.arrow == "->>"
        assert spec.values == (Const("gaba"), Const("substance_p"))

    def test_signature_frame(self):
        mol = parse_fl_rule("neuron[has => compartment].").heads[0]
        assert mol.specs[0].arrow == "=>"
        assert mol.specs[0].is_signature

    def test_multivalued_signature(self):
        mol = parse_fl_rule("neuron[has =>> compartment].").heads[0]
        assert mol.specs[0].arrow == "=>>"

    def test_default_frame(self):
        mol = parse_fl_rule("vehicle[wheels *-> 4].").heads[0]
        assert mol.specs[0].arrow == "*->"
        assert mol.specs[0].is_default

    def test_multiple_specs_semicolon_separated(self):
        mol = parse_fl_rule("p1[age -> 12; location -> hippocampus].").heads[0]
        assert len(mol.specs) == 2

    def test_combined_tag_and_frame(self):
        mol = parse_fl_rule("D : dist[root -> P].").heads[0]
        assert mol.tag_kind == ":"
        assert mol.tag == Const("dist")
        assert len(mol.specs) == 1

    def test_anonymous_molecule(self):
        body = parse_fl_body(": r[a -> VA]")
        mol = body[0]
        assert isinstance(mol.subject, Var)
        assert mol.tag == Const("r")

    def test_variable_method_name(self):
        mol = parse_fl_rule("X[M -> V] :- q(X, M, V).").heads[0]
        assert mol.specs[0].method == Var("M")

    def test_struct_subject(self):
        mol = parse_fl_rule("f(X) : d :- X : c.").heads[0]
        assert mol.subject == Struct("f", (Var("X"),))


class TestBodies:
    def test_plain_predicate(self):
        body = parse_fl_body("r(X, Y)")
        assert body[0] == FLPredicate("r", (Var("X"), Var("Y")))

    def test_zero_arity_predicate_in_body(self):
        rule = parse_fl_rule("p(a) :- go.")
        assert rule.body[0] == FLPredicate("go", ())

    def test_comparison(self):
        body = parse_fl_body("X != 3")
        assert body[0] == FLComparison("!=", Var("X"), Const(3))

    def test_equality_with_struct(self):
        body = parse_fl_body("Y = f(X)")
        assert body[0] == FLComparison("=", Var("Y"), Struct("f", (Var("X"),)))

    def test_assignment(self):
        body = parse_fl_body("Y is X + 1")
        assert isinstance(body[0], FLAssignment)

    def test_negated_single(self):
        body = parse_fl_body("not r(X, Y)")
        neg = body[0]
        assert isinstance(neg, FLNegation)
        assert len(neg.items) == 1

    def test_negated_conjunction(self):
        body = parse_fl_body("not (Z : d, r(X, Z))")
        neg = body[0]
        assert isinstance(neg, FLNegation)
        assert len(neg.items) == 2

    def test_aggregate(self):
        body = parse_fl_body("N = count{VA [VB]; r(VA, VB)}")
        agg = body[0]
        assert isinstance(agg, FLAggregate)
        assert agg.func == "count"
        assert agg.group_by == (Var("VB"),)

    def test_aggregate_with_molecule_body(self):
        body = parse_fl_body("N = count{VB [VA]; : r[a -> VA; b -> VB]}")
        agg = body[0]
        assert isinstance(agg.body[0], Molecule)

    def test_molecule_in_body(self):
        body = parse_fl_body("X : c[m -> V]")
        mol = body[0]
        assert mol.tag == Const("c")
        assert mol.specs[0].values == (Var("V"),)


class TestRules:
    def test_fact(self):
        rule = parse_fl_rule("p1 : c.")
        assert rule.is_fact

    def test_rule_with_body(self):
        rule = parse_fl_rule("X : b :- X : a.")
        assert not rule.is_fact
        assert len(rule.body) == 1

    def test_conjunctive_head(self):
        rule = parse_fl_rule("Y : d, r(X, Y) :- X : c, Y = f(X).")
        assert len(rule.heads) == 2

    def test_negation_rejected_in_head(self):
        with pytest.raises(FLogicParseError):
            parse_fl_rule("not p(X) :- q(X).")

    def test_comparison_rejected_in_head(self):
        with pytest.raises(FLogicParseError):
            parse_fl_rule("X = 3 :- q(X).")

    def test_program_with_comments(self):
        rules = parse_fl_program(
            """
            % the SYNAPSE world
            spine :: ion_regulating_component.
            s1 : spine.   % an instance
            """
        )
        assert len(rules) == 2

    def test_missing_period(self):
        with pytest.raises(FLogicParseError):
            parse_fl_rule("p1 : c")

    def test_str_roundtrip(self):
        text = "D : pd[name -> Y; amount ->> {1, 2}] :- X : c, not r(X), N = count{V; q(V)}."
        rule = parse_fl_rule(text)
        reparsed = parse_fl_rule(str(rule))
        # Fresh anonymous variables differ, so compare shape only.
        assert len(reparsed.heads) == len(rule.heads)
        assert len(reparsed.body) == len(rule.body)
