"""Unit + integration tests for the FLogicEngine facade."""

import pytest

from repro.flogic import FLogicEngine


@pytest.fixture
def neuro_kb():
    engine = FLogicEngine()
    engine.tell(
        """
        neuron[has => compartment].
        axon :: compartment.  dendrite :: compartment.  soma :: compartment.
        spiny_neuron :: neuron.
        purkinje_cell :: spiny_neuron.
        pyramidal_cell :: spiny_neuron.
        p1 : purkinje_cell.
        p1[age -> 12; location -> 'Purkinje Cell'].
        """
    )
    return engine


class TestClassHierarchy:
    def test_isa_upward_propagation(self, neuro_kb):
        assert neuro_kb.holds("p1 : neuron")
        assert neuro_kb.holds("p1 : spiny_neuron")

    def test_subclass_transitive(self, neuro_kb):
        assert neuro_kb.holds("purkinje_cell :: neuron")

    def test_subclass_reflexive_on_classes(self, neuro_kb):
        assert neuro_kb.holds("neuron :: neuron")

    def test_not_member_of_sibling(self, neuro_kb):
        assert not neuro_kb.holds("p1 : pyramidal_cell")

    def test_subclasses_of(self, neuro_kb):
        assert set(neuro_kb.subclasses_of("neuron")) == {
            "neuron",
            "spiny_neuron",
            "purkinje_cell",
            "pyramidal_cell",
        }

    def test_instances_of(self, neuro_kb):
        assert neuro_kb.instances_of("neuron") == ["p1"]

    def test_classes_include_used_names(self, neuro_kb):
        classes = neuro_kb.classes()
        assert "neuron" in classes
        assert "compartment" in classes

    def test_signature_inherited_down(self, neuro_kb):
        rows = neuro_kb.ask("purkinje_cell[has => T]")
        assert {r["T"] for r in rows} == {"compartment"}


class TestFramesAndQueries:
    def test_frame_query(self, neuro_kb):
        rows = neuro_kb.ask("p1[age -> A]")
        assert rows == [{"A": 12}]

    def test_multi_spec_query(self, neuro_kb):
        rows = neuro_kb.ask("p1[age -> A; location -> L]")
        assert rows == [{"A": 12, "L": "Purkinje Cell"}]

    def test_query_by_value(self, neuro_kb):
        rows = neuro_kb.ask("X[location -> 'Purkinje Cell']")
        assert rows == [{"X": "p1"}]

    def test_variable_method_query(self, neuro_kb):
        rows = neuro_kb.ask("p1[M -> V]")
        assert {r["M"] for r in rows} == {"age", "location"}

    def test_ground_query_true(self, neuro_kb):
        assert neuro_kb.ask("p1[age -> 12]") == [{}]

    def test_ground_query_false(self, neuro_kb):
        assert neuro_kb.ask("p1[age -> 13]") == []

    def test_holds(self, neuro_kb):
        assert neuro_kb.holds("p1 : purkinje_cell")
        assert not neuro_kb.holds("p1 : axon")


class TestRulesAndDerivation:
    def test_derived_frame(self):
        engine = FLogicEngine()
        engine.tell(
            """
            s1 : spine[len -> 2].
            s2 : spine[len -> 9].
            X : long_spine :- X : spine[len -> L], L > 5.
            """
        )
        assert engine.instances_of("long_spine") == ["s2"]

    def test_rule_derives_method_value(self):
        engine = FLogicEngine()
        engine.tell(
            """
            s1 : spine[len_um -> 2].
            X[len_nm -> N] :- X : spine[len_um -> L], N is L * 1000.
            """
        )
        assert engine.ask("s1[len_nm -> N]") == [{"N": 2000}]

    def test_chained_derived_values(self):
        # method_inst derived from method_val: positive recursion is fine.
        engine = FLogicEngine()
        engine.tell(
            """
            a[v -> 1].
            b[v -> V] :- a[v -> V].
            c[v -> V] :- b[v -> V].
            """
        )
        assert engine.ask("c[v -> V]") == [{"V": 1}]

    def test_conjunctive_head(self):
        engine = FLogicEngine()
        engine.tell(
            """
            x : c.
            Y : d, link(X, Y) :- X : c, Y = f(X).
            """
        )
        assert len(engine.ask("Y : d")) == 1
        assert len(engine.ask("link(X, Y)")) == 1

    def test_schema_level_reasoning(self):
        # Rules can range over schema atoms (the paper's Example 2 power).
        engine = FLogicEngine()
        engine.tell(
            """
            neuron[has => compartment].
            neuron[exp => protein].
            multi_slot(C) :- C[M1 => T1], C[M2 => T2], M1 != M2.
            """
        )
        assert engine.holds("multi_slot(neuron)")


class TestNonmonotonicInheritance:
    def test_default_inherited(self):
        engine = FLogicEngine()
        engine.tell("vehicle[wheels *-> 4]. v1 : vehicle.")
        assert engine.ask("v1[wheels -> W]") == [{"W": 4}]

    def test_more_specific_class_overrides(self):
        engine = FLogicEngine()
        engine.tell(
            """
            vehicle[wheels *-> 4].
            motorcycle :: vehicle.
            motorcycle[wheels *-> 2].
            m1 : motorcycle.
            """
        )
        assert engine.ask("m1[wheels -> W]") == [{"W": 2}]

    def test_local_value_overrides_default(self):
        engine = FLogicEngine()
        engine.tell(
            """
            vehicle[wheels *-> 4].
            m2 : vehicle.
            m2[wheels -> 3].
            """
        )
        assert engine.ask("m2[wheels -> W]") == [{"W": 3}]

    def test_unrelated_instances_keep_default(self):
        engine = FLogicEngine()
        engine.tell(
            """
            vehicle[wheels *-> 4].
            motorcycle :: vehicle.
            motorcycle[wheels *-> 2].
            v1 : vehicle.
            """
        )
        assert engine.ask("v1[wheels -> W]") == [{"W": 4}]

    def test_default_not_visible_without_instances(self):
        engine = FLogicEngine()
        engine.tell("vehicle[wheels *-> 4].")
        assert engine.ask("X[wheels -> W]") == []


class TestWellFoundedIntegration:
    def test_self_defeating_assertion_is_undefined(self):
        # The paper's literal assertion rule (Section 4) is an odd loop:
        # the created placeholder falsifies its own guard.  Under the
        # well-founded semantics those facts are undefined, hence not
        # returned as true answers.
        engine = FLogicEngine()
        engine.tell(
            """
            c1 : c.
            Y : d, r(X, Y) :- X : c, not (Z : d, r(X, Z)), Y = f(X).
            """
        )
        assert engine.ask("Y : d") == []
        result = engine.evaluate()
        assert result.used_well_founded
        undefined = {str(a) for a in result.undefined.iter_atoms("instance")}
        assert "instance(f(c1), d)" in undefined

    def test_guard_on_base_facts_is_total(self):
        # Guarding the assertion on source-stated facts (as the domain
        # map execution layer does) keeps the model total.
        engine = FLogicEngine()
        engine.tell_datalog(
            """
            stated_rel(x1, y1).
            c_obj(x1). c_obj(x2).
            filled(X) :- stated_rel(X, _).
            placeholder(X) :- c_obj(X), not filled(X).
            """
        )
        result = engine.evaluate()
        placeholders = {str(a) for a in result.store.iter_atoms("placeholder")}
        assert placeholders == {"placeholder(x2)"}


class TestTellInterfaces:
    def test_tell_datalog_text(self):
        engine = FLogicEngine()
        engine.tell_datalog("edge(a, b). path(X, Y) :- edge(X, Y).")
        assert engine.ask("path(X, Y)") == [{"X": "a", "Y": "b"}]

    def test_add_fact(self):
        engine = FLogicEngine()
        engine.add_fact("instance", "n1", "neuron")
        assert engine.holds("n1 : neuron")

    def test_incremental_tell_invalidates_cache(self):
        engine = FLogicEngine()
        engine.tell("a : c.")
        assert engine.instances_of("c") == ["a"]
        engine.tell("b : c.")
        assert engine.instances_of("c") == ["a", "b"]

    def test_aggregate_query(self):
        engine = FLogicEngine()
        engine.tell("has(n1, a1). has(n1, a2). has(n2, a3).")
        rows = engine.ask("N = count{VB [VA]; has(VA, VB)}")
        assert rows == [{"N": 1, "VA": "n2"}, {"N": 2, "VA": "n1"}]
