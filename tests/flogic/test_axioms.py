"""Direct tests for the Table 1 axiom groups."""

import pytest

from repro.flogic import (
    FLogicEngine,
    all_axioms,
    core_axioms,
    signature_inheritance_axioms,
    value_inheritance_axioms,
)


class TestAxiomGroups:
    def test_core_axioms_parse_and_count(self):
        rules = core_axioms()
        heads = {rule.head.pred for rule in rules}
        assert {"subclass", "instance", "class", "method_val"} <= heads

    def test_signature_inheritance_is_one_rule(self):
        rules = signature_inheritance_axioms()
        assert len(rules) == 1
        assert rules[0].head.pred == "method"

    def test_value_inheritance_rules(self):
        heads = {rule.head.pred for rule in value_inheritance_axioms()}
        assert heads == {"method_val", "inherits", "shadowed"}

    def test_all_axioms_bundles(self):
        with_vi = all_axioms(include_value_inheritance=True)
        without = all_axioms(include_value_inheritance=False)
        assert len(with_vi) > len(without)


class TestAxiomSemantics:
    def test_subclass_reflexive_only_on_classes(self):
        engine = FLogicEngine()
        engine.tell("a :: b.")
        # a and b are classes, so both are reflexive subclasses
        assert engine.holds("a :: a")
        assert engine.holds("b :: b")
        # arbitrary unknown names are not
        assert not engine.holds("zzz :: zzz")

    def test_metaclass_membership(self):
        engine = FLogicEngine()
        engine.tell("x : c.")
        assert engine.holds("c : class")
        assert not engine.holds("x : class")

    def test_value_inheritance_only_loaded_when_needed(self):
        # without defaults the program must stay stratified
        engine = FLogicEngine()
        engine.tell("x : c. x[m -> 1].")
        assert not engine.evaluate().used_well_founded

    def test_signature_inheritance_toggle(self):
        engine = FLogicEngine(signature_inheritance=False)
        engine.tell("sub :: sup. sup[m => t].")
        assert engine.ask("sub[m => T]") == []
        engine_on = FLogicEngine()
        engine_on.tell("sub :: sup. sup[m => t].")
        assert engine_on.ask("sub[m => T]") == [{"T": "t"}]

    def test_multiple_incomparable_defaults_both_inherited(self):
        # the classic multiple-inheritance ambiguity: with two
        # incomparable defining classes, both defaults are visible
        # (documented choice; F-logic systems vary here)
        engine = FLogicEngine()
        engine.tell(
            """
            a[m *-> 1].
            b[m *-> 2].
            x : a.
            x : b.
            """
        )
        rows = engine.ask("x[m -> V]")
        assert {row["V"] for row in rows} == {1, 2}
