"""LRU/dict store behaviour: bounds, recency, eviction accounting."""

from repro.cache import CacheEntry, DictStore, LRUStore


def entry(key, rows=1):
    return CacheEntry(key, "S", "c", [{"v": i} for i in range(rows)])


class TestLRUStore:
    def test_get_put_roundtrip(self):
        store = LRUStore()
        store.put("k", entry("k"))
        assert store.get("k").key == "k"
        assert store.get("missing") is None
        assert len(store) == 1

    def test_entry_bound_evicts_oldest(self):
        store = LRUStore(max_entries=2)
        store.put("a", entry("a"))
        store.put("b", entry("b"))
        evicted = store.put("c", entry("c"))
        assert [e.key for e in evicted] == ["a"]
        assert store.get("a") is None
        assert store.get("b") is not None

    def test_lookup_refreshes_recency(self):
        store = LRUStore(max_entries=2)
        store.put("a", entry("a"))
        store.put("b", entry("b"))
        store.get("a")  # 'b' is now the coldest
        evicted = store.put("c", entry("c"))
        assert [e.key for e in evicted] == ["b"]

    def test_row_bound(self):
        store = LRUStore(max_entries=None, max_rows=5)
        store.put("a", entry("a", rows=3))
        store.put("b", entry("b", rows=3))  # 6 rows > 5
        assert store.get("a") is None
        assert store.row_count == 3

    def test_most_recent_survives_even_when_oversized(self):
        store = LRUStore(max_entries=None, max_rows=2)
        store.put("big", entry("big", rows=10))
        assert store.get("big") is not None

    def test_overwrite_updates_row_count(self):
        store = LRUStore()
        store.put("a", entry("a", rows=5))
        store.put("a", entry("a", rows=1))
        assert store.row_count == 1
        assert len(store) == 1

    def test_discard(self):
        store = LRUStore()
        store.put("a", entry("a", rows=2))
        assert store.discard("a") is True
        assert store.discard("a") is False
        assert store.row_count == 0

    def test_clear(self):
        store = LRUStore()
        store.put("a", entry("a"))
        store.clear()
        assert len(store) == 0 and store.row_count == 0


class TestDictStore:
    def test_never_evicts(self):
        store = DictStore()
        for i in range(1000):
            assert store.put(i, entry(i)) == []
        assert len(store) == 1000

    def test_items_snapshot(self):
        store = DictStore()
        store.put("a", entry("a"))
        items = store.items()
        store.discard("a")
        assert [key for key, _e in items] == ["a"]
