"""Shared fixtures for the medcache tests: a two-worlds deployment
small enough to reason about invalidation by hand.

Two sources over one domain map::

    Nervous_System
        Brain < exists has.Neuron        CELLS  (anchored at Neuron)
        Gut   < exists has.Glia          GLIA   (anchored at Glia)

CELLS and GLIA live in disjoint branches below ``Tissue``, so a
refinement below `Neuron` must invalidate CELLS-anchored answers and
leave GLIA-anchored ones alone.
"""

import pytest

from repro.core import Mediator
from repro.domainmap import DomainMap
from repro.sources import AnchorSpec, Column, RelStore, Wrapper


def build_dm():
    dm = DomainMap("cachetest")
    dm.add_axioms(
        """
        Cell < Tissue_Part
        Neuron < Cell
        Glia < Cell
        Brain < exists has.Neuron
        Gut < exists has.Glia
        """
    )
    return dm


def build_cells_wrapper():
    store = RelStore("CELLS")
    store.create_table(
        "m",
        [Column("id", "int"), Column("kind", "str"), Column("size", "float")],
        key="id",
    ).insert_many(
        [
            {"id": 1, "kind": "pyramidal", "size": 20.0},
            {"id": 2, "kind": "pyramidal", "size": 12.5},
        ]
    )
    wrapper = Wrapper("CELLS", store)
    wrapper.export_class(
        "m",
        "m",
        "id",
        methods={"kind": "kind", "size": "size"},
        anchor=AnchorSpec(concept="Neuron"),
        selectable={"kind"},
    )
    return wrapper


def build_glia_wrapper():
    store = RelStore("GLIA")
    store.create_table(
        "g",
        [Column("id", "int"), Column("kind", "str"), Column("size", "float")],
        key="id",
    ).insert_many([{"id": 1, "kind": "astrocyte", "size": 4.0}])
    wrapper = Wrapper("GLIA", store)
    wrapper.export_class(
        "g",
        "g",
        "id",
        methods={"kind": "kind", "size": "size"},
        anchor=AnchorSpec(concept="Glia"),
        selectable={"kind"},
    )
    return wrapper


@pytest.fixture
def two_world_mediator():
    from repro.cache import AnswerCache

    mediator = Mediator(build_dm(), name="two-worlds", cache=AnswerCache())
    mediator.register(build_cells_wrapper(), eager=False)
    mediator.register(build_glia_wrapper(), eager=False)
    return mediator
