"""Fingerprints: deterministic, order-insensitive, capability-aware."""

from repro.cache import (
    capability_signature,
    fingerprint_digest,
    plan_fingerprint,
    query_fingerprint,
)
from repro.sources import SourceQuery
from repro.sources.capabilities import BindingPattern, ClassCapability


def capability(**kwargs):
    defaults = dict(
        class_name="c",
        attributes=["a", "b"],
        key="a",
        scannable=True,
        binding_patterns=[BindingPattern(["a", "b"], "bf")],
    )
    defaults.update(kwargs)
    return ClassCapability(**defaults)


class TestQueryFingerprint:
    def test_selection_order_does_not_matter(self):
        q1 = SourceQuery("c", {"a": 1, "b": 2})
        q2 = SourceQuery("c", {"b": 2, "a": 1})
        assert query_fingerprint("S", q1) == query_fingerprint("S", q2)

    def test_different_selections_differ(self):
        q1 = SourceQuery("c", {"a": 1})
        q2 = SourceQuery("c", {"a": 2})
        assert query_fingerprint("S", q1) != query_fingerprint("S", q2)

    def test_source_and_class_distinguish(self):
        q = SourceQuery("c", {"a": 1})
        assert query_fingerprint("S", q) != query_fingerprint("T", q)
        assert query_fingerprint("S", q) != query_fingerprint(
            "S", SourceQuery("d", {"a": 1})
        )

    def test_projection_distinguishes(self):
        base = query_fingerprint("S", SourceQuery("c", {"a": 1}))
        projected = query_fingerprint(
            "S", SourceQuery("c", {"a": 1}, projection=["a"])
        )
        assert base != projected

    def test_fingerprint_is_hashable(self):
        fp = query_fingerprint(
            "S", SourceQuery("c", {"a": 1}), capability()
        )
        assert {fp: 1}[fp] == 1

    def test_unhashable_selection_value_canonicalized(self):
        q1 = SourceQuery("c", {"a": [1, 2]})
        q2 = SourceQuery("c", {"a": [1, 2]})
        fp1, fp2 = query_fingerprint("S", q1), query_fingerprint("S", q2)
        assert fp1 == fp2
        assert {fp1: 1}[fp2] == 1


class TestCapabilitySignature:
    def test_none_capability(self):
        assert capability_signature(None) is None

    def test_equal_capabilities_equal_signatures(self):
        assert capability_signature(capability()) == capability_signature(
            capability()
        )

    def test_binding_patterns_change_signature(self):
        changed = capability(binding_patterns=[BindingPattern(["a", "b"], "fb")])
        assert capability_signature(capability()) != capability_signature(
            changed
        )

    def test_signature_feeds_the_fingerprint(self):
        q = SourceQuery("c", {"a": 1})
        changed = capability(scannable=False)
        assert query_fingerprint("S", q, capability()) != query_fingerprint(
            "S", q, changed
        )


class TestPlanFingerprint:
    def test_ignores_capability(self):
        q = SourceQuery("c", {"a": 1})
        assert plan_fingerprint("S", q) == query_fingerprint("S", q, None)


class TestDigest:
    def test_stable_and_short(self):
        fp = query_fingerprint("S", SourceQuery("c", {"a": 1}))
        assert fingerprint_digest(fp) == fingerprint_digest(fp)
        assert len(fingerprint_digest(fp)) == 16
