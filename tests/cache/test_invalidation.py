"""The affected-concepts closure: upward isa closure plus role
containers, computed on the two-worlds domain map."""

from repro.cache import affected_concepts, refinement_seeds
from repro.domainmap.registry import RegistrationResult

from .conftest import build_dm


class TestAffectedConcepts:
    def test_empty_seeds(self):
        assert affected_concepts(build_dm(), []) == frozenset()

    def test_upward_isa_closure(self):
        affected = affected_concepts(build_dm(), ["Neuron"])
        assert "Neuron" in affected
        assert "Cell" in affected and "Tissue_Part" in affected
        # the closure goes *up*: siblings and descendants of the seed
        # cannot be affected by new data below the seed
        assert "Glia" not in affected

    def test_role_containers_included(self):
        # Brain < exists has.Neuron, so Brain-anchored answers can see
        # new Neuron data through the role edge
        affected = affected_concepts(build_dm(), ["Neuron"])
        assert "Brain" in affected
        assert "Gut" not in affected

    def test_unknown_seed_is_kept_but_not_closed(self):
        affected = affected_concepts(build_dm(), ["NotAConcept"])
        assert affected == frozenset({"NotAConcept"})

    def test_disjoint_branches_stay_disjoint(self):
        neuron_side = affected_concepts(build_dm(), ["Neuron"])
        glia_side = affected_concepts(build_dm(), ["Glia"])
        assert "Gut" in glia_side and "Brain" not in glia_side
        assert neuron_side & glia_side == {"Cell", "Tissue_Part"}


class TestRefinementSeeds:
    def test_seeds_are_touched_concepts(self):
        result = RegistrationResult(
            new_concepts=["Basket_Cell"],
            new_axioms=[],
            new_isa=[("Basket_Cell", "Neuron")],
            new_role_links=[("Brain", "has", "Basket_Cell")],
        )
        assert refinement_seeds(result) == result.touched_concepts()
        assert refinement_seeds(result) == {
            "Basket_Cell",
            "Neuron",
            "Brain",
        }
