"""AnswerCache semantics: stats, selective invalidation, the
full-flush escape hatch, and the entry/materialization asymmetry
(entries are per-source rows, so class overlap alone never kills
them; materializations are view results, so it does)."""

from repro.cache import (
    AnswerCache,
    CacheEntry,
    DictStore,
    LRUStore,
    Materialization,
)


def cache_with(*entries, **kwargs):
    cache = AnswerCache(**kwargs)
    for key, concepts in entries:
        cache.store_answer(key, "S", "c", [{"v": 1}], concepts=concepts)
    return cache


class TestLookupAndStats:
    def test_miss_then_hit(self):
        cache = AnswerCache()
        assert cache.lookup("k") is None
        cache.store_answer("k", "S", "c", [{"v": 1}], concepts=["A"])
        entry = cache.lookup("k")
        assert isinstance(entry, CacheEntry)
        assert entry.rows == ({"v": 1},)
        assert cache.stats.misses == 1
        assert cache.stats.hits == 1
        assert cache.stats.puts == 1

    def test_entry_and_row_counts(self):
        cache = AnswerCache()
        cache.store_answer("k1", "S", "c", [{"v": 1}, {"v": 2}])
        cache.store_answer("k2", "T", "d", [{"v": 3}])
        assert cache.entry_count == 2
        assert cache.row_count == 3

    def test_evictions_counted(self):
        cache = AnswerCache(store=LRUStore(max_entries=1))
        cache.store_answer("k1", "S", "c", [])
        cache.store_answer("k2", "S", "c", [])
        assert cache.stats.evictions == 1
        assert cache.entry_count == 1

    def test_stats_dict_shape(self):
        cache = AnswerCache()
        cache.add_materialization(Materialization("v", [], concepts=["A"]))
        stats = cache.stats_dict()
        assert stats["entries"] == 0
        assert stats["materialized_views"] == ["v"]
        for field in (
            "hits",
            "misses",
            "puts",
            "evictions",
            "invalidated_entries",
            "invalidated_materializations",
            "materializations",
            "flushes",
        ):
            assert field in stats


class TestEntryInvalidation:
    def test_concept_overlap_kills_entry(self):
        cache = cache_with(("k1", ["Neuron"]), ("k2", ["Glia"]))
        entries, _mats = cache.invalidate(concepts=["Neuron"], reason="t")
        assert entries == 1
        assert cache.lookup("k1") is None
        assert cache.lookup("k2") is not None
        assert cache.stats.invalidated_entries == 1

    def test_class_overlap_alone_spares_entries(self):
        # an entry is one source's rows for one class; a *new* source
        # exporting the same class cannot change those rows
        cache = cache_with(("k", ["Neuron"]))
        entries, _mats = cache.invalidate(classes=["c"], reason="t")
        assert entries == 0
        assert cache.lookup("k") is not None

    def test_unanchored_entry_survives_concept_invalidation(self):
        cache = cache_with(("k", []))
        entries, _mats = cache.invalidate(concepts=["Neuron"], reason="t")
        assert entries == 0

    def test_invalidate_source_drops_only_that_source(self):
        cache = AnswerCache()
        cache.store_answer("k1", "S", "c", [], concepts=["A"])
        cache.store_answer("k2", "T", "c", [], concepts=["A"])
        dropped = cache.invalidate_source("S")
        assert dropped == 1
        assert cache.lookup("k1") is None
        assert cache.lookup("k2") is not None


class TestMaterializationInvalidation:
    def test_concept_overlap_kills_materialization(self):
        cache = AnswerCache()
        cache.add_materialization(
            Materialization("v", [], concepts=["Neuron"], classes=["c"])
        )
        _entries, mats = cache.invalidate(concepts=["Neuron"], reason="t")
        assert mats == 1
        assert cache.materializations == {}

    def test_class_overlap_kills_materialization(self):
        # view answers *do* depend on every exporter of their classes
        cache = AnswerCache()
        cache.add_materialization(
            Materialization("v", [], concepts=["Neuron"], classes=["c"])
        )
        _entries, mats = cache.invalidate(classes=["c"], reason="t")
        assert mats == 1

    def test_disjoint_change_spares_materialization(self):
        cache = AnswerCache()
        cache.add_materialization(
            Materialization("v", [], concepts=["Neuron"], classes=["c"])
        )
        _entries, mats = cache.invalidate(
            concepts=["Glia"], classes=["d"], reason="t"
        )
        assert mats == 0
        assert "v" in cache.materializations

    def test_uncacheable_materialization_dies_on_any_change(self):
        cache = AnswerCache()
        cache.add_materialization(Materialization("v", [], concepts=[]))
        assert cache.materializations["v"].uncacheable
        _entries, mats = cache.invalidate(concepts=["Whatever"], reason="t")
        assert mats == 1

    def test_callback_fired_on_drop(self):
        fired = []
        cache = AnswerCache()
        cache.on_materializations_changed = lambda: fired.append(True)
        cache.add_materialization(
            Materialization("v", [], concepts=["Neuron"])
        )
        assert fired == [True]
        cache.invalidate(concepts=["Neuron"], reason="t")
        assert fired == [True, True]


class TestFullFlush:
    def test_escape_hatch_flushes_everything(self):
        cache = cache_with(("k", ["Glia"]), full_flush_on_change=True)
        cache.add_materialization(
            Materialization("v", [], concepts=["Glia"])
        )
        entries, mats = cache.invalidate(concepts=["Neuron"], reason="t")
        assert (entries, mats) == (1, 1)
        assert cache.entry_count == 0
        assert cache.stats.flushes == 1

    def test_explicit_flush(self):
        cache = cache_with(("k", ["A"]))
        cache.add_materialization(Materialization("v", []))
        cache.flush(reason="test")
        assert cache.entry_count == 0
        assert cache.materializations == {}
        assert cache.stats.flushes == 1

    def test_store_can_be_shared(self):
        store = DictStore()
        cache = AnswerCache(store=store)
        cache.store_answer("k", "S", "c", [])
        assert store.get("k") is not None
