"""medcache wired into the mediator: ctor dispatch, the cache-consult
path in source_query, stale exclusion, materialized views with
register-then-ask ordering, selective invalidation, and within-plan
dedup (which works with the cache disabled)."""

import pytest

from repro import obs
from repro.cache import AnswerCache, LRUStore
from repro.core import Mediator
from repro.core.views import IntegratedView
from repro.errors import MediatorError
from repro.neuro import build_scenario, section5_query
from repro.resilience import FaultSchedule, FaultInjectingWrapper, ResiliencePolicy
from repro.sources import SourceQuery

from .conftest import build_cells_wrapper, build_dm, build_glia_wrapper


class TestCtorDispatch:
    def test_default_is_no_cache(self):
        assert Mediator(build_dm(), name="m").cache is None

    def test_true_builds_a_default_cache(self):
        mediator = Mediator(build_dm(), name="m", cache=True)
        assert isinstance(mediator.cache, AnswerCache)

    def test_answer_cache_taken_as_is(self):
        cache = AnswerCache()
        assert Mediator(build_dm(), name="m", cache=cache).cache is cache

    def test_store_wrapped_in_a_cache(self):
        store = LRUStore(max_entries=4)
        mediator = Mediator(build_dm(), name="m", cache=store)
        assert isinstance(mediator.cache, AnswerCache)
        assert mediator.cache.store is store

    def test_bad_configuration_rejected(self):
        with pytest.raises(MediatorError):
            Mediator(build_dm(), name="m", cache="lots please")


class TestSourceQueryCache:
    def test_hit_skips_the_source(self, two_world_mediator):
        mediator = two_world_mediator
        with obs.capture("t") as tracer:
            cold = mediator.source_query("CELLS", SourceQuery("m"))
            warm = mediator.source_query("CELLS", SourceQuery("m"))
        assert warm == cold and len(cold) == 2
        stats = mediator.cache.stats
        assert (stats.misses, stats.puts, stats.hits) == (1, 1, 1)
        # one real source call, not two
        assert tracer.metrics.counter_total("source.queries") == 1
        assert tracer.metrics.counter_total("cache.hits") == 1

    def test_selections_key_separate_entries(self, two_world_mediator):
        mediator = two_world_mediator
        mediator.source_query("CELLS", SourceQuery("m"))
        mediator.source_query(
            "CELLS", SourceQuery("m", {"kind": "pyramidal"})
        )
        assert mediator.cache.entry_count == 2

    def test_entries_carry_anchor_concepts(self, two_world_mediator):
        mediator = two_world_mediator
        mediator.source_query("CELLS", SourceQuery("m"))
        mediator.source_query("GLIA", SourceQuery("g"))
        by_source = {
            entry.source: entry.concepts
            for entry in mediator.cache.entries()
        }
        assert by_source == {
            "CELLS": frozenset({"Neuron"}),
            "GLIA": frozenset({"Glia"}),
        }

    def test_rows_are_copies(self, two_world_mediator):
        mediator = two_world_mediator
        first = mediator.source_query("CELLS", SourceQuery("m"))
        first.append("garbage")
        second = mediator.source_query("CELLS", SourceQuery("m"))
        assert "garbage" not in second


class TestStaleExclusion:
    def test_stale_served_rows_are_never_cached(self):
        # CELLS answers once, then fails permanently; medguard serves
        # the last known good rows, which medcache must refuse to keep
        schedule = FaultSchedule().kill("CELLS", after=1)
        policy = ResiliencePolicy(
            max_retries=0,
            serve_stale=True,
            breaker_threshold=None,
            sleep=lambda seconds: None,
        )
        mediator = Mediator(
            build_dm(), name="m", resilience=policy, cache=AnswerCache()
        )
        mediator.register(
            FaultInjectingWrapper(build_cells_wrapper(), schedule),
            eager=False,
        )
        fresh = mediator.source_query("CELLS", SourceQuery("m"))
        assert mediator.cache.stats.puts == 1
        mediator.cache.flush(reason="test")
        stale = mediator.source_query("CELLS", SourceQuery("m"))
        assert stale == fresh  # medguard LKG kept the answer flowing
        assert mediator.cache.stats.puts == 1  # ... but it was not cached
        assert mediator.cache.entry_count == 0


class TestSelectiveInvalidation:
    def populate(self, mediator):
        mediator.source_query("CELLS", SourceQuery("m"))
        mediator.source_query("GLIA", SourceQuery("g"))
        assert mediator.cache.entry_count == 2

    def cached_sources(self, mediator):
        return sorted(entry.source for entry in mediator.cache.entries())

    def test_refinement_below_neuron_spares_the_glia_world(
        self, two_world_mediator
    ):
        mediator = two_world_mediator
        self.populate(mediator)
        mediator.register(
            build_third_wrapper(),
            dm_refinement="Basket_Cell < Neuron",
            eager=False,
        )
        # upward closure of {Basket_Cell, Neuron} reaches the CELLS
        # anchor but not Glia: exactly one entry dies
        assert self.cached_sources(mediator) == ["GLIA"]
        assert mediator.cache.stats.invalidated_entries == 1

    def test_plain_registration_spares_all_entries(self, two_world_mediator):
        mediator = two_world_mediator
        self.populate(mediator)
        mediator.register(build_third_wrapper(), eager=False)
        assert self.cached_sources(mediator) == ["CELLS", "GLIA"]

    def test_deregister_drops_the_sources_entries(self, two_world_mediator):
        mediator = two_world_mediator
        self.populate(mediator)
        mediator.deregister("CELLS")
        assert self.cached_sources(mediator) == ["GLIA"]

    def test_full_flush_escape_hatch(self):
        mediator = Mediator(
            build_dm(),
            name="m",
            cache=AnswerCache(full_flush_on_change=True),
        )
        mediator.register(build_cells_wrapper(), eager=False)
        mediator.register(build_glia_wrapper(), eager=False)
        self.populate(mediator)
        mediator.register(
            build_third_wrapper(),
            dm_refinement="Basket_Cell < Neuron",
            eager=False,
        )
        assert mediator.cache.entry_count == 0
        # conservative by design: *every* deployment change flushed
        # (the two initial registrations plus the refinement)
        assert mediator.cache.stats.flushes == 3


def build_third_wrapper(name="EXTRA", class_name="x"):
    from repro.sources import Column, RelStore, Wrapper

    store = RelStore(name)
    store.create_table(
        "t", [Column("id", "int"), Column("v", "int")], key="id"
    ).insert_many([{"id": 1, "v": 7}])
    wrapper = Wrapper(name, store)
    wrapper.export_class(class_name, "t", "id", methods={"v": "v"})
    return wrapper


def build_cells_clone(name="CELLS2"):
    """Another exporter of class ``m`` with one extra neuron."""
    from repro.sources import AnchorSpec, Column, RelStore, Wrapper

    store = RelStore(name)
    store.create_table(
        "m2",
        [Column("id", "int"), Column("kind", "str"), Column("size", "float")],
        key="id",
    ).insert_many([{"id": 9, "kind": "granule", "size": 6.0}])
    wrapper = Wrapper(name, store)
    wrapper.export_class(
        "m",
        "m2",
        "id",
        methods={"kind": "kind", "size": "size"},
        anchor=AnchorSpec(concept="Neuron"),
        selectable={"kind"},
    )
    return wrapper


ALL_CELLS = IntegratedView(
    "all_cells",
    fl_rules=(
        "X : all_cells :- X : m.\n"
        "X[kind -> K] :- X : all_cells, X : m[kind -> K].\n"
    ),
)


def eager_cached_mediator():
    mediator = Mediator(build_dm(), name="m", cache=AnswerCache())
    mediator.register(build_cells_wrapper(), eager=True)
    mediator.register(build_glia_wrapper(), eager=True)
    mediator.add_view(ALL_CELLS)
    return mediator


class TestMaterialize:
    def test_requires_a_cache(self):
        mediator = Mediator(build_dm(), name="m")
        with pytest.raises(MediatorError):
            mediator.materialize("whatever")

    def test_materialized_answers_match_live_answers(self):
        mediator = eager_cached_mediator()
        live = mediator.ask("X : all_cells")
        materialization = mediator.materialize("all_cells")
        assert mediator.ask("X : all_cells") == live
        assert len(live) == 2
        assert "Neuron" in materialization.concepts
        assert "m" in materialization.classes
        assert "all_cells" in mediator.cache.materializations

    def test_register_after_materialize_invalidates_first(self):
        # satellite regression: a source registered *after* a view was
        # materialized must be visible to the very next ask — the
        # invalidation has to land before the eager evaluation
        mediator = eager_cached_mediator()
        mediator.materialize("all_cells")
        mediator.register(build_cells_clone(), eager=True)
        assert "all_cells" not in mediator.cache.materializations
        assert len(mediator.ask("X : all_cells")) == 3

    def test_rematerialize_after_invalidation(self):
        mediator = eager_cached_mediator()
        mediator.materialize("all_cells")
        mediator.register(build_cells_clone(), eager=True)
        materialization = mediator.materialize("all_cells")
        assert len(mediator.ask("X : all_cells")) == 3
        assert mediator.cache.stats.materializations == 2
        assert len(materialization.facts) > 0

    def test_refinement_in_a_disjoint_branch_spares_it(self):
        mediator = eager_cached_mediator()
        mediator.materialize("all_cells")
        mediator.register(
            build_third_wrapper(),
            dm_refinement="Radial_Glia < Glia",
            eager=True,
        )
        # the view is anchored at Neuron; a refinement below Glia
        # cannot change its rows
        assert "all_cells" in mediator.cache.materializations


class TestPlanDedup:
    @pytest.fixture(scope="class")
    def explained(self):
        mediator = build_scenario(eager=False).mediator
        assert mediator.cache is None  # dedup needs no cache
        return mediator.explain(section5_query())

    def test_duplicate_plan_call_recorded_as_event(self, explained):
        events = [
            event
            for step in explained.steps
            for event in step["events"]
            if event.get("event") == "cache.dedup"
        ]
        assert events == [
            {
                "event": "cache.dedup",
                "source": "SENSELAB",
                "class_name": "neurotransmission",
            }
        ]

    def test_dedup_rendered_in_format(self, explained):
        assert (
            "! cache.dedup SENSELAB.neurotransmission"
            in explained.format(mask_timings=True)
        )

    def test_answers_unchanged_by_dedup(self, explained):
        mediator = build_scenario(eager=False).mediator
        result = mediator.correlate(section5_query())
        assert [group for group, _d in result.context.answers] == [
            group for group, _d in explained.context.answers
        ]
