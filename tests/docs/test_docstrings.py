"""Docstring audit for the public API re-exported from ``repro``.

Every class in ``repro.__all__`` must carry a non-trivial docstring,
and every parameter of its ``__init__`` and public methods must be
mentioned — by name — in the method's (or the owning class's)
docstring.  The audit is a CI gate: adding a parameter without
documenting it fails here, not in review.
"""

import inspect
import re

import repro

PUBLIC_CLASSES = sorted(
    name
    for name in repro.__all__
    if inspect.isclass(getattr(repro, name))
)

#: extra entry points the issue calls out by name: the mediator verbs
#: a deployment actually touches must document every parameter
AUDITED_METHODS = {
    "Mediator": [
        "__init__",
        "ask",
        "correlate",
        "explain",
        "materialize",
        "register",
        "source_query",
    ],
    "AnswerCache": ["__init__", "lookup", "store_answer", "invalidate"],
    "ResiliencePolicy": ["__init__"],
    "ParallelExecutor": ["__init__", "map_ordered", "call"],
    "CorrelationQuery": ["__init__"],
}


def params_of(func):
    """Documentable parameter names (no self/*args/**kwargs)."""
    out = []
    for name, param in inspect.signature(func).parameters.items():
        if name == "self" or param.kind in (
            inspect.Parameter.VAR_POSITIONAL,
            inspect.Parameter.VAR_KEYWORD,
        ):
            continue
        out.append(name)
    return out


def documented_in(name, *docs):
    pattern = re.compile(r"\b%s\b" % re.escape(name))
    return any(doc and pattern.search(doc) for doc in docs)


def audit(cls, method_names):
    """Return human-readable misses for one class."""
    misses = []
    class_doc = inspect.getdoc(cls)
    if not class_doc or len(class_doc.strip()) < 20:
        misses.append("%s: class docstring missing or trivial" % cls.__name__)
        class_doc = ""
    for method_name in method_names:
        method = getattr(cls, method_name)
        method_doc = inspect.getdoc(method)
        # __init__ params are conventionally documented on the class
        if method_name != "__init__" and not method_doc:
            misses.append(
                "%s.%s: no docstring" % (cls.__name__, method_name)
            )
            continue
        for param in params_of(method):
            if not documented_in(param, method_doc, class_doc):
                misses.append(
                    "%s.%s: parameter %r undocumented"
                    % (cls.__name__, method_name, param)
                )
    return misses


def test_all_public_classes_are_audited():
    assert PUBLIC_CLASSES == sorted(AUDITED_METHODS), (
        "repro.__all__ classes and the audit table drifted apart — "
        "add the new class (and its key methods) to AUDITED_METHODS"
    )


def test_public_docstrings_are_parameter_complete():
    misses = []
    for name in PUBLIC_CLASSES:
        misses.extend(audit(getattr(repro, name), AUDITED_METHODS[name]))
    assert not misses, "undocumented public API:\n  " + "\n  ".join(misses)


def test_package_docstring_maps_the_layout():
    doc = repro.__doc__ or ""
    for module in (
        "repro.obs",
        "repro.datalog",
        "repro.flogic",
        "repro.domainmap",
        "repro.sources",
        "repro.core",
        "repro.neuro",
        "repro.parallel",
    ):
        assert module in doc, "package docstring lost the %s entry" % module
