"""Execute every fenced python snippet in the documentation.

Each ```python block in ``docs/*.md`` and ``README.md`` must run —
docs that drift from the code fail CI here.  Snippets are fragments,
not scripts, so each one executes in a fresh namespace seeded with the
documented prelude (see :func:`prelude`): a built domain map ``dm``,
a scenario ``mediator`` (cache enabled), the Section 5 ``query``, a
spare ``wrapper``, and the names the fragments reference without
importing.
"""

import pathlib
import re

import pytest

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
FENCE = re.compile(r"```python\n(.*?)```", re.DOTALL)


def doc_paths():
    paths = sorted((ROOT / "docs").glob("*.md"))
    paths.append(ROOT / "README.md")
    return paths


def snippets():
    """(relative path, index, code) for every fenced python block."""
    out = []
    for path in doc_paths():
        for index, match in enumerate(FENCE.finditer(path.read_text()), 1):
            out.append((path.relative_to(ROOT), index, match.group(1)))
    return out


SNIPPETS = snippets()


@pytest.fixture(scope="module")
def prelude():
    """The documented snippet environment, built once per run."""
    from repro import Mediator, obs
    from repro.cache import AnswerCache
    from repro.errors import RegistrationError
    from repro.neuro import (
        build_anatom,
        build_ncmir,
        build_scenario,
        section5_query,
    )
    from repro.resilience import Fault, FaultSchedule, ResiliencePolicy

    mediator = build_scenario(eager=False, cache=AnswerCache()).mediator
    return {
        "Mediator": Mediator,
        "RegistrationError": RegistrationError,
        "Fault": Fault,
        "FaultSchedule": FaultSchedule,
        "ResiliencePolicy": ResiliencePolicy,
        "obs": obs,
        "dm": build_anatom(),
        "mediator": mediator,
        "query": section5_query(),
        "section5_query": section5_query,
        "sources": mediator.source_names(),
        "wrapper": build_ncmir(seed=7),
    }


def test_docs_have_snippets():
    assert SNIPPETS, "no fenced python blocks found under docs/"


@pytest.mark.parametrize(
    "path, index, code",
    SNIPPETS,
    ids=["%s#%d" % (path, index) for path, index, _code in SNIPPETS],
)
def test_snippet_executes(path, index, code, prelude, capsys):
    namespace = dict(prelude)
    try:
        exec(compile(code, "%s#%d" % (path, index), "exec"), namespace)
    finally:
        capsys.readouterr()  # swallow the snippets' print output
