"""Structural checks over the documentation site.

The docs are a linked site, not a pile of files: ``docs/index.md``
must route to every doc, every relative markdown link must resolve,
and every doc must link back to the index.  Drift fails CI here.
"""

import pathlib
import re

ROOT = pathlib.Path(__file__).resolve().parent.parent.parent
DOCS = ROOT / "docs"

#: [text](target) links, excluding images and absolute URLs
LINK = re.compile(r"(?<!\!)\[[^\]]+\]\(([^)#\s]+)(#[^)\s]*)?\)")


def md_files():
    return sorted(DOCS.glob("*.md")) + [ROOT / "README.md"]


def links_of(path):
    for match in LINK.finditer(path.read_text()):
        target = match.group(1)
        if target.startswith(("http://", "https://", "mailto:")):
            continue
        yield target


def test_relative_links_resolve():
    broken = []
    for path in md_files():
        for target in links_of(path):
            resolved = (path.parent / target).resolve()
            if not resolved.exists():
                broken.append("%s -> %s" % (path.relative_to(ROOT), target))
    assert not broken, "broken doc links:\n  " + "\n  ".join(broken)


def test_index_routes_every_doc():
    index = (DOCS / "index.md").read_text()
    missing = [
        doc.name
        for doc in sorted(DOCS.glob("*.md"))
        if doc.name != "index.md" and "(%s)" % doc.name not in index
    ]
    assert not missing, "docs/index.md does not link: %s" % missing


def test_every_doc_links_back_to_index():
    missing = [
        doc.name
        for doc in sorted(DOCS.glob("*.md"))
        if doc.name != "index.md" and "(index.md)" not in doc.read_text()
    ]
    assert not missing, "docs missing an index.md backlink: %s" % missing


def test_readme_links_the_docs_site():
    readme = (ROOT / "README.md").read_text()
    assert "docs/index.md" in readme, (
        "README must point readers at the docs site (docs/index.md)"
    )
