"""Integration tests: medpar fan-out through plan execution.

Covers the determinism contract (parallel answers == sequential
answers; chaos reports byte-identical per seed in both modes), the
wall-clock timeout through the medguard layer, and within-plan dedup
coalescing N concurrent identical source calls onto one wire call.
"""

import threading
import time

import pytest

from repro import Mediator, obs
from repro.cache.fingerprint import plan_fingerprint
from repro.core.planner import PlanContext
from repro.errors import MediatorError, SourceTimeoutError
from repro.neuro import build_anatom
from repro.parallel import ParallelExecutor, build_fanout_deployment
from repro.resilience import ResiliencePolicy, SourceGuard, VirtualClock
from repro.resilience.chaos import run_chaos_scenario
from repro.sources import SourceQuery


class TestMediatorParallelConfig:
    def test_off_by_default(self):
        assert Mediator(build_anatom()).parallel is None

    def test_false_and_none_mean_off(self):
        assert Mediator(build_anatom(), parallel=False).parallel is None
        assert Mediator(build_anatom(), parallel=None).parallel is None

    def test_true_builds_a_default_pool(self):
        mediator = Mediator(build_anatom(), name="M", parallel=True)
        assert isinstance(mediator.parallel, ParallelExecutor)
        assert mediator.parallel.name == "M-medpar"
        mediator.parallel.shutdown()

    def test_int_sets_the_width(self):
        mediator = Mediator(build_anatom(), parallel=7)
        assert mediator.parallel.max_workers == 7
        mediator.parallel.shutdown()

    def test_executor_instance_is_adopted(self):
        executor = ParallelExecutor(max_workers=2)
        mediator = Mediator(build_anatom(), parallel=executor)
        assert mediator.parallel is executor
        executor.shutdown()

    def test_invalid_value_rejected(self):
        with pytest.raises(MediatorError):
            Mediator(build_anatom(), parallel="yes")


class TestDeterministicMerge:
    def test_parallel_answers_match_sequential(self):
        answers = {}
        for label, parallel in (("seq", False), ("par", 3)):
            mediator, query = build_fanout_deployment(
                sources=3, delay=0.01, parallel=parallel
            )
            result = mediator.correlate(query)
            answers[label] = [
                (group, distribution.total())
                for group, distribution in result.context.answers
            ]
            if mediator.parallel is not None:
                mediator.parallel.shutdown()
        assert answers["par"] == answers["seq"]
        assert answers["seq"], "deployment produced no answers"

    def test_fanout_metrics_emitted_only_in_parallel_mode(self):
        for parallel, expect_batches in ((False, 0), (3, 1)):
            mediator, query = build_fanout_deployment(
                sources=3, delay=0.0, parallel=parallel
            )
            with obs.capture("fanout") as tracer:
                mediator.correlate(query)
            if mediator.parallel is not None:
                mediator.parallel.shutdown()
            batches = tracer.metrics.counter_total("fanout.batches")
            assert batches == expect_batches, (
                "parallel=%r: expected %d fan-out batches, saw %d"
                % (parallel, expect_batches, batches)
            )

    @pytest.mark.parametrize("seed", [7, 42])
    def test_chaos_reports_byte_identical_across_modes(self, seed):
        sequential = run_chaos_scenario(seed=seed)
        repeat = run_chaos_scenario(seed=seed)
        parallel = run_chaos_scenario(seed=seed, parallel=4)
        assert repeat.format() == sequential.format()
        assert parallel.format() == sequential.format()


class TestGuardTimeoutThroughExecutor:
    def test_hung_wrapper_is_abandoned_at_the_wall_clock_deadline(self):
        policy = ResiliencePolicy(call_timeout=0.05, max_retries=0)
        assert policy.wall_clock
        guard = SourceGuard(policy)
        executor = ParallelExecutor(max_workers=2)
        hung = threading.Event()

        def hang():
            hung.wait(5.0)
            return "rows"

        start = time.perf_counter()
        with pytest.raises(SourceTimeoutError):
            guard.call("S", "c", hang, executor=executor)
        elapsed = time.perf_counter() - start
        hung.set()
        assert elapsed < 2.0, "the hung wrapper was waited out"
        assert guard.outcomes[-1].status == "failed"

    def test_timeout_then_retry_recovers(self):
        policy = ResiliencePolicy(call_timeout=0.05, max_retries=1,
                                  backoff_base=0.0)
        guard = SourceGuard(policy)
        executor = ParallelExecutor(max_workers=2)
        hung = threading.Event()
        state = {"first": True}

        def sometimes_hung():
            if state.pop("first", False):
                hung.wait(5.0)
            return "rows"

        assert guard.call("S", "c", sometimes_hung, executor=executor) == "rows"
        hung.set()
        assert guard.outcomes[-1].status == "retried"

    def test_virtual_clock_keeps_the_deterministic_path(self):
        """Chaos runs use a virtual clock; the executor must stay cold
        so measured-elapsed timeouts remain reproducible."""

        class BombExecutor:
            def call(self, fn, timeout=None):
                raise AssertionError(
                    "executor must not run calls under a virtual clock"
                )

        clock = VirtualClock()
        policy = ResiliencePolicy(
            clock=clock.now, sleep=clock.sleep, call_timeout=1.0,
            max_retries=0,
        )
        assert not policy.wall_clock
        guard = SourceGuard(policy)

        def slow():
            clock.advance(5.0)
            return "rows"

        with pytest.raises(SourceTimeoutError):
            guard.call("S", "c", slow, executor=BombExecutor())


class _CountingMediator:
    """Just enough mediator surface for PlanContext.source_query."""

    resilience = None

    def __init__(self, parallel=None, gate=None):
        self.parallel = parallel
        self.gate = gate
        self.calls = []
        self._lock = threading.Lock()

    def source_query(self, source, source_query):
        with self._lock:
            self.calls.append((source, source_query.class_name))
        if self.gate is not None:
            self.gate.wait(5.0)
        return [{"value": 1}]


class TestWithinPlanDedup:
    QUERY = SourceQuery("protein_amount", {"location": "dendrite"})

    def test_sequential_memo_still_works(self):
        mediator = _CountingMediator(parallel=None)
        context = PlanContext(mediator)
        first = context.source_query("S", self.QUERY)
        second = context.source_query("S", self.QUERY)
        assert first == second == [{"value": 1}]
        assert len(mediator.calls) == 1

    def test_concurrent_identical_calls_cost_one_wire_call(self):
        gate = threading.Event()
        executor = ParallelExecutor(max_workers=4)
        mediator = _CountingMediator(parallel=executor, gate=gate)
        context = PlanContext(mediator)
        results = []
        results_lock = threading.Lock()

        def worker():
            rows = context.source_query("S", self.QUERY)
            with results_lock:
                results.append(rows)

        with obs.capture("dedup") as tracer:
            threads = [threading.Thread(target=worker) for _ in range(5)]
            for thread in threads:
                thread.start()
            # let the workers pile up behind the in-flight call
            deadline = time.time() + 5.0
            while not mediator.calls and time.time() < deadline:
                time.sleep(0.001)
            time.sleep(0.05)
            gate.set()
            for thread in threads:
                thread.join(5.0)

            # a later repeat is served from the memo, not the wire
            memo_hit = context.source_query("S", self.QUERY)

        executor.shutdown()
        assert len(mediator.calls) == 1, "identical calls must coalesce"
        assert results == [[{"value": 1}]] * 5
        assert memo_hit == [{"value": 1}]
        coalesced = tracer.metrics.counter_total("fanout.coalesced")
        assert coalesced == 4
        assert tracer.metrics.counter_total("cache.dedup") == 5  # 4 + memo

    def test_distinct_queries_are_not_coalesced(self):
        executor = ParallelExecutor(max_workers=2)
        mediator = _CountingMediator(parallel=executor)
        context = PlanContext(mediator)
        other = SourceQuery("protein_amount", {"location": "soma"})
        key_a = plan_fingerprint("S", self.QUERY)
        key_b = plan_fingerprint("S", other)
        assert key_a != key_b
        context.source_query("S", self.QUERY)
        context.source_query("S", other)
        executor.shutdown()
        assert len(mediator.calls) == 2
