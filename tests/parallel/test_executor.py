"""Unit tests for the medpar executor primitives."""

import threading
import time

import pytest

from repro import obs
from repro.errors import SourceError, SourceTimeoutError
from repro.parallel import (
    DEFAULT_MAX_WORKERS,
    FanoutOutcome,
    ParallelExecutor,
    SingleFlight,
)


class TestFanoutOutcome:
    def test_capture_success(self):
        outcome = FanoutOutcome.capture(lambda x: x * 2, 21)
        assert outcome.ok
        assert outcome.value == 42
        assert outcome.error is None

    def test_capture_error(self):
        boom = ValueError("boom")
        outcome = FanoutOutcome.capture(
            lambda _x: (_ for _ in ()).throw(boom), None
        )
        assert not outcome.ok
        assert outcome.error is boom


class TestMapOrdered:
    def test_empty(self):
        with ParallelExecutor(max_workers=2) as executor:
            assert executor.map_ordered([], lambda x: x) == []

    def test_single_item_runs_inline(self):
        thread_names = []

        def record(item):
            thread_names.append(threading.current_thread().name)
            return item

        with ParallelExecutor(max_workers=2) as executor:
            outcomes = executor.map_ordered(["only"], record)
        assert [o.value for o in outcomes] == ["only"]
        assert thread_names == [threading.current_thread().name]

    def test_results_in_input_order_regardless_of_completion(self):
        # earlier items sleep longer, so completion order is reversed
        delays = {"a": 0.06, "b": 0.03, "c": 0.0}

        def work(item):
            time.sleep(delays[item])
            return item.upper()

        with ParallelExecutor(max_workers=4) as executor:
            outcomes = executor.map_ordered(["a", "b", "c"], work)
        assert [o.value for o in outcomes] == ["A", "B", "C"]

    def test_errors_positional_and_other_tasks_still_run(self):
        ran = []

        def work(item):
            ran.append(item)
            if item == "bad":
                raise SourceError("down")
            return item

        with ParallelExecutor(max_workers=2) as executor:
            outcomes = executor.map_ordered(["ok", "bad", "ok2"], work)
        assert sorted(ran) == ["bad", "ok", "ok2"]
        assert outcomes[0].ok and outcomes[2].ok
        assert isinstance(outcomes[1].error, SourceError)

    def test_counts_fanout_metrics(self):
        with obs.capture("test") as tracer:
            with ParallelExecutor(max_workers=2) as executor:
                executor.map_ordered([1, 2, 3], lambda x: x, kind="retrieve")
        metrics = tracer.metrics
        assert metrics.counter_value("fanout.batches", kind="retrieve") == 1
        assert metrics.counter_value("fanout.tasks", kind="retrieve") == 3

    def test_single_item_counts_nothing(self):
        with obs.capture("test") as tracer:
            with ParallelExecutor(max_workers=2) as executor:
                executor.map_ordered([1], lambda x: x)
        assert tracer.metrics.counter_total("fanout.batches") == 0

    def test_worker_spans_nest_under_submitting_span(self):
        with obs.capture("test") as tracer:
            with ParallelExecutor(max_workers=2) as executor:
                with tracer.span("plan.step"):
                    executor.map_ordered(
                        ["a", "b"],
                        lambda item: tracer.span(
                            "task", item=item
                        ).__exit__(None, None, None),
                    )
        (root,) = tracer.roots
        assert root.name == "plan.step"
        assert sorted(c.attrs["item"] for c in root.children) == ["a", "b"]


class TestExecutorLifecycle:
    def test_max_workers_validated(self):
        with pytest.raises(ValueError):
            ParallelExecutor(max_workers=0)

    def test_default_width(self):
        assert ParallelExecutor().max_workers == DEFAULT_MAX_WORKERS

    def test_shutdown_idempotent_and_restartable(self):
        executor = ParallelExecutor(max_workers=2)
        outcomes = executor.map_ordered([1, 2], lambda x: x + 1)
        assert [o.value for o in outcomes] == [2, 3]
        executor.shutdown()
        executor.shutdown()  # idempotent
        outcomes = executor.map_ordered([3, 4], lambda x: x + 1)
        assert [o.value for o in outcomes] == [4, 5]
        executor.shutdown()


class TestWallClockTimeout:
    def test_no_timeout_is_plain_call(self):
        executor = ParallelExecutor(max_workers=1)
        assert executor.call(lambda: 42) == 42

    def test_result_within_timeout(self):
        executor = ParallelExecutor(max_workers=1)
        assert executor.call(lambda: "fast", timeout=5.0) == "fast"

    def test_error_within_timeout_propagates(self):
        executor = ParallelExecutor(max_workers=1)
        with pytest.raises(SourceError):
            executor.call(
                lambda: (_ for _ in ()).throw(SourceError("down")),
                timeout=5.0,
            )

    def test_hung_call_abandoned_at_the_deadline(self):
        executor = ParallelExecutor(max_workers=1)
        hung = threading.Event()

        def hang():
            hung.wait(5.0)

        start = time.perf_counter()
        with obs.capture("test") as tracer:
            with pytest.raises(SourceTimeoutError):
                executor.call(hang, timeout=0.05)
        elapsed = time.perf_counter() - start
        hung.set()  # release the abandoned thread
        assert elapsed < 2.0, "timeout did not bound the wait"
        assert tracer.metrics.counter_total("fanout.timeouts") == 1


class TestSingleFlight:
    def test_sequential_calls_both_execute(self):
        flight = SingleFlight()
        calls = []
        assert flight.run("k", lambda: calls.append(1) or "a") == "a"
        assert flight.run("k", lambda: calls.append(2) or "b") == "b"
        assert calls == [1, 2]

    def test_concurrent_identical_calls_coalesce(self):
        flight = SingleFlight()
        executed = []
        coalesced = []
        gate = threading.Event()

        def slow_fetch():
            executed.append(threading.current_thread().name)
            gate.wait(5.0)
            return "rows"

        results = []

        def worker():
            results.append(
                flight.run(
                    "key", slow_fetch, on_coalesced=lambda: coalesced.append(1)
                )
            )

        threads = [threading.Thread(target=worker) for _ in range(5)]
        for thread in threads:
            thread.start()
        # wait until one owner is inside the fetch, then release it
        deadline = time.time() + 5.0
        while not executed and time.time() < deadline:
            time.sleep(0.001)
        # give the waiters a moment to pile onto the in-flight future
        time.sleep(0.05)
        gate.set()
        for thread in threads:
            thread.join(5.0)

        assert results == ["rows"] * 5
        assert len(executed) == 1, "coalescing must execute exactly once"
        assert len(coalesced) == 4

    def test_failure_shared_then_retryable(self):
        flight = SingleFlight()
        with pytest.raises(SourceError):
            flight.run("k", lambda: (_ for _ in ()).throw(SourceError("x")))
        # the failed key is gone: a retry executes afresh
        assert flight.run("k", lambda: "recovered") == "recovered"
