"""Lock-hammer regression tests for state shared across medpar workers.

Each test drives one previously thread-naive structure from many
threads at once and asserts no update is lost.  Before the locks
landed these raced (lost counter increments, corrupted LRU order,
duplicate fault indices); with GIL scheduling the races are
probabilistic, so the hammers use enough iterations to have failed
reliably on the unlocked code.
"""

import threading

from repro.cache.answers import AnswerCache, CacheEntry
from repro.cache.store import DictStore, LRUStore
from repro.obs.metrics import Metrics
from repro.resilience import ResiliencePolicy, SourceGuard, VirtualClock
from repro.resilience.breaker import CircuitBreaker
from repro.resilience.faults import FaultInjectingWrapper, FaultSchedule

THREADS = 8
ROUNDS = 400


def hammer(fn):
    """Run `fn(thread_index)` from THREADS threads simultaneously."""
    barrier = threading.Barrier(THREADS)

    def run(index):
        barrier.wait()
        fn(index)

    threads = [
        threading.Thread(target=run, args=(i,)) for i in range(THREADS)
    ]
    for thread in threads:
        thread.start()
    for thread in threads:
        thread.join(30.0)
        assert not thread.is_alive(), "hammer thread hung"


class TestMetricsHammer:
    def test_no_lost_counter_increments(self):
        metrics = Metrics()
        hammer(
            lambda i: [
                metrics.count("hits", source="S%d" % (i % 2))
                for _ in range(ROUNDS)
            ]
        )
        assert metrics.counter_total("hits") == THREADS * ROUNDS


class TestBreakerHammer:
    def test_no_lost_failure_counts(self):
        breaker = CircuitBreaker(threshold=THREADS * ROUNDS + 1, cooldown=30.0)
        hammer(
            lambda i: [breaker.record_failure(now=0.0) for _ in range(ROUNDS)]
        )
        assert breaker.failures == THREADS * ROUNDS
        assert breaker.state(0.0) == "closed"  # threshold not reached


class TestLRUStoreHammer:
    def test_bounded_and_consistent_under_concurrent_puts(self):
        store = LRUStore(max_entries=64, max_rows=1_000_000)
        def put_many(i):
            for j in range(ROUNDS):
                key = ("k", i, j)
                store.put(
                    key, CacheEntry(key, "S%d" % i, "c", rows=({"r": j},))
                )
                store.get(("k", i, max(0, j - 1)))
        hammer(put_many)
        assert len(store) == 64
        # the recency order and the row accounting survived the races
        entries = list(store.items())
        assert len(entries) == 64
        assert store.row_count == sum(
            len(entry.rows) for _key, entry in entries
        )


class TestAnswerCacheHammer:
    def test_stats_and_entries_consistent(self):
        cache = AnswerCache(store=DictStore())  # unbounded: no eviction
        def store_and_lookup(i):
            for j in range(ROUNDS):
                key = ("k", i, j)
                cache.store_answer(key, "S%d" % i, "c", rows=[{"r": j}])
                assert cache.lookup(key) is not None
                cache.lookup(("missing", i, j))
        hammer(store_and_lookup)
        assert cache.entry_count == THREADS * ROUNDS
        assert cache.stats.hits == THREADS * ROUNDS
        assert cache.stats.misses == THREADS * ROUNDS


class TestFaultWrapperHammer:
    class _Inner:
        name = "S"

        def query(self, source_query):
            return [source_query]

    def test_call_indices_are_not_lost(self):
        wrapper = FaultInjectingWrapper(self._Inner(), FaultSchedule())
        hammer(lambda i: [wrapper.query("q") for _ in range(ROUNDS)])
        assert wrapper.calls == THREADS * ROUNDS


class TestVirtualClockHammer:
    def test_sleep_accounting_is_exact(self):
        clock = VirtualClock()
        hammer(lambda i: [clock.sleep(0.5) for _ in range(ROUNDS)])
        assert clock.slept == THREADS * ROUNDS * 0.5
        assert clock.now() == THREADS * ROUNDS * 0.5


class TestJitterRngHammer:
    def test_one_stream_per_source_class_pair(self):
        guard = SourceGuard(ResiliencePolicy(seed=42))
        rngs = [None] * THREADS
        def fetch(i):
            rngs[i] = guard._jitter_rng("S", "c")
        hammer(fetch)
        assert all(rng is rngs[0] for rng in rngs), (
            "concurrent first touches must converge on one RNG stream"
        )
