"""Tests for the CM plug-in mechanism and the built-in translators."""

import pytest

from repro.errors import PluginError
from repro.xmlio import BUILTIN_PLUGINS, PluginTranslator, er, rdf, uml_xmi


class TestPluginEngine:
    def test_translator_requires_rules(self):
        with pytest.raises(PluginError):
            PluginTranslator.from_xml('<translator name="t"/>')

    def test_translator_requires_match(self):
        with pytest.raises(PluginError):
            PluginTranslator.from_xml(
                '<translator name="t"><rule><emit-class name="@n"/></rule></translator>'
            )

    def test_wrong_root_rejected(self):
        with pytest.raises(PluginError):
            PluginTranslator.from_xml("<nope/>")

    def test_unknown_emission_rejected(self):
        translator = PluginTranslator.from_xml(
            '<translator name="t"><rule match=".//c"><emit-zap name="@n"/></rule></translator>'
        )
        with pytest.raises(PluginError):
            translator.apply("<doc><c n='x'/></doc>")

    def test_missing_field_reported(self):
        translator = PluginTranslator.from_xml(
            '<translator name="t"><rule match=".//c"><emit-class name="@missing"/></rule></translator>'
        )
        with pytest.raises(PluginError):
            translator.apply("<doc><c/></doc>")

    def test_literal_accessor(self):
        translator = PluginTranslator.from_xml(
            """<translator name="t">
                 <rule match=".//c"><emit-class name="'fixed'"/></rule>
               </translator>"""
        )
        result = translator.apply("<doc><c/></doc>")
        assert result.cm.class_names() == ["fixed"]

    def test_text_accessor(self):
        translator = PluginTranslator.from_xml(
            """<translator name="t">
                 <rule match=".//c"><emit-class name="text"/></rule>
               </translator>"""
        )
        result = translator.apply("<doc><c>neuron</c></doc>")
        assert result.cm.class_names() == ["neuron"]

    def test_tag_accessor(self):
        translator = PluginTranslator.from_xml(
            """<translator name="t">
                 <rule match=".//thing"><emit-class name="tag"/></rule>
               </translator>"""
        )
        result = translator.apply("<doc><thing/></doc>")
        assert result.cm.class_names() == ["thing"]

    def test_child_accessor(self):
        translator = PluginTranslator.from_xml(
            """<translator name="t">
                 <rule match=".//c">
                   <emit-class name="child:label"/>
                 </rule>
               </translator>"""
        )
        result = translator.apply("<doc><c><label>axon</label></c></doc>")
        assert result.cm.class_names() == ["axon"]

    def test_vtype_conversion(self):
        translator = PluginTranslator.from_xml(
            """<translator name="t">
                 <rule match=".//o">
                   <emit-instance object="@id" class="'c'"/>
                   <emit-value object="@id" method="'m'" value="@v" vtype="int"/>
                 </rule>
               </translator>"""
        )
        result = translator.apply('<doc><o id="x" v="7"/></doc>')
        engine = result.cm.to_engine()
        assert engine.ask("x[m -> V]") == [{"V": 7}]

    def test_classes_auto_declared_from_usage(self):
        translator = PluginTranslator.from_xml(
            """<translator name="t">
                 <rule match=".//o"><emit-instance object="@id" class="@cls"/></rule>
               </translator>"""
        )
        result = translator.apply('<doc><o id="x" cls="mystery"/></doc>')
        assert "mystery" in result.cm.class_names()

    def test_cm_name_precedence(self):
        translator = PluginTranslator.from_xml(
            """<translator name="t">
                 <rule match=".//c"><emit-class name="@n"/></rule>
               </translator>"""
        )
        result = translator.apply('<doc name="docname"><c n="x"/></doc>')
        assert result.cm.name == "docname"
        result2 = translator.apply(
            '<doc name="docname"><c n="x"/></doc>', cm_name="override"
        )
        assert result2.cm.name == "override"


class TestBuiltinPlugins:
    def test_registry(self):
        assert set(BUILTIN_PLUGINS) == {"rdf", "uml", "er"}

    def test_rdf_sample(self):
        result = rdf.translate(rdf.SAMPLE_DOCUMENT)
        engine = result.cm.to_engine()
        assert engine.holds("p1 : neuron")  # via subclass
        assert engine.ask("p1[location -> L]") == [{"L": "cerebellum"}]
        assert engine.ask("p1[soma_diameter -> D]") == [{"D": 24.5}]
        assert ("purkinje_cell", "Purkinje_Cell", "location") in result.anchors

    def test_rdf_schema_shape(self):
        result = rdf.translate(rdf.SAMPLE_DOCUMENT)
        assert result.cm.classes["purkinje_cell"].superclasses == ("neuron",)
        assert result.cm.classes["neuron"].methods["location"].result_class == "string"

    def test_uml_sample(self):
        result = uml_xmi.translate(uml_xmi.SAMPLE_DOCUMENT)
        engine = result.cm.to_engine()
        assert engine.holds("p1 : 'Neuron'")
        assert engine.holds("has(p1, d1)")
        assert engine.ask("p1[location -> L]") == [{"L": "cerebellum"}]

    def test_uml_association_becomes_relation(self):
        result = uml_xmi.translate(uml_xmi.SAMPLE_DOCUMENT)
        assert result.cm.relations["has"].roles == (
            ("whole", "Neuron"),
            ("part", "Compartment"),
        )

    def test_er_sample(self):
        result = er.translate(er.SAMPLE_DOCUMENT)
        engine = result.cm.to_engine()
        assert engine.holds("e1 : experiment")
        assert engine.holds("e1 : record")  # via IsA
        assert engine.ask("measures(E, N)") == [{"E": "e1", "N": "n1"}]
        assert engine.ask("n1[label -> L]") == [{"L": "purkinje-17"}]

    def test_er_anchor(self):
        result = er.translate(er.SAMPLE_DOCUMENT)
        assert ("neuron", "Neuron", "label") in result.anchors

    def test_all_plugins_produce_loadable_engines(self):
        for module in BUILTIN_PLUGINS.values():
            result = module.translate(module.SAMPLE_DOCUMENT)
            engine = result.cm.to_engine()
            assert engine.classes()  # evaluates without error
