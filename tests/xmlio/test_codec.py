"""Tests for the XML wire codec."""

import pytest

from repro.errors import XMLTransportError
from repro.gcm import ConceptualModel
from repro.xmlio import (
    cm_from_xml,
    cm_to_xml,
    decode_value,
    element_value,
    encode_value,
    parse_xml,
    serialize,
    value_element,
)


def sample_cm():
    cm = ConceptualModel("SYNAPSE")
    cm.add_class("compartment")
    cm.add_class(
        "spine",
        superclasses=["compartment"],
        methods={"len_um": "float", "proteins": ("protein", True)},
    )
    cm.add_relation("has", [("whole", "compartment"), ("part", "compartment")])
    cm.add_instance("s1", "spine")
    cm.set_value("s1", "len_um", 1.5)
    cm.set_value("s1", "count", 4)
    cm.add_relation_instance("has", whole="d1", part="s1")
    cm.add_datalog("instance(X, long) :- method_val(X, len_um, L), L > 1.")
    return cm


class TestValueEncoding:
    @pytest.mark.parametrize(
        "value", ["abc", 42, -7, 3.5, True, False, "Purkinje Cell"]
    )
    def test_roundtrip(self, value):
        text, tag = encode_value(value)
        assert decode_value(text, tag) == value

    def test_type_preserved_distinctly(self):
        assert decode_value(*reversed(("int", "1"))) == 1
        assert decode_value("1", "str") == "1"

    def test_unsupported_type_rejected(self):
        with pytest.raises(XMLTransportError):
            encode_value([1, 2])

    def test_value_element_roundtrip(self):
        element = value_element("v", 2.5, name="x")
        assert element_value(element) == 2.5
        assert element.get("name") == "x"


class TestSerialization:
    def test_deterministic(self):
        cm = sample_cm()
        assert cm_to_xml(cm) == cm_to_xml(cm)

    def test_attribute_escaping(self):
        element = parse_xml('<a name="x&amp;y"/>')
        assert 'name="x&amp;y"' in serialize(element)

    def test_text_escaping(self):
        element = value_element("rule", "a < b & c")
        text = serialize(element)
        assert "&lt;" in text and "&amp;" in text

    def test_malformed_xml_rejected(self):
        with pytest.raises(XMLTransportError):
            parse_xml("<a><b></a>")


class TestCMRoundtrip:
    def test_schema_preserved(self):
        cm = cm_from_xml(cm_to_xml(sample_cm()))
        assert cm.class_names() == ["compartment", "protein", "spine"] or (
            "spine" in cm.class_names()
        )
        assert cm.classes["spine"].superclasses == ("compartment",)
        assert cm.classes["spine"].methods["len_um"].result_class == "float"
        assert cm.classes["spine"].methods["proteins"].multivalued

    def test_relations_preserved(self):
        cm = cm_from_xml(cm_to_xml(sample_cm()))
        assert cm.relations["has"].roles == (
            ("whole", "compartment"),
            ("part", "compartment"),
        )

    def test_data_preserved_with_types(self):
        cm = cm_from_xml(cm_to_xml(sample_cm()))
        engine = cm.to_engine()
        assert engine.ask("s1[len_um -> L]") == [{"L": 1.5}]
        assert engine.ask("s1[count -> C]") == [{"C": 4}]
        assert engine.holds("has(d1, s1)")

    def test_rules_preserved(self):
        cm = cm_from_xml(cm_to_xml(sample_cm()))
        engine = cm.to_engine()
        assert engine.instances_of("long") == ["s1"]

    def test_fixpoint_xml(self):
        once = cm_to_xml(sample_cm())
        twice = cm_to_xml(cm_from_xml(once))
        assert once == twice

    def test_wrong_root_rejected(self):
        with pytest.raises(XMLTransportError):
            cm_from_xml("<nope/>")

    def test_missing_name_rejected(self):
        with pytest.raises(XMLTransportError):
            cm_from_xml("<cm/>")

    def test_unknown_data_element_rejected(self):
        with pytest.raises(XMLTransportError):
            cm_from_xml('<cm name="x"><data><weird/></data></cm>')
