"""Tests for the XML query/answer dialogue."""

import pytest

from repro.errors import CapabilityError, XMLTransportError
from repro.neuro import build_ncmir
from repro.sources import SourceQuery
from repro.xmlio import (
    handle_request,
    query_from_xml,
    query_to_xml,
    rows_from_xml,
    rows_to_xml,
    template_query_from_xml,
    template_query_to_xml,
)


@pytest.fixture(scope="module")
def ncmir():
    return build_ncmir()


class TestQueryCodec:
    def test_roundtrip_selections(self):
        query = SourceQuery(
            "protein_amount",
            {"location": "Purkinje Cell dendrite", "id": 3},
        )
        decoded = query_from_xml(query_to_xml(query))
        assert decoded.class_name == "protein_amount"
        assert decoded.selections == query.selections
        # types preserved
        assert isinstance(decoded.selections["id"], int)

    def test_roundtrip_projection(self):
        query = SourceQuery("c", {}, projection=["a", "b"])
        decoded = query_from_xml(query_to_xml(query))
        assert decoded.projection == ["a", "b"]

    def test_empty_projection_is_none(self):
        decoded = query_from_xml(query_to_xml(SourceQuery("c", {"a": 1})))
        assert decoded.projection is None

    def test_bad_root_rejected(self):
        with pytest.raises(XMLTransportError):
            query_from_xml("<nope/>")
        with pytest.raises(XMLTransportError):
            query_from_xml("<source-query/>")

    def test_template_roundtrip(self):
        text = template_query_to_xml("c", "t", {"min_amount": 2.5, "tag": "x"})
        class_name, template, arguments = template_query_from_xml(text)
        assert (class_name, template) == ("c", "t")
        assert arguments == {"min_amount": 2.5, "tag": "x"}


class TestAnswerCodec:
    def test_roundtrip(self):
        rows = [
            {"_object": "S.c.1", "_raw": {"x": 1}, "name": "RyR", "amount": 3.5},
            {"_object": "S.c.2", "_raw": {}, "name": "CB", "amount": 1},
        ]
        class_name, decoded = rows_from_xml(rows_to_xml("c", rows))
        assert class_name == "c"
        assert decoded[0]["_object"] == "S.c.1"
        assert decoded[0]["amount"] == 3.5
        assert decoded[1]["amount"] == 1
        assert "_raw" not in decoded[0]

    def test_none_values_dropped(self):
        rows = [{"_object": "o", "a": None, "b": 1}]
        _cls, decoded = rows_from_xml(rows_to_xml("c", rows))
        assert "a" not in decoded[0]

    def test_count_mismatch_detected(self):
        text = rows_to_xml("c", [{"_object": "o", "a": 1}])
        tampered = text.replace('count="1"', 'count="2"')
        with pytest.raises(XMLTransportError):
            rows_from_xml(tampered)


class TestMalformedAnswers:
    """Every malformed payload must raise XMLTransportError — never
    ExpatError, KeyError, or silently wrong data."""

    def good_answer(self):
        return rows_to_xml(
            "protein_amount",
            [
                {"_object": "S.protein_amount.1", "protein_name": "Calbindin"},
                {"_object": "S.protein_amount.2", "protein_name": "RyR"},
            ],
        )

    def test_truncated_document(self):
        answer = self.good_answer()
        with pytest.raises(XMLTransportError):
            rows_from_xml(answer[: len(answer) // 2])

    def test_wrong_root_element(self):
        answer = self.good_answer().replace("<answer", "<wrong", 1).replace(
            "</answer>", "</wrong>"
        )
        with pytest.raises(XMLTransportError):
            rows_from_xml(answer)

    def test_missing_class_attribute(self):
        with pytest.raises(XMLTransportError):
            rows_from_xml('<answer count="0"/>')

    def test_lying_count(self):
        answer = self.good_answer().replace('count="2"', 'count="92"')
        with pytest.raises(XMLTransportError):
            rows_from_xml(answer)

    def test_non_numeric_count(self):
        answer = self.good_answer().replace('count="2"', 'count="lots"')
        with pytest.raises(XMLTransportError):
            rows_from_xml(answer)

    def test_nameless_column(self):
        answer = (
            '<answer class="c" count="1"><row object="o">'
            "<col>orphan</col></row></answer>"
        )
        with pytest.raises(XMLTransportError):
            rows_from_xml(answer)

    def test_corrupt_typed_value(self):
        answer = (
            '<answer class="c" count="1"><row object="o">'
            '<col name="amount" type="float">not-a-number</col>'
            "</row></answer>"
        )
        with pytest.raises(XMLTransportError):
            rows_from_xml(answer)

    def test_registration_without_capabilities_section(self):
        from repro.core.registration import parse_registration
        from repro.xmlio.gcm_xml import cm_to_element
        from repro.xmlio.doc import serialize

        import xml.etree.ElementTree as ET

        root = ET.Element("register", {"source": "S"})
        root.append(cm_to_element(build_ncmir().schema_cm()))
        with pytest.raises(XMLTransportError):
            parse_registration(serialize(root))


class TestWrapperEndpoint:
    def test_query_over_the_wire(self, ncmir):
        request = query_to_xml(
            SourceQuery("protein_amount", {"location": "Purkinje Cell"})
        )
        class_name, rows = rows_from_xml(handle_request(ncmir, request))
        assert class_name == "protein_amount"
        assert rows
        assert all(row["location"] == "Purkinje Cell" for row in rows)

    def test_answers_match_direct_call(self, ncmir):
        query = SourceQuery("protein_amount", {"protein_name": "Calbindin"})
        direct = ncmir.query(query)
        _cls, wired = rows_from_xml(handle_request(ncmir, query_to_xml(query)))
        assert [row["_object"] for row in wired] == [
            row["_object"] for row in direct
        ]
        assert [row["amount"] for row in wired] == [
            row["amount"] for row in direct
        ]

    def test_template_over_the_wire(self, ncmir):
        request = template_query_to_xml(
            "protein_amount", "by_min_amount", {"min_amount": 5.0}
        )
        _cls, rows = rows_from_xml(handle_request(ncmir, request))
        assert rows
        assert all(row["amount"] >= 5.0 for row in rows)

    def test_capability_violation_surfaces(self, ncmir):
        request = query_to_xml(SourceQuery("protein_amount", {"amount": 1.0}))
        with pytest.raises(CapabilityError):
            handle_request(ncmir, request)

    def test_unknown_request_rejected(self, ncmir):
        with pytest.raises(XMLTransportError):
            handle_request(ncmir, "<mystery/>")
