"""Property-based tests for the XML wire codec."""

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.gcm import ConceptualModel
from repro.xmlio import cm_from_xml, cm_to_xml, decode_value, encode_value

# names the codec must survive: spaces, quotes, unicode, XML specials
names = st.text(
    alphabet=st.characters(
        whitelist_categories=("Lu", "Ll", "Nd"),
        whitelist_characters=" _-&<>\"'",
    ),
    min_size=1,
    max_size=12,
).filter(lambda s: s.strip() == s and s)

scalars = st.one_of(
    st.integers(-10**6, 10**6),
    st.floats(allow_nan=False, allow_infinity=False, width=32),
    st.booleans(),
    names,
)


class TestValueRoundtrip:
    @given(scalars)
    def test_encode_decode_identity(self, value):
        text, tag = encode_value(value)
        decoded = decode_value(text, tag)
        assert decoded == value
        assert type(decoded) is type(value)


@st.composite
def conceptual_models(draw):
    cm = ConceptualModel(draw(names))
    class_names = draw(
        st.lists(names, min_size=1, max_size=4, unique=True)
    )
    for index, class_name in enumerate(class_names):
        supers = class_names[:index]
        methods = {}
        for method_name in draw(
            st.lists(names, max_size=3, unique=True)
        ):
            methods[method_name] = draw(names)
        cm.add_class(
            class_name,
            superclasses=draw(st.sets(st.sampled_from(supers), max_size=2))
            if supers
            else (),
            methods=methods,
        )
    # some instances with values
    for index in range(draw(st.integers(0, 4))):
        obj = "obj%d" % index
        class_name = draw(st.sampled_from(class_names))
        cm.add_instance(obj, class_name)
        for method_name in cm.classes[class_name].methods:
            cm.set_value(obj, method_name, draw(scalars))
    return cm


class TestCMRoundtripProperties:
    @settings(max_examples=40, deadline=None)
    @given(conceptual_models())
    def test_schema_survives_wire(self, cm):
        decoded = cm_from_xml(cm_to_xml(cm))
        assert decoded.class_names() == cm.class_names()
        for name, class_def in cm.classes.items():
            other = decoded.classes[name]
            assert set(other.superclasses) == set(class_def.superclasses)
            assert set(other.methods) == set(class_def.methods)

    @settings(max_examples=40, deadline=None)
    @given(conceptual_models())
    def test_wire_format_is_fixpoint(self, cm):
        once = cm_to_xml(cm)
        assert cm_to_xml(cm_from_xml(once)) == once

    @settings(max_examples=30, deadline=None)
    @given(conceptual_models())
    def test_data_semantics_preserved(self, cm):
        original = cm.to_engine().evaluate().store
        decoded = cm_from_xml(cm_to_xml(cm)).to_engine().evaluate().store
        assert original.same_facts(decoded)
