"""Smoke tests: every shipped example runs to completion."""

import pathlib
import runpy

import pytest

EXAMPLES = sorted(
    (pathlib.Path(__file__).resolve().parent.parent / "examples").glob("*.py")
)


@pytest.mark.parametrize("path", EXAMPLES, ids=lambda p: p.stem)
def test_example_runs(path, capsys):
    runpy.run_path(str(path), run_name="__main__")
    out = capsys.readouterr().out
    assert out.strip(), "example %s produced no output" % path.name


def test_examples_exist():
    assert len(EXAMPLES) >= 3
