"""The no-op tracer leaves results byte-identical.

Instrumentation must be observation only: running the shipped scenario
with a tracer installed and with the default no-op must produce the
same plan description, the same answers, the same ask() rows — and
with the no-op, no per-evaluation metrics object may even be built.
"""

from repro import obs
from repro.neuro import build_scenario, section5_query


def _run_scenario():
    mediator = build_scenario(include_anatom_source=True).mediator
    plan, context = mediator.correlate(section5_query())
    answers = [
        (protein, round(distribution.total(), 9))
        for protein, distribution in context.answers
    ]
    rows = sorted(
        str(row["X"]) for row in mediator.ask("X : 'Compartment'")
    )
    return {
        "plan": plan.describe(),
        "answers": repr(answers),
        "compartments": rows,
        "wire_log": list(mediator.wire_log),
    }


def test_results_identical_with_and_without_tracer():
    baseline = _run_scenario()
    with obs.capture("identity-check"):
        traced = _run_scenario()
    assert obs.active() is obs.NOOP
    untraced = _run_scenario()
    assert baseline == traced == untraced


def test_noop_run_builds_no_metrics():
    mediator = build_scenario().mediator
    result = mediator.engine().evaluate()
    assert result.metrics is None


def test_traced_run_attaches_metrics():
    with obs.capture("metrics-check"):
        mediator = build_scenario().mediator
        result = mediator.engine().evaluate()
    assert result.metrics is not None
    assert result.metrics.rule_firings > 0
    assert result.metrics.store_size == len(result.store)
