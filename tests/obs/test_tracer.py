"""Unit tests for the medtrace core: spans, metrics, renderers."""

import json

import pytest

from repro import obs


@pytest.fixture(autouse=True)
def _no_leftover_tracer():
    yield
    obs.uninstall()


class TestNoopDefault:
    def test_default_is_disabled(self):
        assert obs.active() is obs.NOOP
        assert not obs.enabled()

    def test_noop_span_is_inert_and_shared(self):
        span = obs.span("anything", attr=1)
        assert span is obs.NOOP_SPAN
        with span as entered:
            entered.set(more=2).event("nothing", x=3)
        assert not span.enabled

    def test_noop_helpers_do_nothing(self):
        obs.event("e", a=1)
        obs.count("c", 5)
        obs.gauge("g", 7)
        assert obs.active() is obs.NOOP


class TestInstallUninstall:
    def test_install_and_uninstall(self):
        tracer = obs.install()
        assert obs.active() is tracer
        assert obs.enabled()
        returned = obs.uninstall()
        assert returned is tracer
        assert obs.active() is obs.NOOP

    def test_capture_restores_previous(self):
        outer = obs.install(obs.Tracer("outer"))
        with obs.capture("inner") as inner:
            assert obs.active() is inner
        assert obs.active() is outer
        obs.uninstall()
        assert obs.active() is obs.NOOP


class TestSpans:
    def test_nesting_and_attrs(self):
        with obs.capture() as tracer:
            with obs.span("parent", a=1) as parent:
                with obs.span("child", b=2):
                    obs.event("tick", n=3)
                parent.set(done=True)
        assert [root.name for root in tracer.roots] == ["parent"]
        parent = tracer.roots[0]
        assert parent.attrs == {"a": 1, "done": True}
        assert [c.name for c in parent.children] == ["child"]
        child = parent.children[0]
        assert child.attrs == {"b": 2}
        assert [e.name for e in child.events] == ["tick"]
        assert child.events[0].attrs == {"n": 3}

    def test_durations_measured(self):
        with obs.capture() as tracer:
            with obs.span("timed"):
                pass
        duration = tracer.roots[0].duration()
        assert duration is not None and duration >= 0

    def test_exception_is_recorded_and_span_closed(self):
        with obs.capture() as tracer:
            with pytest.raises(ValueError):
                with obs.span("boom"):
                    raise ValueError("no")
        span = tracer.roots[0]
        assert span.finished
        assert span.attrs["error"] == "ValueError"
        assert tracer.current is obs.NOOP_SPAN

    def test_find_spans_depth_first(self):
        with obs.capture() as tracer:
            with obs.span("a"):
                with obs.span("x", which=1):
                    pass
            with obs.span("x", which=2):
                pass
        assert [s.attrs["which"] for s in tracer.find_spans("x")] == [1, 2]


class TestMetrics:
    def test_counters_and_gauges(self):
        metrics = obs.Metrics()
        metrics.count("hits")
        metrics.count("hits", 2)
        metrics.count("hits", 1, source="A")
        metrics.gauge("size", 10)
        metrics.gauge("size", 20)
        assert metrics.counter_value("hits") == 3
        assert metrics.counter_value("hits", source="A") == 1
        assert metrics.counter_total("hits") == 4
        assert metrics.gauge_value("size") == 20

    def test_merge(self):
        a, b = obs.Metrics(), obs.Metrics()
        a.count("n", 1)
        b.count("n", 2)
        b.gauge("g", 5)
        a.merge(b)
        assert a.counter_value("n") == 3
        assert a.gauge_value("g") == 5

    def test_as_dict_is_sorted_and_json_ready(self):
        metrics = obs.Metrics()
        metrics.count("b")
        metrics.count("a", 2, k="v")
        exported = metrics.as_dict()
        names = [row["name"] for row in exported["counters"]]
        assert names == sorted(names)
        json.dumps(exported)  # must not raise


class TestRenderers:
    def _sample_tracer(self):
        with obs.capture("sample") as tracer:
            with obs.span("outer", n=1):
                with obs.span("inner", label="two words"):
                    obs.event("skip", source="S")
            obs.count("things", 3)
            obs.gauge("level", 0.5)
        return tracer

    def test_tree_masks_timings_deterministically(self):
        tracer = self._sample_tracer()
        text = obs.render_tree(tracer, mask_timings=True)
        assert text == obs.render_tree(tracer, mask_timings=True)
        assert "outer" in text and "inner" in text
        assert "'two words'" in text
        assert "! skip" in text
        assert "things = 3" in text
        assert "ms" not in text.split("counters:")[0]

    def test_unmasked_tree_shows_milliseconds(self):
        tracer = self._sample_tracer()
        assert "ms" in obs.render_tree(tracer)

    def test_json_document_shape(self):
        tracer = self._sample_tracer()
        document = json.loads(obs.to_json(tracer))
        assert document["trace"] == "sample"
        (outer,) = document["spans"]
        assert outer["name"] == "outer"
        assert outer["duration_ms"] >= 0
        (inner,) = outer["children"]
        assert inner["events"][0]["name"] == "skip"
        counter_names = {c["name"] for c in document["metrics"]["counters"]}
        assert counter_names == {"things"}

    def test_json_masked_timings_are_null(self):
        tracer = self._sample_tracer()
        document = json.loads(obs.to_json(tracer, mask_timings=True))
        assert document["spans"][0]["duration_ms"] is None


class TestEvaluationMetrics:
    def test_strata_and_totals(self):
        metrics = obs.EvaluationMetrics()
        s0 = metrics.begin_stratum(0, ["p/1"])
        s0.rounds.extend([5, 2])
        s0.facts_derived = 7
        s1 = metrics.begin_stratum(1)
        s1.rounds.append(1)
        s1.facts_derived = 1
        assert metrics.facts_derived == 8
        assert metrics.rounds_total == 3
        exported = metrics.as_dict()
        assert exported["strata"][0]["relations"] == ["p/1"]
        json.dumps(exported)
