"""Golden-file test: the masked span tree of the shipped Section 5
scenario is stable, byte for byte.

With timings masked the rendering is a pure *shape* — span names,
nesting, attributes, events, metric counters — so any change to the
instrumentation or to the evaluation itself shows up as a diff.

Regenerate after an intentional instrumentation change with::

    PYTHONPATH=src:. python -c "
    from tests.obs.test_golden_trace import traced_section5
    from repro import obs
    open('tests/obs/golden/section5_trace.txt', 'w').write(
        obs.render_tree(traced_section5(), mask_timings=True) + '\\n')"
"""

import pathlib

import pytest

from repro import obs
from repro.neuro import build_scenario, section5_query

GOLDEN = pathlib.Path(__file__).parent / "golden" / "section5_trace.txt"

#: every layer the trace must witness (ISSUE acceptance criterion)
REQUIRED_SPANS = {
    "plan.step",          # planner step execution
    "flogic.evaluate",    # F-logic evaluation
    "datalog.stratum",    # Datalog stratified evaluation
    "datalog.round",      # semi-naive rounds
    "dm.lub",             # domain-map graph operation
    "source.query",       # wrapper retrieval
    "xml.wire",           # XML wire exchange
}


def traced_section5():
    """The shipped scenario's correlation run under a capture tracer."""
    with obs.capture("section5") as tracer:
        mediator = build_scenario(include_anatom_source=True).mediator
        mediator.correlate(section5_query())
    return tracer


@pytest.fixture(scope="module")
def tracer():
    return traced_section5()


def test_masked_trace_matches_golden_file(tracer):
    assert obs.render_tree(tracer, mask_timings=True) + "\n" == GOLDEN.read_text()


def test_trace_shape_is_deterministic():
    first = obs.render_tree(traced_section5(), mask_timings=True)
    second = obs.render_tree(traced_section5(), mask_timings=True)
    assert first == second


def test_trace_covers_every_layer(tracer):
    for name in sorted(REQUIRED_SPANS):
        assert tracer.find_spans(name), "no %r span recorded" % name


def test_trace_counts_the_evaluation_work(tracer):
    metrics = tracer.metrics
    assert metrics.counter_total("datalog.rule_firings") > 0
    assert metrics.counter_total("datalog.facts_derived") > 0
    assert metrics.counter_total("source.rows_retrieved") > 0
    assert metrics.counter_total("wire.bytes") > 0
    assert metrics.counter_total("planner.steps") == len(
        tracer.find_spans("plan.step")
    )
