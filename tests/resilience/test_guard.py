"""Tests for SourceGuard: retry, breaker, staleness, timeout, deadline."""

import pytest

from repro.errors import BreakerOpenError, SourceError, SourceTimeoutError
from repro.resilience import (
    ResiliencePolicy,
    STATUS_BREAKER_OPEN,
    STATUS_FAILED,
    STATUS_OK,
    STATUS_RETRIED,
    STATUS_STALE,
    SourceGuard,
    VirtualClock,
)


def make_guard(clock=None, **kwargs):
    clock = clock if clock is not None else VirtualClock()
    policy = ResiliencePolicy(clock=clock.now, sleep=clock.sleep, **kwargs)
    return SourceGuard(policy), clock


class Flaky:
    """A callable failing its first `failures` invocations."""

    def __init__(self, failures, result="rows", exc=SourceError):
        self.failures = failures
        self.result = result
        self.exc = exc
        self.calls = 0

    def __call__(self):
        self.calls += 1
        if self.calls <= self.failures:
            raise self.exc("down (call %d)" % self.calls)
        return self.result


class TestRetries:
    def test_first_try_success_is_ok(self):
        guard, _clock = make_guard()
        assert guard.call("S", "c", lambda: "rows") == "rows"
        (outcome,) = guard.outcomes
        assert outcome.status == STATUS_OK
        assert outcome.attempts == 1
        assert outcome.retries == 0

    def test_transient_failure_recovers_via_retry(self):
        guard, clock = make_guard(max_retries=2, backoff_base=0.1)
        flaky = Flaky(failures=1)
        assert guard.call("S", "c", flaky) == "rows"
        (outcome,) = guard.outcomes
        assert outcome.status == STATUS_RETRIED
        assert outcome.attempts == 2
        assert outcome.retries == 1
        assert clock.slept == pytest.approx(0.1)  # one backoff

    def test_backoff_delays_are_exponential(self):
        guard, clock = make_guard(
            max_retries=3, backoff_base=0.1, backoff_multiplier=2.0
        )
        guard.call("S", "c", Flaky(failures=3))
        assert clock.slept == pytest.approx(0.1 + 0.2 + 0.4)

    def test_exhausted_retries_raise_the_last_error(self):
        guard, _clock = make_guard(max_retries=2)
        flaky = Flaky(failures=99)
        with pytest.raises(SourceError):
            guard.call("S", "c", flaky)
        assert flaky.calls == 3  # 1 + max_retries
        (outcome,) = guard.outcomes
        assert outcome.status == STATUS_FAILED
        assert outcome.attempts == 3
        assert "SourceError" in outcome.error

    def test_non_repro_errors_are_not_retried(self):
        guard, _clock = make_guard(max_retries=5)
        calls = []

        def bad():
            calls.append(1)
            raise KeyError("not a source failure")

        with pytest.raises(KeyError):
            guard.call("S", "c", bad)
        assert len(calls) == 1  # no retry on unexpected exception types

    def test_seeded_jitter_reproduces_sleep_sequence(self):
        slept = []
        for _ in range(2):
            guard, clock = make_guard(
                max_retries=3, backoff_base=0.1, jitter=0.3, seed=42
            )
            guard.call("S", "c", Flaky(failures=3))
            slept.append(clock.slept)
        assert slept[0] == slept[1]


class TestBreaker:
    def test_breaker_opens_and_sheds_calls(self):
        guard, _clock = make_guard(max_retries=0, breaker_threshold=2)
        flaky = Flaky(failures=99)
        for _ in range(2):
            with pytest.raises(SourceError):
                guard.call("S", "c", flaky)
        # breaker now open: the source is not even contacted
        with pytest.raises(BreakerOpenError) as excinfo:
            guard.call("S", "c", flaky)
        assert flaky.calls == 2
        assert excinfo.value.source == "S"
        assert excinfo.value.class_name == "c"
        assert guard.outcomes[-1].status == STATUS_BREAKER_OPEN

    def test_half_open_probe_recovers_the_source(self):
        guard, clock = make_guard(
            max_retries=0, breaker_threshold=1, breaker_cooldown=30.0
        )
        with pytest.raises(SourceError):
            guard.call("S", "c", Flaky(failures=99))
        with pytest.raises(BreakerOpenError):
            guard.call("S", "c", lambda: "rows")
        clock.advance(30.0)  # cooldown elapses -> half-open probe
        assert guard.call("S", "c", lambda: "rows") == "rows"
        assert guard.breakers.state_for_source("S", clock.now()) == "closed"

    def test_breakers_are_per_class(self):
        guard, _clock = make_guard(max_retries=0, breaker_threshold=1)
        with pytest.raises(SourceError):
            guard.call("S", "sick", Flaky(failures=99))
        # the same source's other class is unaffected
        assert guard.call("S", "healthy", lambda: "rows") == "rows"


class TestStaleness:
    def test_serves_last_known_good_when_down(self):
        guard, _clock = make_guard(max_retries=0, serve_stale=True)
        key = ("q",)
        assert guard.call("S", "c", lambda: ["fresh"], cache_key=key) == [
            "fresh"
        ]

        def down():
            raise SourceError("gone")

        assert guard.call("S", "c", down, cache_key=key) == ["fresh"]
        assert guard.outcomes[-1].status == STATUS_STALE
        assert guard.outcomes[-1].stale

    def test_stale_serving_requires_a_prior_answer(self):
        guard, _clock = make_guard(max_retries=0, serve_stale=True)

        def down():
            raise SourceError("gone")

        with pytest.raises(SourceError):
            guard.call("S", "c", down, cache_key=("q",))

    def test_breaker_open_can_serve_stale(self):
        guard, _clock = make_guard(
            max_retries=0, breaker_threshold=1, serve_stale=True
        )
        key = ("q",)
        guard.call("S", "c", lambda: ["fresh"], cache_key=key)

        def down():
            raise SourceError("gone")

        with pytest.raises(SourceError):
            guard.call("S", "c", down, cache_key=("other",))
        # breaker open; the cached query is served stale instead of shed
        assert guard.call("S", "c", down, cache_key=key) == ["fresh"]
        assert guard.outcomes[-1].status == STATUS_STALE

    def test_no_caching_without_serve_stale(self):
        guard, _clock = make_guard(max_retries=0, serve_stale=False)
        guard.call("S", "c", lambda: ["fresh"], cache_key=("q",))

        def down():
            raise SourceError("gone")

        with pytest.raises(SourceError):
            guard.call("S", "c", down, cache_key=("q",))


class TestTimeouts:
    def test_slow_call_times_out(self):
        guard, clock = make_guard(max_retries=0, call_timeout=1.0)

        def slow():
            clock.advance(5.0)
            return "rows"

        with pytest.raises(SourceTimeoutError):
            guard.call("S", "c", slow)
        assert "timeout" in guard.outcomes[-1].error.lower()

    def test_timeout_then_retry_succeeds(self):
        guard, clock = make_guard(max_retries=1, call_timeout=1.0)
        state = {"first": True}

        def sometimes_slow():
            if state.pop("first", False):
                clock.advance(5.0)
            return "rows"

        assert guard.call("S", "c", sometimes_slow) == "rows"
        assert guard.outcomes[-1].status == STATUS_RETRIED


class TestPlanDeadline:
    def test_deadline_stops_retries(self):
        guard, clock = make_guard(
            max_retries=10, backoff_base=1.0, plan_deadline=2.5
        )
        flaky = Flaky(failures=99)
        with guard.plan_scope():
            with pytest.raises(SourceError):
                guard.call("S", "c", flaky)
        # backoff sleeps burn the budget; retries stop once exhausted
        assert flaky.calls < 11
        assert clock.slept <= 2.5 + 1e-9

    def test_scope_is_reentrant(self):
        guard, _clock = make_guard(plan_deadline=10.0)
        with guard.plan_scope():
            outer = guard.deadline_remaining()
            with guard.plan_scope():
                # nested scope shares the outer budget
                assert guard.deadline_remaining() == outer
            assert guard.deadline_remaining() is not None
        assert guard.deadline_remaining() is None

    def test_no_deadline_means_unbounded(self):
        guard, _clock = make_guard()
        with guard.plan_scope():
            assert guard.deadline_remaining() is None


class TestOutcomeLog:
    def test_mark_and_slice(self):
        guard, _clock = make_guard()
        guard.call("A", "c", lambda: 1)
        mark = guard.mark()
        guard.call("B", "c", lambda: 2)
        sliced = guard.outcomes_since(mark)
        assert [o.source for o in sliced] == ["B"]

    def test_outcome_as_dict_is_json_ready(self):
        import json

        guard, _clock = make_guard()
        guard.call("A", "c", lambda: 1)
        json.dumps(guard.outcomes[0].as_dict())


class TestObservability:
    def test_retry_and_breaker_flow_to_metrics(self):
        from repro import obs

        guard, _clock = make_guard(max_retries=1, breaker_threshold=2)
        with obs.capture("guard") as tracer:
            with pytest.raises(SourceError):
                guard.call("S", "c", Flaky(failures=99))
        assert tracer.metrics.counter_total("resilience.retry") == 1
        assert tracer.metrics.counter_total("resilience.breaker_opened") == 1
