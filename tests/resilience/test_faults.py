"""Tests for the deterministic fault-injection harness."""

import pytest

from repro.errors import SourceError, XMLTransportError
from repro.resilience import (
    Fault,
    FaultInjectingWrapper,
    FaultSchedule,
    VirtualClock,
)
from repro.sources import Column, RelStore, Wrapper


def make_wrapper(name="LAB"):
    store = RelStore(name)
    store.create_table(
        "samples", [Column("id", "int"), Column("value", "float")], key="id"
    ).insert_many(
        [
            {"id": 1, "value": 1.5},
            {"id": 2, "value": 2.5},
            {"id": 3, "value": 3.5},
        ]
    )
    wrapper = Wrapper(name, store)
    wrapper.export_class(
        "sample", "samples", "id", methods={"sid": "id", "value": "value"}
    )
    return wrapper


def sample_query():
    from repro.sources.wrapper import SourceQuery

    return SourceQuery("sample", {}, None)


class TestFaultSchedule:
    def test_add_and_lookup(self):
        schedule = FaultSchedule().add("S", 2, Fault("error"))
        assert schedule.faults_for("S", 1) == []
        assert [f.kind for f in schedule.faults_for("S", 2)] == ["error"]

    def test_kill_fails_everything_after(self):
        schedule = FaultSchedule().kill("S", after=1)
        assert schedule.faults_for("S", 1) == []
        assert [f.kind for f in schedule.faults_for("S", 2)] == ["error"]
        assert [f.kind for f in schedule.faults_for("S", 99)] == ["error"]

    def test_flap_fails_a_window(self):
        schedule = FaultSchedule().flap("S", 2, 3)
        assert schedule.faults_for("S", 1) == []
        assert schedule.faults_for("S", 2) != []
        assert schedule.faults_for("S", 3) != []
        assert schedule.faults_for("S", 4) == []

    def test_from_seed_is_deterministic(self):
        kwargs = dict(sources=["A", "B"], calls=40, rate=0.3)
        a = FaultSchedule.from_seed(7, **kwargs)
        b = FaultSchedule.from_seed(7, **kwargs)
        c = FaultSchedule.from_seed(8, **kwargs)
        assert a.describe() == b.describe()
        assert a.describe() != c.describe()
        assert a.describe()  # seed 7 at rate 0.3 faults something

    def test_from_seed_bounds_consecutive_faults(self):
        schedule = FaultSchedule.from_seed(
            3, ["S"], calls=200, rate=0.9, max_consecutive=2
        )
        streak = longest = 0
        for call in range(1, 201):
            if schedule.faults_for("S", call):
                streak += 1
                longest = max(longest, streak)
            else:
                streak = 0
        assert longest <= 2

    def test_unknown_kind_rejected(self):
        with pytest.raises(ValueError):
            Fault("meteor-strike")


class TestFaultInjectingWrapper:
    def test_clean_calls_pass_through(self):
        facade = FaultInjectingWrapper(make_wrapper(), FaultSchedule())
        rows = facade.query(sample_query())
        assert len(rows) == 3
        assert facade.injected == []

    def test_error_fault_raises_source_error(self):
        schedule = FaultSchedule().add("LAB", 1, Fault("error"))
        facade = FaultInjectingWrapper(make_wrapper(), schedule)
        with pytest.raises(SourceError):
            facade.query(sample_query())
        # the next call (a retry) is clean
        assert len(facade.query(sample_query())) == 3
        assert facade.injected_counts() == {"error": 1}

    def test_transport_fault_raises_transport_error(self):
        schedule = FaultSchedule().add("LAB", 1, Fault("transport"))
        facade = FaultInjectingWrapper(make_wrapper(), schedule)
        with pytest.raises(XMLTransportError):
            facade.query(sample_query())

    def test_latency_fault_advances_the_clock(self):
        clock = VirtualClock()
        schedule = FaultSchedule().add(
            "LAB", 1, Fault("latency", latency=2.5)
        )
        facade = FaultInjectingWrapper(make_wrapper(), schedule, clock=clock)
        rows = facade.query(sample_query())
        assert len(rows) == 3  # latency does not fail the call
        assert clock.now() == pytest.approx(2.5)

    def test_truncate_fault_drops_trailing_rows(self):
        schedule = FaultSchedule().add("LAB", 1, Fault("truncate", drop=2))
        facade = FaultInjectingWrapper(make_wrapper(), schedule)
        assert len(facade.query(sample_query())) == 1

    def test_malformed_in_direct_mode_raises(self):
        schedule = FaultSchedule().add("LAB", 1, Fault("malformed"))
        facade = FaultInjectingWrapper(make_wrapper(), schedule)
        with pytest.raises(XMLTransportError):
            facade.query(sample_query())

    def test_control_plane_is_not_faulted(self):
        # schema export and capabilities delegate untouched even under
        # a kill-everything schedule
        schedule = FaultSchedule().kill("LAB")
        facade = FaultInjectingWrapper(make_wrapper(), schedule)
        assert "sample" in facade.capabilities()
        assert facade.schema_cm() is not None
        assert facade.calls == 0

    def test_unwrapped_exposes_the_real_wrapper(self):
        wrapper = make_wrapper()
        facade = FaultInjectingWrapper(wrapper, FaultSchedule().kill("LAB"))
        assert facade.unwrapped is wrapper
        assert wrapper.unwrapped is wrapper
        # the shortcut path bypasses injection entirely
        assert len(facade.unwrapped.query(sample_query())) == 3


class TestMalformedXmlMode:
    def run_xml(self, variant):
        from repro.xmlio.messages import (
            handle_request,
            query_to_xml,
            rows_from_xml,
        )

        schedule = FaultSchedule().add(
            "LAB", 1, Fault("malformed", variant=variant)
        )
        facade = FaultInjectingWrapper(
            make_wrapper(), schedule, mode="xml"
        )
        answer = handle_request(facade, query_to_xml(sample_query()))
        return rows_from_xml(answer)

    @pytest.mark.parametrize(
        "variant", ["truncated-doc", "wrong-root", "bad-count"]
    )
    def test_each_variant_is_caught_by_the_codec(self, variant):
        # every corruption mode must surface as XMLTransportError —
        # never ExpatError / KeyError / silent bad data
        with pytest.raises(XMLTransportError):
            self.run_xml(variant)

    def test_clean_xml_round_trips(self):
        from repro.xmlio.messages import (
            handle_request,
            query_to_xml,
            rows_from_xml,
        )

        facade = FaultInjectingWrapper(
            make_wrapper(), FaultSchedule(), mode="xml"
        )
        answer = handle_request(facade, query_to_xml(sample_query()))
        class_name, rows = rows_from_xml(answer)
        assert class_name == "sample"
        assert len(rows) == 3
