"""Tests for the ResiliencePolicy configuration object."""

import random

import pytest

from repro.resilience import ResiliencePolicy


class TestPolicyValidation:
    def test_defaults(self):
        policy = ResiliencePolicy()
        assert policy.max_retries == 2
        assert policy.breaker_threshold == 5
        assert policy.call_timeout is None
        assert policy.plan_deadline is None
        assert not policy.serve_stale
        assert policy.degrade

    def test_rejects_negative_retries(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(max_retries=-1)

    def test_rejects_out_of_range_jitter(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(jitter=1.5)

    def test_rejects_zero_breaker_threshold(self):
        with pytest.raises(ValueError):
            ResiliencePolicy(breaker_threshold=0)

    def test_breaker_threshold_none_disables_breaking(self):
        policy = ResiliencePolicy(breaker_threshold=None)
        assert policy.breaker_threshold is None

    def test_as_dict_is_json_ready(self):
        import json

        json.dumps(ResiliencePolicy().as_dict())


class TestBackoff:
    def test_exponential_progression(self):
        policy = ResiliencePolicy(
            backoff_base=0.1, backoff_multiplier=2.0, backoff_cap=10.0
        )
        assert policy.backoff_delay(1) == pytest.approx(0.1)
        assert policy.backoff_delay(2) == pytest.approx(0.2)
        assert policy.backoff_delay(3) == pytest.approx(0.4)

    def test_cap_bounds_the_delay(self):
        policy = ResiliencePolicy(
            backoff_base=1.0, backoff_multiplier=10.0, backoff_cap=3.0
        )
        assert policy.backoff_delay(5) == 3.0

    def test_no_jitter_without_rng(self):
        policy = ResiliencePolicy(jitter=0.5)
        assert policy.backoff_delay(1) == policy.backoff_delay(1)

    def test_jitter_is_deterministic_per_seed(self):
        policy = ResiliencePolicy(jitter=0.2, backoff_base=1.0)
        a = [policy.backoff_delay(1, random.Random(7)) for _ in range(3)]
        b = [policy.backoff_delay(1, random.Random(7)) for _ in range(3)]
        assert a == b
        # symmetric: within [1 - jitter, 1 + jitter] of the raw delay
        assert all(0.8 <= d <= 1.2 for d in a)

    def test_jitter_varies_across_draws(self):
        policy = ResiliencePolicy(jitter=0.2, backoff_base=1.0)
        rng = random.Random(7)
        draws = {policy.backoff_delay(1, rng) for _ in range(8)}
        assert len(draws) > 1
