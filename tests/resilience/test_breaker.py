"""Tests for the closed/open/half-open circuit breaker."""

from repro.resilience import BreakerRegistry, CircuitBreaker
from repro.resilience.breaker import CLOSED, HALF_OPEN, OPEN


class TestCircuitBreaker:
    def test_starts_closed_and_allows(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0)
        assert breaker.state() == CLOSED
        assert breaker.allow(0.0)

    def test_opens_after_threshold_consecutive_failures(self):
        breaker = CircuitBreaker(threshold=3, cooldown=10.0)
        assert not breaker.record_failure(0.0)
        assert not breaker.record_failure(1.0)
        assert breaker.record_failure(2.0)  # third failure opens
        assert breaker.state() == OPEN
        assert not breaker.allow(2.5)

    def test_success_resets_the_failure_streak(self):
        breaker = CircuitBreaker(threshold=2, cooldown=10.0)
        breaker.record_failure(0.0)
        breaker.record_success()
        breaker.record_failure(1.0)
        assert breaker.state() == CLOSED  # streak broken, 1 < threshold

    def test_half_open_probe_after_cooldown(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert not breaker.allow(5.0)  # still cooling down
        assert breaker.state(5.0) == OPEN
        assert breaker.state(10.0) == HALF_OPEN  # cooldown elapsed
        assert breaker.allow(10.0)  # the probe goes through
        breaker.record_success()
        assert breaker.state() == CLOSED

    def test_half_open_failure_reopens(self):
        breaker = CircuitBreaker(threshold=1, cooldown=10.0)
        breaker.record_failure(0.0)
        assert breaker.allow(10.0)  # probe
        assert breaker.record_failure(10.0)  # probe failed: re-open
        assert breaker.state(10.0) == OPEN
        assert not breaker.allow(15.0)  # cooldown restarted at t=10
        assert breaker.allow(20.0)

    def test_none_threshold_never_opens(self):
        breaker = CircuitBreaker(threshold=None, cooldown=10.0)
        for t in range(50):
            assert not breaker.record_failure(float(t))
        assert breaker.state() == CLOSED


class TestBreakerRegistry:
    def test_keyed_by_source_and_class(self):
        registry = BreakerRegistry(threshold=1, cooldown=10.0)
        a = registry.get("S", "protein")
        b = registry.get("S", "neuron")
        assert a is not b
        assert registry.get("S", "protein") is a

    def test_state_for_source_takes_the_worst(self):
        registry = BreakerRegistry(threshold=1, cooldown=10.0)
        registry.get("S", "protein").record_failure(0.0)  # open
        registry.get("S", "neuron")  # closed
        assert registry.state_for_source("S", 0.0) == OPEN
        assert registry.state_for_source("OTHER", 0.0) == CLOSED

    def test_states_snapshot_is_sorted(self):
        registry = BreakerRegistry(threshold=1, cooldown=10.0)
        registry.get("B", "y")
        registry.get("A", "x")
        assert list(registry.states(0.0)) == [("A", "x"), ("B", "y")]
