"""Tests for the chaos harness and the degraded-answer contract."""

import json

import pytest

from repro.resilience.chaos import (
    ChaosHarness,
    run_chaos_scenario,
    run_chaos_script,
)


@pytest.fixture(scope="module")
def seed7_report():
    return run_chaos_scenario(seed=7)


class TestScenarioContract:
    def test_completes_with_degraded_answer(self, seed7_report):
        assert seed7_report.ok, seed7_report.format()
        names = [check.name for check in seed7_report.checks]
        assert "completed" in names
        assert "names-dead-source" in names
        assert "breaker-state" in names

    def test_report_names_the_dead_source(self, seed7_report):
        killed = seed7_report.degraded_answer.report_for("NCMIR")
        assert killed is not None
        assert killed.status == "skipped"
        assert killed.attempts >= 3  # 1 + max_retries on the dying call
        assert killed.breaker_state == "open"

    def test_transient_source_recovered(self, seed7_report):
        seeded = seed7_report.degraded_answer.report_for("SENSELAB")
        assert seeded is not None
        assert seeded.status in ("ok", "retried")

    def test_identical_seed_reproduces_byte_for_byte(self, seed7_report):
        rerun = run_chaos_scenario(seed=7)
        assert rerun.format() == seed7_report.format()
        assert json.dumps(rerun.as_dict(), sort_keys=True) == json.dumps(
            seed7_report.as_dict(), sort_keys=True
        )

    def test_different_seed_changes_the_schedule(self, seed7_report):
        other = run_chaos_scenario(seed=8)
        assert other.ok, other.format()  # the contract holds per seed
        assert other.format() != seed7_report.format()

    def test_report_is_json_ready(self, seed7_report):
        json.dumps(seed7_report.as_dict())

    def test_format_mentions_the_contract_verdict(self, seed7_report):
        text = seed7_report.format()
        assert text.startswith("repro chaos — seed=7")
        assert text.endswith("contract: OK")


class TestScriptMode:
    def test_example_script_survives_chaos(self):
        report = run_chaos_script("examples/quickstart.py", seed=7)
        assert report.mode == "script"
        assert report.ok, report.format()

    def test_harness_unpatches_on_exit(self):
        from repro.core.mediator import Mediator

        original_init = Mediator.__init__
        original_register = Mediator.register
        harness = ChaosHarness(seed=7)
        with harness.activate():
            assert Mediator.__init__ is not original_init
        assert Mediator.__init__ is original_init
        assert Mediator.register is original_register

    def test_faults_are_absorbed_not_raised(self):
        # a correlate-heavy deployment: wrappers actually get queried
        report = run_chaos_script(
            "examples/neuroscience_mediation.py", seed=7
        )
        assert report.ok, report.format()
        absorbed = next(
            check
            for check in report.checks
            if check.name == "faults-absorbed"
        )
        assert absorbed.passed
        # the guaranteed first-call fault means something was injected
        assert sum(report.injected.values()) > 0


class TestChaosCli:
    def test_cli_scenario_exits_zero(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--seed", "7"]) == 0
        out = capsys.readouterr().out
        assert "contract: OK" in out
        assert "[PASS] reproducible" in out

    def test_cli_json_mode(self, capsys):
        from repro.__main__ import main

        assert main(["chaos", "--seed", "7", "--json"]) == 0
        payload = json.loads(capsys.readouterr().out)
        assert payload[0]["ok"] is True
        assert payload[0]["mode"] == "scenario"
