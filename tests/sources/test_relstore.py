"""Tests for the in-memory relational store."""

import pytest

from repro.errors import RelStoreError
from repro.sources import Column, RelStore, Table


@pytest.fixture
def store():
    store = RelStore("lab")
    table = store.create_table(
        "spines",
        [
            Column("id", "int"),
            Column("region", "str"),
            Column("len_um", "float"),
        ],
        key="id",
    )
    table.insert_many(
        [
            {"id": 1, "region": "hippocampus", "len_um": 1.2},
            {"id": 2, "region": "hippocampus", "len_um": 0.7},
            {"id": 3, "region": "cerebellum", "len_um": 2.4},
        ]
    )
    return store


class TestTable:
    def test_insert_dict_and_sequence(self, store):
        table = store.table("spines")
        table.insert((4, "cortex", 0.5))
        assert len(table) == 4
        assert table.get(4)["region"] == "cortex"

    def test_duplicate_key_rejected(self, store):
        with pytest.raises(RelStoreError):
            store.insert("spines", {"id": 1, "region": "x", "len_um": 0.0})

    def test_type_checked(self, store):
        with pytest.raises(RelStoreError):
            store.insert("spines", {"id": 9, "region": 5, "len_um": 0.0})

    def test_int_column_rejects_bool(self):
        table = Table("t", [Column("n", "int")])
        with pytest.raises(RelStoreError):
            table.insert({"n": True})

    def test_float_column_accepts_int(self):
        table = Table("t", [Column("x", "float")])
        table.insert({"x": 2})
        assert table.rows()[0]["x"] == 2.0

    def test_unknown_column_rejected(self, store):
        with pytest.raises(RelStoreError):
            store.insert("spines", {"id": 9, "nope": 1})

    def test_arity_mismatch_rejected(self, store):
        with pytest.raises(RelStoreError):
            store.table("spines").insert((1, 2))

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(RelStoreError):
            Table("t", ["a", "a"])

    def test_bad_key_column_rejected(self):
        with pytest.raises(RelStoreError):
            Table("t", ["a"], key="b")

    def test_unknown_dtype_rejected(self):
        with pytest.raises(RelStoreError):
            Column("a", "decimal")

    def test_get_by_key(self, store):
        assert store.table("spines").get(3)["region"] == "cerebellum"
        assert store.table("spines").get(99) is None

    def test_get_without_key_rejected(self):
        table = Table("t", ["a"])
        with pytest.raises(RelStoreError):
            table.get(1)

    def test_nullable_values(self):
        table = Table("t", [Column("a", "int"), Column("b", "str")])
        table.insert({"a": 1})
        assert table.rows()[0]["b"] is None


class TestSelect:
    def test_select_all(self, store):
        assert len(store.select("spines")) == 3

    def test_equality_filter(self, store):
        rows = store.select("spines", where={"region": "hippocampus"})
        assert {row["id"] for row in rows} == {1, 2}

    def test_multi_column_filter(self, store):
        rows = store.select(
            "spines", where={"region": "hippocampus", "len_um": 0.7}
        )
        assert [row["id"] for row in rows] == [2]

    def test_projection(self, store):
        rows = store.select("spines", where={"id": 1}, columns=["region"])
        assert rows == [{"region": "hippocampus"}]

    def test_predicate(self, store):
        rows = store.select("spines", predicate=lambda r: r["len_um"] > 1)
        assert {row["id"] for row in rows} == {1, 3}

    def test_filter_then_predicate(self, store):
        rows = store.select(
            "spines",
            where={"region": "hippocampus"},
            predicate=lambda r: r["len_um"] > 1,
        )
        assert [row["id"] for row in rows] == [1]

    def test_unknown_where_column(self, store):
        with pytest.raises(RelStoreError):
            store.select("spines", where={"nope": 1})

    def test_unknown_projection_column(self, store):
        with pytest.raises(RelStoreError):
            store.select("spines", columns=["nope"])

    def test_index_consistency_after_inserts(self, store):
        table = store.table("spines")
        # build the index, then insert more, then re-query
        assert len(table.select(where={"region": "cerebellum"})) == 1
        table.insert({"id": 10, "region": "cerebellum", "len_um": 3.3})
        assert len(table.select(where={"region": "cerebellum"})) == 2

    def test_distinct(self, store):
        assert store.table("spines").distinct("region") == [
            "cerebellum",
            "hippocampus",
        ]


class TestStore:
    def test_table_names(self, store):
        assert store.table_names() == ["spines"]

    def test_duplicate_table_rejected(self, store):
        with pytest.raises(RelStoreError):
            store.create_table("spines", ["a"])

    def test_unknown_table_rejected(self, store):
        with pytest.raises(RelStoreError):
            store.table("nope")
        with pytest.raises(RelStoreError):
            store.select("nope")
