"""Tests for wrappers, capabilities and lifting."""

import pytest

from repro.errors import CapabilityError, SchemaError, SourceError
from repro.sources import (
    AnchorSpec,
    BindingPattern,
    ClassCapability,
    Column,
    QueryTemplate,
    RelStore,
    RoleLink,
    SourceQuery,
    Wrapper,
)

LOCATION_MAP = {
    "Purkinje Cell dendrite": "Purkinje_Dendrite",
    "Purkinje Cell": "Purkinje_Cell",
}


@pytest.fixture
def ncmir():
    store = RelStore("NCMIR")
    table = store.create_table(
        "protein_amount",
        [
            Column("id", "int"),
            Column("protein", "str"),
            Column("location", "str"),
            Column("amount", "float"),
        ],
        key="id",
    )
    table.insert_many(
        [
            {"id": 1, "protein": "Ryanodine Receptor", "location": "Purkinje Cell dendrite", "amount": 3.2},
            {"id": 2, "protein": "Calbindin", "location": "Purkinje Cell", "amount": 1.1},
            {"id": 3, "protein": "Calbindin", "location": "Purkinje Cell dendrite", "amount": 2.5},
        ]
    )
    wrapper = Wrapper("NCMIR", store)
    wrapper.export_class(
        "protein_amount",
        "protein_amount",
        "id",
        methods={"protein_name": "protein", "location": "location", "amount": "amount"},
        anchor=AnchorSpec(column="location", mapping=LOCATION_MAP),
        role_links=[RoleLink("located_in", column="location", mapping=LOCATION_MAP)],
        selectable={"location", "protein_name"},
    )
    return wrapper


class TestCapabilities:
    def test_binding_pattern_validation(self):
        with pytest.raises(CapabilityError):
            BindingPattern(["a", "b"], "b")
        with pytest.raises(CapabilityError):
            BindingPattern(["a"], "x")

    def test_binding_pattern_accepts_subset(self):
        pattern = BindingPattern(["a", "b", "c"], "bbf")
        assert pattern.accepts({"a"})
        assert pattern.accepts({"a", "b"})
        assert not pattern.accepts({"c"})

    def test_class_capability_scan(self):
        capability = ClassCapability("c", ["a"], scannable=True)
        assert capability.answerable({})
        assert not ClassCapability("c", ["a"], scannable=False).answerable({})

    def test_unknown_attribute_rejected(self):
        capability = ClassCapability("c", ["a"])
        with pytest.raises(CapabilityError):
            capability.answerable({"zz": 1})

    def test_template_argument_checking(self):
        template = QueryTemplate("t", ["x", "y"])
        template.check_arguments({"x": 1, "y": 2})
        with pytest.raises(CapabilityError):
            template.check_arguments({"x": 1})
        with pytest.raises(CapabilityError):
            template.check_arguments({"x": 1, "y": 2, "z": 3})

    def test_wrapper_capability_patterns(self, ncmir):
        capability = ncmir.capabilities()["protein_amount"]
        assert capability.answerable({"location": "x"})
        assert capability.answerable({"location": "x", "protein_name": "y"})
        assert not capability.answerable({"amount": 1.0})


class TestQueries:
    def test_scan_all(self, ncmir):
        rows = ncmir.query(SourceQuery("protein_amount"))
        assert len(rows) == 3

    def test_pushed_selection(self, ncmir):
        rows = ncmir.query(
            SourceQuery("protein_amount", {"location": "Purkinje Cell dendrite"})
        )
        assert {row["protein_name"] for row in rows} == {
            "Ryanodine Receptor",
            "Calbindin",
        }

    def test_selection_on_unsupported_attribute_rejected(self, ncmir):
        with pytest.raises(CapabilityError):
            ncmir.query(SourceQuery("protein_amount", {"amount": 1.1}))

    def test_unknown_class_rejected(self, ncmir):
        with pytest.raises(SourceError):
            ncmir.query(SourceQuery("nope"))

    def test_object_ids_stable(self, ncmir):
        rows = ncmir.query(SourceQuery("protein_amount", {"protein_name": "Calbindin"}))
        assert sorted(r["_object"] for r in rows) == [
            "NCMIR.protein_amount.2",
            "NCMIR.protein_amount.3",
        ]

    def test_projection(self, ncmir):
        rows = ncmir.query(
            SourceQuery("protein_amount", projection=["protein_name"])
        )
        assert set(rows[0]) == {"protein_name", "_object", "_raw"}

    def test_template_execution(self, ncmir):
        ncmir.add_template(
            "protein_amount",
            QueryTemplate("by_min_amount", ["min_amount"]),
            lambda store, min_amount: store.select(
                "protein_amount", predicate=lambda r: r["amount"] >= min_amount
            ),
        )
        rows = ncmir.run_template(
            "protein_amount", "by_min_amount", min_amount=2.0
        )
        assert {row["protein_name"] for row in rows} == {
            "Ryanodine Receptor",
            "Calbindin",
        }

    def test_unknown_template_rejected(self, ncmir):
        with pytest.raises(CapabilityError):
            ncmir.run_template("protein_amount", "nope")


class TestLifting:
    def test_instance_and_values(self, ncmir):
        rows = ncmir.query(SourceQuery("protein_amount", {"protein_name": "Ryanodine Receptor"}))
        facts = {str(f) for f in ncmir.lift_rows("protein_amount", rows)}
        assert "instance('NCMIR.protein_amount.1', protein_amount)." in facts
        assert (
            "method_inst('NCMIR.protein_amount.1', protein_name, 'Ryanodine Receptor')."
            in facts
        )

    def test_anchor_tagging(self, ncmir):
        rows = ncmir.query(SourceQuery("protein_amount", {"location": "Purkinje Cell"}))
        facts = {str(f) for f in ncmir.lift_rows("protein_amount", rows)}
        assert "instance('NCMIR.protein_amount.2', 'Purkinje_Cell')." in facts

    def test_role_links(self, ncmir):
        rows = ncmir.query(SourceQuery("protein_amount", {"location": "Purkinje Cell"}))
        facts = {str(f) for f in ncmir.lift_rows("protein_amount", rows)}
        assert (
            "role_fact(located_in, 'NCMIR.protein_amount.2', 'Purkinje_Cell')."
            in facts
        )

    def test_export_all_facts(self, ncmir):
        facts = ncmir.export_all_facts()
        instance_facts = [f for f in facts if f.head.pred == "instance"]
        # 3 class-instance + 3 anchor facts
        assert len(instance_facts) == 6

    def test_foreign_key_role_link(self):
        store = RelStore("S")
        store.create_table("neurons", [Column("nid", "int")], key="nid")
        store.create_table(
            "dendrites",
            [Column("did", "int"), Column("neuron", "int")],
            key="did",
        )
        store.insert("neurons", {"nid": 1})
        store.insert("dendrites", {"did": 7, "neuron": 1})
        wrapper = Wrapper("S", store)
        wrapper.export_class("neuron", "neurons", "nid", methods={"nid": "nid"})
        wrapper.export_class(
            "dendrite",
            "dendrites",
            "did",
            methods={"did": "did"},
            role_links=[RoleLink("part_of", column="neuron", target_class="neuron")],
        )
        rows = wrapper.query(SourceQuery("dendrite"))
        facts = {str(f) for f in wrapper.lift_rows("dendrite", rows)}
        assert "role_fact(part_of, 'S.dendrite.7', 'S.neuron.1')." in facts


class TestSchemaExport:
    def test_schema_cm_types(self, ncmir):
        cm = ncmir.schema_cm()
        methods = cm.classes["protein_amount"].methods
        assert methods["amount"].result_class == "float"
        assert methods["protein_name"].result_class == "string"

    def test_anchor_declarations(self, ncmir):
        anchors = ncmir.anchors()
        assert ("protein_amount", "Purkinje_Cell", "location") in anchors
        assert ("protein_amount", "Purkinje_Dendrite", "location") in anchors

    def test_semantic_rules_exported(self, ncmir):
        ncmir.add_rule("X : abundant :- X : protein_amount[amount -> A], A > 3.")
        cm = ncmir.schema_cm()
        assert len(cm.semantic_rules()) > 0

    def test_duplicate_export_rejected(self, ncmir):
        with pytest.raises(SchemaError):
            ncmir.export_class("protein_amount", "protein_amount", "id", methods={})

    def test_unknown_column_rejected(self, ncmir):
        with pytest.raises(SchemaError):
            ncmir.export_class(
                "other", "protein_amount", "id", methods={"m": "nope"}
            )

    def test_anchor_spec_validation(self):
        with pytest.raises(SchemaError):
            AnchorSpec()
        with pytest.raises(SchemaError):
            AnchorSpec(concept="C", column="c")

    def test_role_link_validation(self):
        with pytest.raises(SchemaError):
            RoleLink("r")

    def test_superclasses_auto_declared(self):
        store = RelStore("S")
        store.create_table("t", [Column("id", "int")], key="id")
        wrapper = Wrapper("S", store)
        wrapper.export_class(
            "sub", "t", "id", methods={"id": "id"}, superclasses=["sup"]
        )
        cm = wrapper.schema_cm()
        assert "sup" in cm.classes
        engine = cm.to_engine()
        assert engine.holds("sub :: sup")
