"""Tests for wrapping plug-in-translated CMs as mediator sources."""

import pytest

from repro.core import Mediator
from repro.domainmap import DomainMap
from repro.gcm import ConceptualModel
from repro.sources import SourceQuery, wrapper_from_cm
from repro.xmlio import er, rdf, uml_xmi


@pytest.fixture
def mediator():
    dm = DomainMap("t")
    dm.add_concepts(["Purkinje_Cell", "Neuron"])
    mediator = Mediator(dm)
    for module in (rdf, uml_xmi, er):
        result = module.translate(module.SAMPLE_DOCUMENT)
        mediator.register(wrapper_from_cm(result.cm, result.anchors))
    return mediator


class TestPluginSourcesRegister:
    def test_all_three_formats_register(self, mediator):
        assert mediator.source_names() == ["lab_er", "rdf_neuro", "uml_lab"]

    def test_original_object_identities_kept(self, mediator):
        # CM-backed wrappers keep the document's object names
        assert mediator.holds("p1 : purkinje_cell")
        assert mediator.ask("p1[location -> L]") == [{"L": "cerebellum"}]

    def test_inherited_methods_queryable(self, mediator):
        # location is declared on neuron; p1 is a purkinje_cell
        rows = mediator.wrapper("rdf_neuro").query(
            SourceQuery("purkinje_cell", {"location": "cerebellum"})
        )
        assert [row["_object"] for row in rows] == ["p1"]

    def test_relation_tuples_survive(self, mediator):
        assert mediator.ask("has(X, Y)") == [{"X": "p1", "Y": "d1"}]
        assert mediator.ask("measures(E, N)") == [{"E": "e1", "N": "n1"}]

    def test_anchors_registered(self, mediator):
        assert set(mediator.index.sources_for("Purkinje_Cell")) == {
            "rdf_neuro",
            "uml_lab",
        }

    def test_anchored_objects_in_dm(self, mediator):
        assert mediator.holds("p1 : 'Purkinje_Cell'")

    def test_subclass_structure_survives(self, mediator):
        assert mediator.holds("e1 : record")  # ER IsA

    def test_all_attributes_selectable(self, mediator):
        capability = mediator.capabilities("rdf_neuro")["purkinje_cell"]
        assert capability.answerable({"location": "x"})
        assert capability.answerable({"soma_diameter": 1.0})


class TestTypeInference:
    def test_numeric_columns_typed(self):
        cm = ConceptualModel("typed")
        cm.add_class("m", methods={"a": "x", "b": "x", "c": "x"})
        cm.add_instance("o1", "m")
        cm.set_value("o1", "a", 1)
        cm.set_value("o1", "b", 1.5)
        cm.set_value("o1", "c", "text")
        wrapper = wrapper_from_cm(cm)
        table = wrapper.store.table("t_m")
        dtypes = {column.name: column.dtype for column in table.columns}
        assert dtypes["a"] == "int"
        assert dtypes["b"] == "float"
        assert dtypes["c"] == "str"

    def test_mixed_int_float_widens(self):
        cm = ConceptualModel("typed")
        cm.add_class("m", methods={"a": "x"})
        for index, value in enumerate((1, 2.5)):
            obj = "o%d" % index
            cm.add_instance(obj, "m")
            cm.set_value(obj, "a", value)
        wrapper = wrapper_from_cm(cm)
        column = wrapper.store.table("t_m").columns[1]
        assert column.dtype == "float"

    def test_empty_class_still_exported(self):
        cm = ConceptualModel("empty")
        cm.add_class("nothing", methods={"a": "x"})
        wrapper = wrapper_from_cm(cm)
        assert wrapper.query(SourceQuery("nothing")) == []

    def test_semantic_rules_carried(self):
        cm = ConceptualModel("r")
        cm.add_class("m", methods={"v": "x"})
        cm.add_instance("o1", "m")
        cm.set_value("o1", "v", 10)
        cm.add_datalog("instance(X, big) :- method_val(X, v, V), V > 5.")
        wrapper = wrapper_from_cm(cm)
        engine = wrapper.schema_cm().to_engine()
        engine.tell_rules(wrapper.export_all_facts())
        assert engine.instances_of("big") == ["o1"]
