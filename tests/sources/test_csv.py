"""Tests for CSV ingestion into the relational store."""

import io

import pytest

from repro.errors import RelStoreError
from repro.sources import RelStore, table_from_csv

CSV = """id,protein,location,amount,validated
1,Ryanodine Receptor,Purkinje Cell dendrite,3.2,true
2,Calbindin,Purkinje Cell,1.1,false
3,IP3 Receptor,,2.5,yes
"""

DTYPES = {"id": "int", "amount": "float", "validated": "bool"}


class TestCSVLoading:
    def test_basic_load(self):
        table = table_from_csv("m", io.StringIO(CSV), dtypes=DTYPES, key="id")
        assert len(table) == 3
        assert table.column_names == [
            "id",
            "protein",
            "location",
            "amount",
            "validated",
        ]

    def test_types_converted(self):
        table = table_from_csv("m", io.StringIO(CSV), dtypes=DTYPES)
        row = table.select(where={"id": 1})[0]
        assert row["id"] == 1 and isinstance(row["id"], int)
        assert row["amount"] == 3.2
        assert row["validated"] is True
        assert table.select(where={"id": 2})[0]["validated"] is False
        assert table.select(where={"id": 3})[0]["validated"] is True

    def test_empty_cell_becomes_null(self):
        table = table_from_csv("m", io.StringIO(CSV), dtypes=DTYPES)
        assert table.select(where={"id": 3})[0]["location"] is None

    def test_key_enforced(self):
        duplicated = CSV + "1,Extra,loc,0.1,true\n"
        with pytest.raises(RelStoreError):
            table_from_csv("m", io.StringIO(duplicated), dtypes=DTYPES, key="id")

    def test_ragged_row_rejected(self):
        with pytest.raises(RelStoreError):
            table_from_csv("m", io.StringIO("a,b\n1\n"))

    def test_missing_header_rejected(self):
        with pytest.raises(RelStoreError):
            table_from_csv("m", io.StringIO(""))

    def test_unknown_dtype_column_rejected(self):
        with pytest.raises(RelStoreError):
            table_from_csv("m", io.StringIO(CSV), dtypes={"nope": "int"})

    def test_bad_bool_rejected(self):
        bad = "a\nmaybe\n"
        with pytest.raises(RelStoreError):
            table_from_csv("m", io.StringIO(bad), dtypes={"a": "bool"})

    def test_store_load_csv(self):
        store = RelStore("S")
        store.load_csv("m", io.StringIO(CSV), dtypes=DTYPES, key="id")
        assert store.table("m").get(2)["protein"] == "Calbindin"
        with pytest.raises(RelStoreError):
            store.load_csv("m", io.StringIO(CSV))

    def test_from_file_path(self, tmp_path):
        path = tmp_path / "data.csv"
        path.write_text(CSV)
        table = table_from_csv("m", str(path), dtypes=DTYPES)
        assert len(table) == 3

    def test_wrapper_over_csv_source(self, tmp_path):
        from repro.sources import AnchorSpec, SourceQuery, Wrapper

        path = tmp_path / "data.csv"
        path.write_text(CSV)
        store = RelStore("CSVLAB")
        store.load_csv("m", str(path), dtypes=DTYPES, key="id")
        wrapper = Wrapper("CSVLAB", store)
        wrapper.export_class(
            "measurement",
            "m",
            "id",
            methods={"protein_name": "protein", "amount": "amount"},
            selectable={"protein_name"},
        )
        rows = wrapper.query(
            SourceQuery("measurement", {"protein_name": "Calbindin"})
        )
        assert rows[0]["amount"] == 1.1
