"""Tests for navigation-driven (lazy) query evaluation."""

import pytest

from repro.core.lazy import ground_selections, referenced_class_names
from repro.flogic.parser import parse_fl_body
from repro.neuro import build_scenario


@pytest.fixture(scope="module")
def lazy_mediator():
    return build_scenario(eager=False).mediator


@pytest.fixture(scope="module")
def eager_mediator():
    return build_scenario(eager=True).mediator


class TestQueryAnalysis:
    def test_referenced_classes(self):
        items = parse_fl_body("X : neuron[age -> A], Y : 'Spine'")
        assert referenced_class_names(items) == {"neuron", "Spine"}

    def test_references_inside_negation_and_aggregate(self):
        items = parse_fl_body(
            "X : a, not Y : b, N = count{V; V : c[m -> W]}"
        )
        assert referenced_class_names(items) == {"a", "b", "c"}

    def test_variable_tags_ignored(self):
        items = parse_fl_body("X : C")
        assert referenced_class_names(items) == set()

    def test_ground_selections(self):
        items = parse_fl_body("X : sample[kind -> spine; value -> V]")
        assert ground_selections(items, "sample") == {"kind": "spine"}

    def test_ground_selections_only_for_named_class(self):
        items = parse_fl_body("X : sample[kind -> spine]")
        assert ground_selections(items, "other") == {}

    def test_multivalued_not_pushed(self):
        items = parse_fl_body("X : sample[tags ->> {a, b}]")
        assert ground_selections(items, "sample") == {}


class TestLazyAnswers:
    def test_pushes_declared_selection(self, lazy_mediator):
        answers, fetches = lazy_mediator.ask_lazy(
            "X : neurotransmission[organism -> rat]"
        )
        assert fetches == [("SENSELAB", "neurotransmission", {"organism": "rat"})]
        assert len(answers) == 4

    def test_unpushable_selection_still_answered(self, lazy_mediator):
        # epsp_mv is not in any binding pattern: scan + local filter
        answers, fetches = lazy_mediator.ask_lazy(
            "X : neurotransmission[organism -> rat; epsp_mv -> E], E > 0"
        )
        assert fetches[0][2] == {"organism": "rat"}
        assert len(answers) == 4

    def test_concept_query_resolves_sources(self, lazy_mediator):
        answers, fetches = lazy_mediator.ask_lazy("X : 'Pyramidal_Spine'")
        sources = {source for source, _cls, _sel in fetches}
        assert sources == {"SYNAPSE"}
        assert answers

    def test_view_query_expands_dependencies(self, lazy_mediator):
        answers, fetches = lazy_mediator.ask_lazy(
            "X : calcium_binding_protein[name -> N]"
        )
        assert ("NCMIR", "protein_amount", {}) in fetches
        assert all(source == "NCMIR" for source, _c, _s in fetches)
        assert answers

    def test_irrelevant_sources_not_contacted(self, lazy_mediator):
        _answers, fetches = lazy_mediator.ask_lazy(
            "X : reconstruction[condition -> enriched]"
        )
        sources = {source for source, _cls, _sel in fetches}
        assert sources == {"SYNAPSE"}

    def test_equivalent_to_eager(self, lazy_mediator, eager_mediator):
        queries = [
            "X : neurotransmission[organism -> rat; receiving_neuron -> N]",
            "X : calcium_binding_protein[name -> N]",
            "X : 'Purkinje_Dendrite'",
            "X : spine_change[condition -> enriched; length_um -> L]",
        ]
        for text in queries:
            lazy_answers, _fetches = lazy_mediator.ask_lazy(text)
            assert lazy_answers == eager_mediator.ask(text), text

    def test_no_referenced_classes_returns_empty_fetches(self, lazy_mediator):
        answers, fetches = lazy_mediator.ask_lazy("concept(X)")
        assert fetches == []
        assert answers  # DM facts answer without any source contact
