"""Unit tests for the planner steps and view machinery."""

import pytest

from repro.core import (
    CorrelationQuery,
    DistributionView,
    IntegratedView,
    Mediator,
)
from repro.core.planner import (
    ComputeLubStep,
    PlanContext,
    PushSelectionStep,
    QueryPlan,
    RetrieveAnchoredStep,
    SelectSourcesStep,
)
from repro.errors import PlanningError
from repro.neuro import build_scenario, section5_query


@pytest.fixture(scope="module")
def mediator():
    return build_scenario(eager=False).mediator


class TestPlanSteps:
    def test_push_selection_step(self, mediator):
        step = PushSelectionStep(
            "SENSELAB",
            "neurotransmission",
            {"organism": "rat"},
            bind_attrs=("receiving_neuron",),
        )
        context = PlanContext(mediator)
        rows = step.run(context)
        assert rows
        assert context.bindings[("receiving_neuron",)] == [
            ("Purkinje_Cell",),
            ("Pyramidal_Cell",),
        ]

    def test_select_sources_step(self, mediator):
        step = SelectSourcesStep(
            ["Purkinje_Dendrite"], "protein_amount", exclude={"SENSELAB"}
        )
        context = PlanContext(mediator)
        assert step.run(context) == ["NCMIR"]

    def test_select_sources_excludes(self, mediator):
        step = SelectSourcesStep(
            ["Purkinje_Dendrite"], "protein_amount", exclude={"NCMIR", "SENSELAB"}
        )
        context = PlanContext(mediator)
        assert step.run(context) == []

    def test_select_sources_filters_by_class(self, mediator):
        step = SelectSourcesStep(["Pyramidal_Spine"], "protein_amount")
        context = PlanContext(mediator)
        # SYNAPSE anchors there, but does not export protein_amount
        assert step.run(context) == []

    def test_retrieve_step_translates_concepts(self, mediator):
        context = PlanContext(mediator)
        context.selected_sources = ["NCMIR"]
        step = RetrieveAnchoredStep(
            "protein_amount",
            "location",
            ["Purkinje_Soma"],
            {"ion_bound": "calcium"},
        )
        retrieved = step.run(context)
        assert retrieved
        assert all(
            row["location"] == "Purkinje Cell soma" for _s, row in retrieved
        )
        assert all(row["ion_bound"] == "calcium" for _s, row in retrieved)

    def test_compute_lub_step(self, mediator):
        context = PlanContext(mediator)
        step = ComputeLubStep(["Purkinje_Dendrite", "Purkinje_Soma"], "has")
        assert step.run(context) == "Purkinje_Cell"
        assert context.root == "Purkinje_Cell"

    def test_steps_have_descriptions(self, mediator):
        plan = mediator.plan(section5_query())
        for step in plan.steps:
            assert step.describe()
            assert step.kind in repr(step)

    def test_plan_kinds_property(self, mediator):
        plan = QueryPlan(mediator.plan(section5_query()).steps)
        assert len(plan.kinds) == 5


class TestPlanningErrors:
    def test_unknown_seed_class(self, mediator):
        query = CorrelationQuery(
            seed_class="nonexistent",
            seed_selections={},
            anchor_attrs=("a",),
            target_class="protein_amount",
            target_anchor_attr="location",
            group_attr="protein_name",
            value_attr="amount",
        )
        with pytest.raises(PlanningError):
            mediator.plan(query)

    def test_ambiguous_seed_source(self, mediator):
        # no source exports this class -> cannot infer
        query = CorrelationQuery(
            seed_class="mystery",
            seed_selections={},
            anchor_attrs=("a",),
            target_class="protein_amount",
            target_anchor_attr="location",
            group_attr="protein_name",
            value_attr="amount",
            seed_source=None,
        )
        with pytest.raises(PlanningError):
            mediator.plan(query)

    def test_wrong_seed_source(self, mediator):
        query = section5_query()
        query.seed_source = "NCMIR"  # does not export neurotransmission
        with pytest.raises(PlanningError):
            mediator.plan(query)


class TestDistributionViewFacts:
    def test_instance_id_deterministic(self):
        view = DistributionView("v", "c", "g", "val")
        assert view.instance_id("RyR", "Root") == view.instance_id("RyR", "Root")
        assert view.instance_id("RyR", "Root") != view.instance_id("CB", "Root")

    def test_materialize_facts_shape(self, mediator):
        from repro.core.aggregate import Distribution, DistributionRow

        view = DistributionView("v", "c", "protein", "amount")
        rows = [
            DistributionRow("Root", 0, (), None, 5.0),
            DistributionRow("Leaf", 1, (5.0,), 5.0, 5.0),
            DistributionRow("Empty", 1, (), None, None),
        ]
        distribution = Distribution("Root", "has", "sum", rows)
        facts = view.materialize_facts("RyR", "Root", distribution, {"animal": "rat"})
        text = {str(f) for f in facts}
        # frame values present
        assert any("protein" in t and "RyR" in t for t in text)
        assert any("animal" in t for t in text)
        # one dist_row per region with a cumulative value (Empty skipped)
        dist_rows = [t for t in text if t.startswith("dist_row")]
        assert len(dist_rows) == 2

    def test_integrated_view_repr(self):
        view = IntegratedView("v", "X : v :- X : c.")
        assert "v" in repr(view)
