"""Tests for the registration protocol and the Mediator facade."""

import pytest

from repro.errors import MediatorError, RegistrationError
from repro.core import (
    DistributionView,
    IntegratedView,
    Mediator,
    build_registration,
    parse_registration,
)
from repro.domainmap import DomainMap
from repro.sources import AnchorSpec, Column, QueryTemplate, RelStore, Wrapper


def make_dm():
    dm = DomainMap("t")
    dm.add_axioms(
        """
        Organ < exists has.Tissue
        Tissue < exists has.Cell
        """
    )
    return dm


def make_wrapper(name="LAB", concept="Cell"):
    store = RelStore(name)
    table = store.create_table(
        "sample",
        [Column("id", "int"), Column("kind", "str"), Column("value", "float")],
        key="id",
    )
    table.insert_many(
        [
            {"id": 1, "kind": "cell body", "value": 2.0},
            {"id": 2, "kind": "cell body", "value": 3.0},
        ]
    )
    wrapper = Wrapper(name, store)
    wrapper.export_class(
        "sample",
        "sample",
        "id",
        methods={"kind": "kind", "value": "value"},
        anchor=AnchorSpec(column="kind", mapping={"cell body": concept}),
        selectable={"kind"},
    )
    wrapper.add_template(
        "sample",
        QueryTemplate("all_above", ["threshold"]),
        lambda store, threshold: store.select(
            "sample", predicate=lambda r: r["value"] > threshold
        ),
    )
    return wrapper


class TestRegistrationWire:
    def test_message_roundtrip(self):
        wrapper = make_wrapper()
        message = build_registration(wrapper, include_data=True)
        parsed = parse_registration(message)
        assert parsed.source == "LAB"
        assert parsed.cm.class_names() == ["sample"]
        assert ("sample", "Cell", "kind") in parsed.anchors
        assert parsed.facts  # eager data travelled

    def test_capabilities_roundtrip(self):
        wrapper = make_wrapper()
        parsed = parse_registration(build_registration(wrapper))
        capability = parsed.capabilities["sample"]
        assert capability.answerable({"kind": "x"})
        assert not capability.answerable({"value": 1.0})
        assert "all_above" in capability.templates
        assert capability.templates["all_above"].parameters == ("threshold",)

    def test_refinement_travels(self):
        wrapper = make_wrapper()
        message = build_registration(
            wrapper, dm_refinement="MyCell = Cell & exists has.Cell"
        )
        parsed = parse_registration(message)
        assert "MyCell" in parsed.refinement

    def test_without_data(self):
        parsed = parse_registration(build_registration(make_wrapper()))
        assert parsed.facts == []

    def test_boolean_and_numeric_facts_survive_wire(self):
        # regression: `True` in Datalog text reparses as a variable;
        # facts must travel with typed argument encoding
        wrapper = make_wrapper()
        wrapper.store.create_table(
            "flags", [Column("id", "int"), Column("ok", "bool")], key="id"
        ).insert_many([{"id": 1, "ok": True}, {"id": 2, "ok": False}])
        wrapper.export_class(
            "flag", "flags", "id", methods={"fid": "id", "ok": "ok"}
        )
        parsed = parse_registration(
            build_registration(wrapper, include_data=True)
        )
        values = {
            tuple(a.value for a in rule.head.args)
            for rule in parsed.facts
            if rule.head.pred == "method_inst"
        }
        assert ("LAB.flag.1", "ok", True) in values
        assert ("LAB.flag.2", "ok", False) in values
        # type preserved, not stringified
        ok_values = [v for _o, m, v in values if m == "ok"]
        assert all(isinstance(v, bool) for v in ok_values)

    def test_bad_message_rejected(self):
        with pytest.raises(RegistrationError):
            parse_registration("<nope/>")
        with pytest.raises(RegistrationError):
            parse_registration("<register/>")
        with pytest.raises(RegistrationError):
            parse_registration('<register source="s"/>')


class TestMediatorRegistration:
    def test_register_and_query(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        assert mediator.source_names() == ["LAB"]
        rows = mediator.ask("X : sample[value -> V]")
        assert len(rows) == 2

    def test_anchored_instances_propagate_up_dm(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        # anchored at Cell, visible as Cell instances
        assert len(mediator.ask("X : 'Cell'")) == 2

    def test_anchors_indexed(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        assert mediator.index.sources_for("Cell") == ["LAB"]
        # has-containment is not isa: Tissue has no anchors of its own
        assert mediator.index.sources_for("Tissue") == []
        mediator.dm.isa("Cell", "Anatomical_Entity")
        assert mediator.index.sources_for("Anatomical_Entity") == ["LAB"]

    def test_duplicate_registration_rejected(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        with pytest.raises(RegistrationError):
            mediator.register(make_wrapper())

    def test_registration_with_refinement(self):
        mediator = Mediator(make_dm())
        mediator.register(
            make_wrapper(), dm_refinement="Neuron_Cell < Cell"
        )
        assert "Neuron_Cell" in mediator.dm.concepts

    def test_lazy_registration_loads_no_data(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper(), eager=False)
        assert mediator.ask("X : sample") == []
        # but schema is known
        assert mediator.ask("sample[value => T]") == [{"T": "float"}]

    def test_non_xml_path_equivalent(self):
        via_xml = Mediator(make_dm())
        via_xml.register(make_wrapper(), via_xml=True)
        direct = Mediator(make_dm())
        direct.register(make_wrapper(), via_xml=False)
        assert via_xml.ask("X : sample[value -> V]") == direct.ask(
            "X : sample[value -> V]"
        )

    def test_wire_log_records_messages(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        assert len(mediator.wire_log) == 1
        assert mediator.wire_log[0][0] == "register:LAB"
        assert mediator.wire_log[0][1] > 100

    def test_deregister(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        mediator.deregister("LAB")
        assert mediator.source_names() == []
        assert mediator.index.sources_for("Cell") == []
        assert mediator.ask("X : sample") == []

    def test_deregister_unknown_rejected(self):
        mediator = Mediator(make_dm())
        with pytest.raises(RegistrationError):
            mediator.deregister("LAB")

    def test_unknown_wrapper_lookup(self):
        mediator = Mediator(make_dm())
        with pytest.raises(MediatorError):
            mediator.wrapper("LAB")


class TestViews:
    def test_integrated_view(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        mediator.add_view(
            IntegratedView(
                "big_sample",
                "X : big_sample :- X : sample[value -> V], V > 2.5.",
            )
        )
        assert len(mediator.ask("X : big_sample")) == 1

    def test_duplicate_view_rejected(self):
        mediator = Mediator(make_dm())
        view = IntegratedView("v", "X : v :- X : sample.")
        mediator.add_view(view)
        with pytest.raises(MediatorError):
            mediator.add_view(IntegratedView("v", "X : v :- X : sample."))

    def test_distribution_view_materialization(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        mediator.add_view(
            DistributionView(
                "value_distribution",
                source_class="sample",
                group_attr="kind",
                value_attr="value",
            )
        )
        distribution = mediator.materialize_distribution(
            "value_distribution", "cell body", "Organ"
        )
        assert distribution.total() == 5.0
        rows = mediator.ask(
            "D : value_distribution[distribution_root -> R]"
        )
        assert rows[0]["R"] == "Organ"
        # per-region rows are queryable
        rows = mediator.ask("dist_row(D, 'Cell', Direct, Cum)")
        assert rows[0]["Cum"] == 5.0

    def test_materialize_non_distribution_view_rejected(self):
        mediator = Mediator(make_dm())
        mediator.add_view(IntegratedView("v", "X : v :- X : sample."))
        with pytest.raises(MediatorError):
            mediator.materialize_distribution("v", "x", "Organ")

    def test_select_sources(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        assert mediator.select_sources(["Cell"]) == ["LAB"]
        assert mediator.select_sources(["Cell"], target_class="sample") == ["LAB"]
        assert mediator.select_sources(["Cell"], target_class="nope") == []

    def test_compute_distribution_directly(self):
        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        distribution = mediator.compute_distribution("Tissue", "value")
        assert distribution.total() == 5.0

    def test_check_integrity(self):
        from repro.gcm import cardinality_constraint

        mediator = Mediator(make_dm())
        mediator.register(make_wrapper())
        report = mediator.check_integrity(
            [cardinality_constraint("anchor", 2, counted_position=1, exact=1)]
        )
        assert report.ok  # each object anchored at exactly one concept
