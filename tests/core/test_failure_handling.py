"""Tests for source-failure tolerance during plan execution."""

import pytest

from repro.errors import SourceError
from repro.neuro import build_scenario, section5_query
from repro.neuro.ncmir import LOCATION_CONCEPTS
from repro.sources import AnchorSpec, Column, RelStore, Wrapper


class FlakyWrapper(Wrapper):
    """A protein_amount source whose query endpoint always fails."""

    def query(self, source_query):
        raise SourceError("connection to %s lost" % self.name)


def flaky_protein_source():
    store = RelStore("FLAKY")
    store.create_table(
        "protein_amount",
        [
            Column("id", "int"),
            Column("protein", "str"),
            Column("location", "str"),
            Column("amount", "float"),
        ],
        key="id",
    ).insert(
        {"id": 1, "protein": "Calbindin", "location": "Purkinje Cell", "amount": 9.9}
    )
    wrapper = FlakyWrapper("FLAKY", store)
    # declare exports through the parent class (query stays broken)
    Wrapper.export_class(
        wrapper,
        "protein_amount",
        "protein_amount",
        "id",
        methods={
            "protein_name": "protein",
            "location": "location",
            "amount": "amount",
        },
        anchor=AnchorSpec(column="location", mapping=dict(LOCATION_CONCEPTS)),
        selectable={"location", "protein_name", "organism"}
        & {"location", "protein_name"},
    )
    return wrapper


@pytest.fixture
def scenario_with_flaky():
    scenario = build_scenario(eager=False)
    scenario.mediator.register(flaky_protein_source(), eager=False)
    return scenario


class TestFailureHandling:
    def test_failure_aborts_by_default(self, scenario_with_flaky):
        mediator = scenario_with_flaky.mediator
        with pytest.raises(SourceError):
            mediator.correlate(section5_query())

    def test_skip_failed_sources_continues(self, scenario_with_flaky):
        mediator = scenario_with_flaky.mediator
        plan, context = mediator.correlate(
            section5_query(), skip_failed_sources=True
        )
        # the flaky source was selected (it anchors at Purkinje concepts)
        assert "FLAKY" in context.selected_sources
        # ... failed ...
        assert [source for source, _exc in context.errors] == ["FLAKY"]
        # ... and the healthy source still answered
        proteins = {group for group, _d in context.answers}
        assert "Ryanodine Receptor" in proteins

    def test_no_errors_recorded_when_all_healthy(self):
        mediator = build_scenario(eager=False).mediator
        _plan, context = mediator.correlate(
            section5_query(), skip_failed_sources=True
        )
        assert context.errors == []
        assert context.skipped_sources == []
        assert not context.degraded
        assert context.failures() == []

    def test_skipped_sources_exposed_on_context(self, scenario_with_flaky):
        mediator = scenario_with_flaky.mediator
        _plan, context = mediator.correlate(
            section5_query(), skip_failed_sources=True
        )
        assert context.skipped_sources == ["FLAKY"]
        assert context.degraded
        (failure,) = context.failures()
        assert failure["source"] == "FLAKY"
        source, exc = context.errors[0]
        assert failure["error"] == type(exc).__name__
        assert failure["message"] == str(exc)

    def test_unexpected_wrapper_exceptions_normalize_to_source_error(self):
        # a buggy wrapper raising KeyError must surface as SourceError
        # at the mediator boundary, with the original as __cause__
        class BuggyWrapper(Wrapper):
            def query(self, source_query):
                raise KeyError("oops, wrong column")

        store = RelStore("BUGGY")
        store.create_table(
            "t", [Column("id", "int"), Column("v", "str")], key="id"
        ).insert({"id": 1, "v": "x"})
        wrapper = BuggyWrapper("BUGGY", store)
        Wrapper.export_class(
            wrapper, "thing", "t", "id", methods={"v": "v"}
        )
        mediator = build_scenario(eager=False).mediator
        mediator.register(wrapper, eager=False)
        from repro.sources.wrapper import SourceQuery

        with pytest.raises(SourceError) as excinfo:
            mediator.source_query("BUGGY", SourceQuery("thing", {}, None))
        assert "BUGGY" in str(excinfo.value)
        assert "KeyError" in str(excinfo.value)
        assert isinstance(excinfo.value.__cause__, KeyError)

    def test_correlate_result_surfaces_degradation(self, scenario_with_flaky):
        result = scenario_with_flaky.mediator.correlate(
            section5_query(), skip_failed_sources=True
        )
        # tuple compatibility is preserved ...
        plan, context = result
        assert plan is result.plan
        assert context is result.context
        # ... and degradation is visible on the result itself
        assert result.degraded
        assert result.skipped_sources == ["FLAKY"]
        assert result.failures()[0]["source"] == "FLAKY"
        report = result.degraded_answer().report_for("FLAKY")
        assert report is not None
        assert report.status == "skipped"
        assert result.answers == context.answers

    def test_healthy_correlate_result_is_not_degraded(self):
        result = build_scenario(eager=False).mediator.correlate(
            section5_query()
        )
        assert not result.degraded
        assert result.skipped_sources == []
        assert not result.degraded_answer()
        assert result.degraded_answer().complete

    def test_skip_is_traced_as_span_event(self, scenario_with_flaky):
        from repro import obs

        mediator = scenario_with_flaky.mediator
        with obs.capture("flaky") as tracer:
            mediator.correlate(section5_query(), skip_failed_sources=True)
        events = [
            event
            for span in tracer.iter_spans()
            for event in span.events
            if event.name == "plan.source_skipped"
        ]
        assert [e.attrs["source"] for e in events] == ["FLAKY"]
        assert events[0].attrs["error"] == "CapabilityError"
        assert tracer.metrics.counter_total("planner.sources_skipped") == 1
        # the skip lands inside the retrieve plan step
        retrieve = next(
            s for s in tracer.find_spans("plan.step")
            if s.attrs["kind"] == "retrieve"
        )
        assert any(e.name == "plan.source_skipped" for e in retrieve.events)


class TestMediatorResilience:
    def make_policy(self, **kwargs):
        from repro.resilience import ResiliencePolicy, VirtualClock

        clock = VirtualClock()
        kwargs.setdefault("backoff_base", 0.01)
        return ResiliencePolicy(clock=clock.now, sleep=clock.sleep, **kwargs)

    def test_policy_degrades_instead_of_raising(self):
        # with a degrading policy, no skip_failed_sources flag is
        # needed: a source dying mid-plan is retried, then skipped
        from repro.resilience import (
            FaultInjectingWrapper,
            FaultSchedule,
            SourceGuard,
        )

        mediator = build_scenario(eager=False).mediator
        mediator.resilience = SourceGuard(self.make_policy(max_retries=1))
        record = mediator._sources["NCMIR"]
        record.wrapper = FaultInjectingWrapper(
            record.wrapper, FaultSchedule().kill("NCMIR", after=1)
        )
        result = mediator.correlate(section5_query())  # does not raise
        assert result.degraded
        report = result.degraded_answer().report_for("NCMIR")
        assert report.status == "skipped"
        assert report.attempts >= 2  # the retry happened
        assert "NCMIR" in result.skipped_sources

    def test_transient_failure_is_invisible_in_the_answer(self):
        # one injected outage, absorbed by a retry: same answers as a
        # healthy run, degraded stays False, but the report shows it
        from repro.resilience import (
            Fault,
            FaultInjectingWrapper,
            FaultSchedule,
            SourceGuard,
        )

        healthy = build_scenario(eager=False).mediator.correlate(
            section5_query()
        )
        mediator = build_scenario(eager=False).mediator
        mediator.resilience = SourceGuard(self.make_policy(max_retries=1))
        record = mediator._sources["NCMIR"]
        record.wrapper = FaultInjectingWrapper(
            record.wrapper, FaultSchedule().add("NCMIR", 1, Fault("error"))
        )
        result = mediator.correlate(section5_query())
        assert not result.degraded
        assert [(g, d.total()) for g, d in result.answers] == [
            (g, d.total()) for g, d in healthy.answers
        ]
        report = result.degraded_answer().report_for("NCMIR")
        assert report.status == "retried"
        assert report.retries == 1

    def test_mediator_accepts_policy_at_construction(self):
        from repro.core.mediator import Mediator
        from repro.neuro.anatom import build_anatom

        policy = self.make_policy()
        mediator = Mediator(build_anatom(), resilience=policy)
        assert mediator.resilience is not None
        assert mediator.resilience.policy is policy

    def test_mediator_rejects_bad_resilience_argument(self):
        from repro.errors import MediatorError
        from repro.core.mediator import Mediator
        from repro.neuro.anatom import build_anatom

        with pytest.raises(MediatorError):
            Mediator(build_anatom(), resilience="retry hard, please")

    def test_degraded_answer_covers_only_this_plan(self):
        # two consecutive plans on one mediator: each report slices out
        # its own guard outcomes
        from repro.resilience import SourceGuard

        mediator = build_scenario(eager=False).mediator
        mediator.resilience = SourceGuard(self.make_policy(max_retries=1))
        mediator.register(flaky_protein_source(), eager=False)
        first = mediator.correlate(section5_query())
        second = mediator.correlate(section5_query())
        for result in (first, second):
            report = result.degraded_answer().report_for("FLAKY")
            assert report is not None
            # one plan's worth of calls, not the running total
            assert report.calls <= 2
