"""Tests for source-failure tolerance during plan execution."""

import pytest

from repro.errors import SourceError
from repro.neuro import build_scenario, section5_query
from repro.neuro.ncmir import LOCATION_CONCEPTS
from repro.sources import AnchorSpec, Column, RelStore, Wrapper


class FlakyWrapper(Wrapper):
    """A protein_amount source whose query endpoint always fails."""

    def query(self, source_query):
        raise SourceError("connection to %s lost" % self.name)


def flaky_protein_source():
    store = RelStore("FLAKY")
    store.create_table(
        "protein_amount",
        [
            Column("id", "int"),
            Column("protein", "str"),
            Column("location", "str"),
            Column("amount", "float"),
        ],
        key="id",
    ).insert(
        {"id": 1, "protein": "Calbindin", "location": "Purkinje Cell", "amount": 9.9}
    )
    wrapper = FlakyWrapper("FLAKY", store)
    # declare exports through the parent class (query stays broken)
    Wrapper.export_class(
        wrapper,
        "protein_amount",
        "protein_amount",
        "id",
        methods={
            "protein_name": "protein",
            "location": "location",
            "amount": "amount",
        },
        anchor=AnchorSpec(column="location", mapping=dict(LOCATION_CONCEPTS)),
        selectable={"location", "protein_name", "organism"}
        & {"location", "protein_name"},
    )
    return wrapper


@pytest.fixture
def scenario_with_flaky():
    scenario = build_scenario(eager=False)
    scenario.mediator.register(flaky_protein_source(), eager=False)
    return scenario


class TestFailureHandling:
    def test_failure_aborts_by_default(self, scenario_with_flaky):
        mediator = scenario_with_flaky.mediator
        with pytest.raises(SourceError):
            mediator.correlate(section5_query())

    def test_skip_failed_sources_continues(self, scenario_with_flaky):
        mediator = scenario_with_flaky.mediator
        plan, context = mediator.correlate(
            section5_query(), skip_failed_sources=True
        )
        # the flaky source was selected (it anchors at Purkinje concepts)
        assert "FLAKY" in context.selected_sources
        # ... failed ...
        assert [source for source, _exc in context.errors] == ["FLAKY"]
        # ... and the healthy source still answered
        proteins = {group for group, _d in context.answers}
        assert "Ryanodine Receptor" in proteins

    def test_no_errors_recorded_when_all_healthy(self):
        mediator = build_scenario(eager=False).mediator
        _plan, context = mediator.correlate(
            section5_query(), skip_failed_sources=True
        )
        assert context.errors == []
        assert context.skipped_sources == []
        assert not context.degraded
        assert context.failures() == []

    def test_skipped_sources_exposed_on_context(self, scenario_with_flaky):
        mediator = scenario_with_flaky.mediator
        _plan, context = mediator.correlate(
            section5_query(), skip_failed_sources=True
        )
        assert context.skipped_sources == ["FLAKY"]
        assert context.degraded
        (failure,) = context.failures()
        assert failure["source"] == "FLAKY"
        source, exc = context.errors[0]
        assert failure["error"] == type(exc).__name__
        assert failure["message"] == str(exc)

    def test_skip_is_traced_as_span_event(self, scenario_with_flaky):
        from repro import obs

        mediator = scenario_with_flaky.mediator
        with obs.capture("flaky") as tracer:
            mediator.correlate(section5_query(), skip_failed_sources=True)
        events = [
            event
            for span in tracer.iter_spans()
            for event in span.events
            if event.name == "plan.source_skipped"
        ]
        assert [e.attrs["source"] for e in events] == ["FLAKY"]
        assert events[0].attrs["error"] == "CapabilityError"
        assert tracer.metrics.counter_total("planner.sources_skipped") == 1
        # the skip lands inside the retrieve plan step
        retrieve = next(
            s for s in tracer.find_spans("plan.step")
            if s.attrs["kind"] == "retrieve"
        )
        assert any(e.name == "plan.source_skipped" for e in retrieve.events)
